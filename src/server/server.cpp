#include "server/server.hpp"

#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <mutex>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#include <unordered_map>

#include "net/proto.hpp"
#include "net/socket.hpp"

namespace vcf::server {

namespace {

/// Stop reading from a connection whose unsent responses exceed this, until
/// the peer drains them — bounds server memory against a client that
/// pipelines requests but never reads replies.
constexpr std::size_t kWriteHighWater = 8u << 20;

bool MakePipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  // Non-blocking on both ends: the writer must never stall a signal
  // handler, and workers only poll readability without draining.
  return net::SetNonBlocking(fds[0]) && net::SetNonBlocking(fds[1]);
}

}  // namespace

struct VcfServer::Connection {
  int fd = -1;
  net::FrameBuffer in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  bool close_after_flush = false;
};

struct VcfServer::Worker {
  explicit Worker(Poller::Backend backend) : poller(backend) {}

  Poller poller;
  int wakeup[2] = {-1, -1};
  std::mutex inbox_mutex;
  std::vector<int> inbox;  ///< freshly accepted fds awaiting registration
  std::unordered_map<int, Connection> conns;
};

VcfServer::VcfServer(std::unique_ptr<Filter> filter, Options options)
    : filter_(std::move(filter)), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
}

VcfServer::~VcfServer() {
  RequestShutdown();
  Join();
}

bool VcfServer::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  listen_fd_ = net::ListenTcp(options_.port, error);
  if (listen_fd_ < 0) return false;
  if (!net::SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "could not set listen socket non-blocking";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = net::BoundPort(listen_fd_);
  if (!MakePipe(shutdown_pipe_)) {
    if (error != nullptr) *error = "could not create shutdown pipe";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto w = std::make_unique<Worker>(options_.backend);
    if (!MakePipe(w->wakeup)) {
      if (error != nullptr) *error = "could not create worker wakeup pipe";
      RequestShutdown();
      Join();
      return false;
    }
    w->poller.Add(shutdown_pipe_[0], /*want_read=*/true, /*want_write=*/false);
    w->poller.Add(w->wakeup[0], /*want_read=*/true, /*want_write=*/false);
    if (i == 0) {
      w->poller.Add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    }
    workers_.push_back(std::move(w));
  }
  threads_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return true;
}

void VcfServer::RequestShutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe: write(2) on a non-blocking pipe. The return value
    // is irrelevant — a full pipe is already readable, which is the signal.
    [[maybe_unused]] const ssize_t n =
        ::write(shutdown_pipe_[1], &byte, 1);
  }
}

bool VcfServer::Join() {
  if (joined_ || !started_) return true;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) net::CloseFd(fd);
    w->conns.clear();
    net::CloseFd(w->wakeup[0]);
    net::CloseFd(w->wakeup[1]);
  }
  workers_.clear();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  net::CloseFd(shutdown_pipe_[0]);
  net::CloseFd(shutdown_pipe_[1]);
  shutdown_pipe_[0] = shutdown_pipe_[1] = -1;
  joined_ = true;
  if (!options_.state_path.empty()) return CheckpointNow();
  return true;
}

bool VcfServer::ServeUntilShutdown() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = shutdown_pipe_[0];
    p.events = POLLIN;
    ::poll(&p, 1, 500);
  }
  return Join();
}

bool VcfServer::CheckpointNow() {
  if (options_.state_path.empty()) return false;
  std::lock_guard checkpoint_lock(checkpoint_mutex_);
  const std::string tmp = options_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    bool ok;
    if (options_.filter_internally_locked) {
      ok = filter_->SaveState(out);
    } else {
      std::shared_lock lock(filter_mutex_);
      ok = filter_->SaveState(out);
    }
    out.flush();
    if (!ok || !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), options_.state_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool VcfServer::TryRestore(std::string* error) {
  if (options_.state_path.empty()) return true;
  std::ifstream in(options_.state_path, std::ios::binary);
  if (!in) return true;  // missing checkpoint: clean cold start
  std::unique_lock lock(filter_mutex_);
  if (!filter_->LoadState(in)) {
    if (error != nullptr) {
      *error = "corrupt checkpoint or mismatched --filter flags: " +
               options_.state_path;
    }
    return false;
  }
  return true;
}

void VcfServer::WorkerLoop(unsigned index) {
  Worker& w = *workers_[index];
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (w.poller.Wait(events, /*timeout_ms=*/500) < 0) break;
    for (const Poller::Event& ev : events) {
      if (ev.fd == shutdown_pipe_[0]) continue;  // stop_ check drives exit
      if (ev.fd == listen_fd_) {
        AcceptReady(w);
        continue;
      }
      if (ev.fd == w.wakeup[0]) {
        std::uint8_t drain[64];
        while (net::ReadSome(w.wakeup[0], drain) > 0) {
        }
        std::vector<int> fresh;
        {
          std::lock_guard lock(w.inbox_mutex);
          fresh.swap(w.inbox);
        }
        for (const int fd : fresh) {
          Connection conn;
          conn.fd = fd;
          w.conns.emplace(fd, std::move(conn));
          w.poller.Add(fd, /*want_read=*/true, /*want_write=*/false);
        }
        continue;
      }
      const auto it = w.conns.find(ev.fd);
      if (it == w.conns.end()) continue;
      Connection& conn = it->second;
      bool alive = !ev.error;
      if (alive && ev.writable) alive = FlushWrites(conn);
      if (alive && ev.readable) alive = ServeReadable(conn);
      if (alive && conn.close_after_flush &&
          conn.out_off == conn.out.size()) {
        alive = false;
      }
      if (!alive) {
        CloseConnection(w, ev.fd);
        continue;
      }
      const std::size_t pending = conn.out.size() - conn.out_off;
      w.poller.Update(ev.fd,
                      /*want_read=*/!conn.close_after_flush &&
                          pending < kWriteHighWater,
                      /*want_write=*/pending > 0);
    }
  }
  // Drain: one best-effort flush per connection so ACKs for already-applied
  // mutations reach the client where possible, then close.
  for (auto& [fd, conn] : w.conns) {
    FlushWrites(conn);
    net::CloseFd(fd);
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  w.conns.clear();
}

void VcfServer::AcceptReady(Worker& w) {
  (void)w;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: poller will re-arm
    }
    net::SetNonBlocking(fd);
    net::SetNoDelay(fd);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    Worker& target =
        *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                  workers_.size()];
    {
      std::lock_guard lock(target.inbox_mutex);
      target.inbox.push_back(fd);
    }
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(target.wakeup[1], &byte, 1);
  }
}

bool VcfServer::ServeReadable(Connection& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = net::ReadSome(conn.fd, buf);
    if (n == -2) break;          // drained
    if (n <= 0) return false;    // EOF or error
    if (!conn.in.Append(std::span<const std::uint8_t>(
            buf, static_cast<std::size_t>(n)))) {
      // Oversized length prefix: the stream cannot be re-synced. Tell the
      // peer why, then close once the reply flushes.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    std::span<const std::uint8_t> payload;
    while (!conn.close_after_flush && conn.in.Next(payload)) {
      HandleFrame(payload, conn.out, conn.close_after_flush);
      conn.in.Pop();
    }
    if (conn.in.poisoned()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    if (conn.out.size() - conn.out_off >= kWriteHighWater) break;
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // likely drained
  }
  return FlushWrites(conn);
}

bool VcfServer::FlushWrites(Connection& conn) {
  const std::size_t pending = conn.out.size() - conn.out_off;
  if (pending == 0) return true;
  std::size_t written = 0;
  if (!net::WriteAll(conn.fd,
                     std::span<const std::uint8_t>(conn.out).subspan(
                         conn.out_off),
                     &written)) {
    return false;
  }
  conn.out_off += written;
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > kWriteHighWater) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  return true;
}

void VcfServer::HandleFrame(std::span<const std::uint8_t> payload,
                            std::vector<std::uint8_t>& out,
                            bool& close_after) {
  using net::Opcode;
  using net::Status;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  net::Request req;
  switch (net::DecodeRequest(payload, req)) {
    case net::DecodeResult::kOk:
      break;
    case net::DecodeResult::kBadVersion:
      // A peer speaking another protocol version cannot be trusted to agree
      // on framing either; answer and drop the connection.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadVersion,
                               net::PeekRequestId(payload));
      close_after = true;
      return;
    case net::DecodeResult::kBadOpcode:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadOpcode,
                               net::PeekRequestId(payload));
      return;  // framing was intact; the connection survives
    case net::DecodeResult::kMalformed:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadRequest,
                               net::PeekRequestId(payload));
      return;
  }
  if (stop_.load(std::memory_order_relaxed) && req.opcode != Opcode::kPing) {
    net::EncodeErrorResponse(out, Status::kShuttingDown, req.request_id);
    return;
  }
  const bool internal = options_.filter_internally_locked;
  switch (req.opcode) {
    case Opcode::kPing:
      net::EncodePingResponse(out, req.request_id, req.ping_echo);
      return;
    case Opcode::kInsert: {
      bool ok;
      if (internal) {
        ok = filter_->Insert(req.key);
      } else {
        std::unique_lock lock(filter_mutex_);
        ok = filter_->Insert(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kLookup: {
      bool ok;
      if (internal) {
        ok = filter_->Contains(req.key);
      } else {
        std::shared_lock lock(filter_mutex_);
        ok = filter_->Contains(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kDelete: {
      if (!filter_->SupportsDeletion()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      bool ok;
      if (internal) {
        ok = filter_->Erase(req.key);
      } else {
        std::unique_lock lock(filter_mutex_);
        ok = filter_->Erase(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kInsertBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      std::size_t accepted;
      if (internal) {
        accepted = filter_->InsertBatch(req.keys, results.get());
      } else {
        std::unique_lock lock(filter_mutex_);
        accepted = filter_->InsertBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kInsertBatch, req.request_id,
                               std::span<const bool>(results.get(), n),
                               static_cast<std::uint32_t>(accepted));
      return;
    }
    case Opcode::kLookupBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      if (internal) {
        filter_->ContainsBatch(req.keys, results.get());
      } else {
        std::shared_lock lock(filter_mutex_);
        filter_->ContainsBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kLookupBatch, req.request_id,
                               std::span<const bool>(results.get(), n), 0);
      return;
    }
    case Opcode::kStats: {
      std::string name;
      std::uint64_t items, slots, memory;
      double lf;
      bool deletion;
      if (internal) {
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      } else {
        std::shared_lock lock(filter_mutex_);
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      }
      net::EncodeStatsResponse(out, req.request_id, name, items, slots,
                               memory, lf, deletion);
      return;
    }
    case Opcode::kSnapshot: {
      if (options_.state_path.empty()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      net::EncodeFlagResponse(out, req.request_id, CheckpointNow());
      return;
    }
  }
  net::EncodeErrorResponse(out, Status::kBadOpcode, req.request_id);
}

void VcfServer::CloseConnection(Worker& w, int fd) {
  w.poller.Remove(fd);
  w.conns.erase(fd);
  net::CloseFd(fd);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vcf::server
