#include "server/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fcntl.h>
#include <pthread.h>
#include <random>
#include <fstream>
#include <mutex>
#include <poll.h>
#include <sched.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>
#include <unordered_map>

#include "common/failpoint.hpp"
#include "common/hugepage.hpp"
#include "core/elastic_filter.hpp"
#include "core/state_io.hpp"
#include "hash/hash64.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"

namespace vcf::server {

namespace {

/// Stop reading from a connection whose unsent responses exceed this, until
/// the peer drains them — bounds server memory against a client that
/// pipelines requests but never reads replies.
constexpr std::size_t kWriteHighWater = 8u << 20;

/// Flush a coalesced run once it accumulates this many keys. Deferred
/// responses live outside conn.out until the run flushes, so the run itself
/// must stay bounded regardless of how hard the peer pipelines.
constexpr std::size_t kCoalesceMaxKeys = 65536;

/// Matches the wrappers' optimistic budget (core/sharded_filter.cpp).
constexpr int kOptimisticRetries = 8;

bool MakePipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  // Non-blocking on both ends: the writer must never stall a signal
  // handler, and workers only poll readability without draining.
  return net::SetNonBlocking(fds[0]) && net::SetNonBlocking(fds[1]);
}

}  // namespace

struct VcfServer::Connection {
  int fd = -1;
  net::FrameBuffer in;
  // Two-buffer write scheme: `sending` holds a partially-flushed tail
  // (send_off bytes already on the wire), handlers append fresh responses to
  // `out`, and FlushWrites pushes both with a single writev. No memmove of
  // unsent bytes, ever.
  std::vector<std::uint8_t> sending;
  std::size_t send_off = 0;
  std::vector<std::uint8_t> out;
  bool close_after_flush = false;

  std::size_t PendingBytes() const noexcept {
    return sending.size() - send_off + out.size();
  }

  // Replica-stream state (set by REPLICATE_HELLO, owning worker only):
  bool is_replica = false;
  std::uint64_t repl_next_seq = 0;   ///< next op-log seq to stream
  std::uint64_t repl_acked_seq = 0;  ///< replica's cumulative ACK
  bool snapshot_pending = false;
  std::uint64_t snapshot_seq = 0;
  std::string snapshot_buf;  ///< framed checkpoint envelope being streamed
  std::size_t snapshot_off = 0;
};

struct VcfServer::Worker {
  Worker(Poller::Backend backend, unsigned idx)
      : poller(backend), index(idx) {}

  Poller poller;
  unsigned index = 0;
  int wakeup[2] = {-1, -1};
  std::mutex inbox_mutex;
  std::vector<int> inbox;  ///< freshly accepted fds awaiting registration
  std::unordered_map<int, Connection> conns;
  int replica_conns = 0;  ///< owning-thread count of replica connections
  /// Read by journaling threads (NotifyReplicas) without the worker's
  /// cooperation, hence atomic; written only by the owning thread.
  std::atomic<bool> has_replicas{false};

  // Pinned-mode task inbox: work forwarded to this worker because it owns
  // the target shards. accepting_tasks flips to false (under task_mutex)
  // right before the worker's exit drain, after which enqueues fail and
  // callers fall back to the locked shard path.
  std::mutex task_mutex;
  std::vector<ShardTask> tasks;
  bool accepting_tasks = true;

  // Coalescer + batch scratch, reused across frames (worker-local; a run
  // never outlives one ServeReadable call).
  Run run;
  std::unique_ptr<bool[]> results;
  std::size_t results_cap = 0;
  std::vector<std::vector<std::uint32_t>> owner_idx;
};

VcfServer::VcfServer(std::unique_ptr<Filter> filter, Options options)
    : filter_(std::move(filter)), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
  sharded_ = dynamic_cast<ShardedFilter*>(filter_.get());
  if (sharded_ != nullptr) {
    shard_count_ = sharded_->shard_count();
    route_salt_ = sharded_->salt();
  }
  coalesce_ = options_.coalesce;
  if (const char* env = std::getenv("VCFD_COALESCE");
      env != nullptr && env[0] != '\0') {
    coalesce_ = env[0] != '0';
  }
  // Internally-locked filters run their own seqlock protocol; for
  // server-locked ones the server takes over iff probing in place is safe.
  filter_optimistic_ =
      !options_.filter_internally_locked && filter_->OptimisticReadSafe();
  if (options_.oplog_capacity > 0) {
    oplog_ = std::make_unique<OplogBuffer>(options_.oplog_capacity);
    // One run ID per primary incarnation: a replica's resume position is
    // only honoured when it quotes this ID back, so sequence numbers from a
    // previous incarnation's log can never be mistaken for this one's.
    std::random_device rd;
    run_id_ = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    if (run_id_ == 0) run_id_ = 1;  // 0 is "no epoch" on the wire
  }
}

VcfServer::~VcfServer() {
  RequestShutdown();
  Join();
}

bool VcfServer::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  if (options_.pin_shards) {
    if (sharded_ == nullptr || !options_.filter_internally_locked) {
      if (error != nullptr) {
        *error = "pin_shards requires an internally locked sharded: filter";
      }
      return false;
    }
    if (oplog_ != nullptr || options_.read_only) {
      // Owner-thread execution bypasses repl_mutex_'s journal ordering, so
      // the two features are mutually exclusive by design.
      if (error != nullptr) {
        *error = "pin_shards is incompatible with replication";
      }
      return false;
    }
    pinned_ = true;
  }
  listen_fd_ = net::ListenTcp(options_.port, error);
  if (listen_fd_ < 0) return false;
  if (!net::SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "could not set listen socket non-blocking";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = net::BoundPort(listen_fd_);
  if (!MakePipe(shutdown_pipe_)) {
    if (error != nullptr) *error = "could not create shutdown pipe";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto w = std::make_unique<Worker>(options_.backend, i);
    if (!MakePipe(w->wakeup)) {
      if (error != nullptr) *error = "could not create worker wakeup pipe";
      RequestShutdown();
      Join();
      return false;
    }
    // The pipes and the listen socket live for the whole server and their
    // handlers always drain completely — persistent lets the io_uring
    // backend keep one multishot poll armed instead of re-arming per tick.
    w->poller.Add(shutdown_pipe_[0], /*want_read=*/true, /*want_write=*/false,
                  /*persistent=*/true);
    w->poller.Add(w->wakeup[0], /*want_read=*/true, /*want_write=*/false,
                  /*persistent=*/true);
    if (i == 0) {
      w->poller.Add(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                    /*persistent=*/true);
    }
    workers_.push_back(std::move(w));
  }
  threads_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return true;
}

void VcfServer::RequestShutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe: write(2) on a non-blocking pipe. The return value
    // is irrelevant — a full pipe is already readable, which is the signal.
    [[maybe_unused]] const ssize_t n =
        ::write(shutdown_pipe_[1], &byte, 1);
  }
}

bool VcfServer::Join() {
  if (joined_ || !started_) return true;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) net::CloseFd(fd);
    w->conns.clear();
    net::CloseFd(w->wakeup[0]);
    net::CloseFd(w->wakeup[1]);
  }
  workers_.clear();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  net::CloseFd(shutdown_pipe_[0]);
  net::CloseFd(shutdown_pipe_[1]);
  shutdown_pipe_[0] = shutdown_pipe_[1] = -1;
  joined_ = true;
  if (!options_.state_path.empty()) return CheckpointNow();
  return true;
}

bool VcfServer::ServeUntilShutdown() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = shutdown_pipe_[0];
    p.events = POLLIN;
    ::poll(&p, 1, 500);
  }
  return Join();
}

Poller::Backend VcfServer::resolved_backend() const noexcept {
  return workers_.empty() ? options_.backend : workers_[0]->poller.backend();
}

bool VcfServer::CheckpointNow() { return CheckpointImpl(nullptr); }

bool VcfServer::CheckpointImpl(Worker* self) {
  if (options_.state_path.empty()) return false;
  std::unique_lock checkpoint_lock(checkpoint_mutex_, std::defer_lock);
  if (self == nullptr) {
    checkpoint_lock.lock();
  } else {
    // A worker must not block while owner tasks could be parked in its
    // inbox (the checkpoint holder may be waiting on exactly those), so it
    // keeps draining while contending for the lock.
    while (!checkpoint_lock.try_lock()) {
      DrainTasks(*self, /*locked=*/false);
      std::this_thread::yield();
    }
  }
  const bool repl = oplog_ != nullptr || options_.read_only;
  std::uint64_t covered_seq = 0;
  std::uint64_t covered_epoch = 0;
  const std::string tmp = options_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    // With replication on, hold the mutation order lock across the save so
    // the checkpoint covers exactly the ops up to `covered_seq` — the
    // invariant the resume sidecar and the convergence drills rely on.
    std::unique_lock<std::mutex> repl_lock;
    if (repl) {
      repl_lock = std::unique_lock(repl_mutex_);
      covered_seq = oplog_ != nullptr
                        ? oplog_->last()
                        : applied_seq_.load(std::memory_order_acquire);
      covered_epoch = oplog_ != nullptr ? run_id_ : repl_epoch_;
    }
    bool ok;
    if (pinned_) {
      ok = PinnedSaveState(self, out);
    } else if (options_.filter_internally_locked) {
      ok = filter_->SaveState(out);
    } else {
      std::shared_lock lock(filter_mutex_);
      ok = filter_->SaveState(out);
    }
    out.flush();
    if (!ok || !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), options_.state_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  if (repl && !options_.repl_meta_path.empty()) {
    // Sidecar write is best-effort: losing it only costs a snapshot
    // re-bootstrap on the next restart, never correctness.
    std::uint64_t digest = 0;
    if (FileDigest(options_.state_path, &digest)) {
      WriteReplMeta(options_.repl_meta_path,
                    ReplMeta{covered_seq, covered_epoch, digest});
    }
  }
  return true;
}

bool VcfServer::PinnedSaveState(Worker* self, std::ostream& out) {
  // Stage every shard's blob on its owning thread (unlocked there), fall
  // back to the locked path for owners that already exited, then write the
  // envelope — byte-identical to ShardedFilter::SaveState.
  const unsigned T = options_.threads;
  std::vector<std::string> blobs(shard_count_);
  std::atomic<bool> failed{false};
  std::atomic<std::uint32_t> done{0};
  std::uint32_t want = 0;
  std::vector<std::function<void(bool)>> stages(T);
  for (unsigned o = 0; o < T; ++o) {
    stages[o] = [this, o, T, &blobs, &failed](bool locked) {
      for (std::size_t s = o; s < shard_count_; s += T) {
        if (!sharded_->SaveShardState(s, &blobs[s], locked)) {
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    if (self != nullptr && o == self->index) {
      stages[o](/*locked=*/false);
      continue;
    }
    if (o < workers_.size() && EnqueueTask(*workers_[o], {stages[o], &done})) {
      ++want;
    } else {
      stages[o](/*locked=*/true);
    }
  }
  WaitTaskCount(self, done, want);
  if (failed.load(std::memory_order_relaxed)) return false;
  return sharded_->SaveStateEnvelope(out, blobs);
}

bool VcfServer::TryRestore(std::string* error) {
  if (options_.state_path.empty()) return true;
  std::ifstream in(options_.state_path, std::ios::binary);
  if (!in) return true;  // missing checkpoint: clean cold start
  std::unique_lock lock(filter_mutex_);
  SeqLockWriteGuard seq_guard(filter_seq_);
  if (!filter_->LoadState(in)) {
    if (error != nullptr) {
      *error = "corrupt checkpoint or mismatched --filter flags: " +
               options_.state_path;
    }
    return false;
  }
  return true;
}

// --- Server-level optimistic lookups ----------------------------------------

bool VcfServer::TryLookupOptimistic(std::uint64_t key, bool* result) {
  if (!filter_optimistic_) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = filter_seq_.ReadBegin();
    if ((token & 1) == 0) {
      const bool r = filter_->Contains(key);
      if (filter_seq_.ReadValidate(token)) {
        *result = r;
        return true;
      }
    }
    counters_.seqlock_retries.fetch_add(1, std::memory_order_relaxed);
    CpuRelax();
  }
  counters_.seqlock_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool VcfServer::TryLookupBatchOptimistic(std::span<const std::uint64_t> keys,
                                         bool* results) {
  if (!filter_optimistic_) return false;
  for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
    const std::uint64_t token = filter_seq_.ReadBegin();
    if ((token & 1) == 0) {
      filter_->ContainsBatch(keys, results);
      if (filter_seq_.ReadValidate(token)) return true;
    }
    counters_.seqlock_retries.fetch_add(1, std::memory_order_relaxed);
    CpuRelax();
  }
  counters_.seqlock_fallbacks.fetch_add(1, std::memory_order_relaxed);
  return false;
}

// --- Pinned executor --------------------------------------------------------

bool VcfServer::EnqueueTask(Worker& target, ShardTask task) {
  {
    std::lock_guard lock(target.task_mutex);
    if (!target.accepting_tasks) return false;
    target.tasks.push_back(std::move(task));
  }
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(target.wakeup[1], &byte, 1);
  counters_.forwarded_tasks.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void VcfServer::DrainTasks(Worker& w, bool locked) {
  std::vector<ShardTask> batch;
  {
    std::lock_guard lock(w.task_mutex);
    if (w.tasks.empty()) return;
    batch.swap(w.tasks);
  }
  for (ShardTask& t : batch) {
    t.fn(locked);
    if (t.done != nullptr) t.done->fetch_add(1, std::memory_order_release);
  }
}

void VcfServer::WaitTaskCount(Worker* self,
                              const std::atomic<std::uint32_t>& done,
                              std::uint32_t want) {
  // Cooperative wait: a worker keeps serving ITS inbox while it waits for
  // foreign owners, so two workers forwarding to each other always make
  // progress (the deadlock-freedom argument for the whole executor).
  while (done.load(std::memory_order_acquire) < want) {
    if (self != nullptr) DrainTasks(*self, /*locked=*/false);
    std::this_thread::yield();
  }
}

void VcfServer::RunKeysForOwner(bool insert,
                                std::span<const std::uint64_t> keys,
                                std::span<const std::uint32_t> idx,
                                bool* results, bool locked) {
  // Group the selected keys by shard (stable, so same-shard keys keep their
  // original relative order — the batch-equivalence contract), then run each
  // shard's own batch kernel once.
  thread_local std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  thread_local std::vector<std::uint64_t> run_keys;
  thread_local std::unique_ptr<bool[]> run_res;
  thread_local std::size_t run_cap = 0;
  order.clear();
  order.reserve(idx.size());
  for (const std::uint32_t j : idx) {
    order.emplace_back(static_cast<std::uint32_t>(sharded_->ShardFor(keys[j])),
                       j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t s = order[i].first;
    std::size_t e = i;
    while (e < order.size() && order[e].first == s) ++e;
    run_keys.clear();
    for (std::size_t k = i; k < e; ++k) run_keys.push_back(keys[order[k].second]);
    if (run_cap < run_keys.size()) {
      run_cap = std::max<std::size_t>(run_keys.size(), 64);
      run_res = std::make_unique<bool[]>(run_cap);
    }
    if (locked) {
      // Locked fallback: route through ShardedFilter, which re-derives the
      // same shard and takes its lock — used only when the owner exited.
      if (insert) {
        sharded_->InsertBatch(run_keys, run_res.get());
      } else {
        sharded_->ContainsBatch(run_keys, run_res.get());
      }
    } else if (insert) {
      // Owner-thread mutation: no shard lock, but the shard seqlock must
      // cover it so foreign workers' optimistic probes validate correctly.
      Filter& sh = sharded_->shard(s);
      SeqLockWriteGuard seq_guard(sharded_->shard_seq(s));
      sh.InsertBatch(run_keys, run_res.get());
    } else {
      sharded_->shard(s).ContainsBatch(run_keys, run_res.get());
    }
    for (std::size_t k = i; k < e; ++k) {
      results[order[k].second] = run_res[k - i];
    }
    i = e;
  }
}

bool VcfServer::PinnedKeyOp(Worker& w, std::uint8_t kind, std::uint64_t key) {
  const std::size_t s = sharded_->ShardFor(key);
  const unsigned o = OwnerOf(s);
  if (o == w.index) {
    Filter& sh = sharded_->shard(s);
    if (kind == 0) return sh.Contains(key);
    // Owner-thread mutation: bump the shard seqlock so foreign workers'
    // in-place lookups (below) validate against it.
    SeqLockWriteGuard seq_guard(sharded_->shard_seq(s));
    return kind == 1 ? sh.Insert(key) : sh.Erase(key);
  }
  if (kind == 0) {
    // Foreign lookup: probe the owner's shard in place through its seqlock —
    // no queue hop, no wait on the owner's event loop. Forward only when the
    // optimistic window keeps closing under a write-heavy owner.
    bool r = false;
    if (sharded_->TryContainsOptimistic(s, key, &r)) return r;
    counters_.seqlock_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::uint32_t> done{0};
  bool result = false;
  ShardTask t;
  t.fn = [this, kind, key, s, &result](bool locked) {
    if (locked) {
      result = kind == 0 ? sharded_->Contains(key)
                         : kind == 1 ? sharded_->Insert(key)
                                     : sharded_->Erase(key);
    } else if (kind == 0) {
      result = sharded_->shard(s).Contains(key);
    } else {
      Filter& sh = sharded_->shard(s);
      SeqLockWriteGuard seq_guard(sharded_->shard_seq(s));
      result = kind == 1 ? sh.Insert(key) : sh.Erase(key);
    }
  };
  t.done = &done;
  if (!EnqueueTask(*workers_[o], std::move(t))) {
    // Owner exited: its unlocked-access guarantee ended with it, so the
    // plain locked path is safe and correct.
    return kind == 0 ? sharded_->Contains(key)
                     : kind == 1 ? sharded_->Insert(key)
                                 : sharded_->Erase(key);
  }
  WaitTaskCount(&w, done, 1);
  return result;
}

void VcfServer::PinnedInsertBatch(Worker& w,
                                  std::span<const std::uint64_t> keys,
                                  bool* results) {
  const unsigned T = options_.threads;
  auto& owner_idx = w.owner_idx;
  owner_idx.resize(T);
  for (auto& v : owner_idx) v.clear();
  for (std::uint32_t j = 0; j < keys.size(); ++j) {
    owner_idx[OwnerOf(sharded_->ShardFor(keys[j]))].push_back(j);
  }
  std::atomic<std::uint32_t> done{0};
  std::uint32_t want = 0;
  for (unsigned o = 0; o < T; ++o) {
    if (o == w.index || owner_idx[o].empty()) continue;
    // The captured spans point at req.keys / the worker's scratch, both
    // alive until WaitTaskCount returns below.
    const std::span<const std::uint32_t> idx(owner_idx[o]);
    ShardTask t;
    t.fn = [this, keys, idx, results](bool locked) {
      RunKeysForOwner(/*insert=*/true, keys, idx, results, locked);
    };
    t.done = &done;
    if (EnqueueTask(*workers_[o], std::move(t))) {
      ++want;
    } else {
      RunKeysForOwner(/*insert=*/true, keys, idx, results, /*locked=*/true);
    }
  }
  if (!owner_idx[w.index].empty()) {
    RunKeysForOwner(/*insert=*/true, keys, owner_idx[w.index], results,
                    /*locked=*/false);
  }
  WaitTaskCount(&w, done, want);
}

void VcfServer::PinnedLookupBatch(Worker& w,
                                  std::span<const std::uint64_t> keys,
                                  bool* results) {
  // Group the batch by shard (stable — the batch-equivalence contract),
  // then serve every group locally: own shards probe unlocked, foreign
  // shards probe in place through their seqlocks. Only groups whose
  // optimistic window kept closing are forwarded to their owners.
  const unsigned T = options_.threads;
  thread_local std::vector<std::pair<std::uint32_t, std::uint32_t>> order;
  thread_local std::vector<std::uint64_t> run_keys;
  thread_local std::unique_ptr<bool[]> run_res;
  thread_local std::size_t run_cap = 0;
  order.clear();
  order.reserve(keys.size());
  for (std::uint32_t j = 0; j < keys.size(); ++j) {
    order.emplace_back(static_cast<std::uint32_t>(sharded_->ShardFor(keys[j])),
                       j);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  auto& owner_idx = w.owner_idx;  // fallback forwarding lists
  owner_idx.resize(T);
  for (auto& v : owner_idx) v.clear();
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t s = order[i].first;
    std::size_t e = i;
    while (e < order.size() && order[e].first == s) ++e;
    run_keys.clear();
    for (std::size_t k = i; k < e; ++k) {
      run_keys.push_back(keys[order[k].second]);
    }
    if (run_cap < run_keys.size()) {
      run_cap = std::max<std::size_t>(run_keys.size(), 64);
      run_res = std::make_unique<bool[]>(run_cap);
    }
    bool served;
    if (OwnerOf(s) == w.index) {
      sharded_->shard(s).ContainsBatch(run_keys, run_res.get());
      served = true;
    } else {
      served = sharded_->TryContainsBatchOptimistic(s, run_keys,
                                                    run_res.get());
      if (!served) {
        counters_.seqlock_fallbacks.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (served) {
      for (std::size_t k = i; k < e; ++k) {
        results[order[k].second] = run_res[k - i];
      }
    } else {
      for (std::size_t k = i; k < e; ++k) {
        owner_idx[OwnerOf(s)].push_back(order[k].second);
      }
    }
    i = e;
  }
  std::atomic<std::uint32_t> done{0};
  std::uint32_t want = 0;
  for (unsigned o = 0; o < T; ++o) {
    if (owner_idx[o].empty()) continue;
    const std::span<const std::uint32_t> idx(owner_idx[o]);
    ShardTask t;
    t.fn = [this, keys, idx, results](bool locked) {
      RunKeysForOwner(/*insert=*/false, keys, idx, results, locked);
    };
    t.done = &done;
    if (EnqueueTask(*workers_[o], std::move(t))) {
      ++want;
    } else {
      RunKeysForOwner(/*insert=*/false, keys, idx, results, /*locked=*/true);
    }
  }
  WaitTaskCount(&w, done, want);
}

void VcfServer::PinnedStats(Worker& w, std::uint64_t& items,
                            std::uint64_t& slots, std::uint64_t& memory) {
  const unsigned T = options_.threads;
  std::vector<ShardedFilter::ShardStats> per(T);
  std::atomic<std::uint32_t> done{0};
  std::uint32_t want = 0;
  std::vector<std::function<void(bool)>> stages(T);
  for (unsigned o = 0; o < T; ++o) {
    stages[o] = [this, o, T, &per](bool locked) {
      ShardedFilter::ShardStats acc;
      for (std::size_t s = o; s < shard_count_; s += T) {
        const ShardedFilter::ShardStats st =
            sharded_->ShardStatsSnapshot(s, locked);
        acc.items += st.items;
        acc.slots += st.slots;
        acc.memory += st.memory;
      }
      per[o] = acc;
    };
    if (o == w.index) {
      stages[o](/*locked=*/false);
      continue;
    }
    if (EnqueueTask(*workers_[o], {stages[o], &done})) {
      ++want;
    } else {
      stages[o](/*locked=*/true);
    }
  }
  WaitTaskCount(&w, done, want);
  items = slots = memory = 0;
  for (const ShardedFilter::ShardStats& st : per) {
    items += st.items;
    slots += st.slots;
    memory += st.memory;
  }
}

// --- Event loop -------------------------------------------------------------

void VcfServer::WorkerLoop(unsigned index) {
  Worker& w = *workers_[index];
  if (!options_.cpu_list.empty()) {
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(options_.cpu_list[index % options_.cpu_list.size()], &set);
    // Best-effort: an invalid cpu id just leaves the thread unpinned.
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (w.poller.Wait(events, /*timeout_ms=*/500) < 0) break;
    if (pinned_) DrainTasks(w, /*locked=*/false);
    for (const Poller::Event& ev : events) {
      if (ev.fd == shutdown_pipe_[0]) continue;  // stop_ check drives exit
      if (ev.fd == listen_fd_) {
        AcceptReady(w);
        continue;
      }
      if (ev.fd == w.wakeup[0]) {
        std::uint8_t drain[64];
        while (net::ReadSome(w.wakeup[0], drain) > 0) {
        }
        std::vector<int> fresh;
        {
          std::lock_guard lock(w.inbox_mutex);
          fresh.swap(w.inbox);
        }
        for (const int fd : fresh) {
          Connection conn;
          conn.fd = fd;
          w.conns.emplace(fd, std::move(conn));
          w.poller.Add(fd, /*want_read=*/true, /*want_write=*/false);
        }
        if (pinned_) DrainTasks(w, /*locked=*/false);
        continue;
      }
      const auto it = w.conns.find(ev.fd);
      if (it == w.conns.end()) continue;
      Connection& conn = it->second;
      bool alive = !ev.error;
      if (alive && ev.writable) alive = FlushWrites(conn);
      if (alive && ev.readable) alive = ServeReadable(w, conn);
      if (alive && conn.close_after_flush && conn.PendingBytes() == 0) {
        alive = false;
      }
      if (!alive) {
        CloseConnection(w, ev.fd);
        continue;
      }
      const std::size_t pending = conn.PendingBytes();
      w.poller.Update(ev.fd,
                      /*want_read=*/!conn.close_after_flush &&
                          pending < kWriteHighWater,
                      /*want_write=*/pending > 0);
    }
    if (w.replica_conns > 0) {
      // Stream to every replica this worker owns. Runs after each poll
      // round — journal appends poke the wakeup pipe so Wait() returns
      // promptly, and the timeout tick backstops any lost wakeup.
      std::vector<int> replica_fds;
      replica_fds.reserve(static_cast<std::size_t>(w.replica_conns));
      for (const auto& [fd, conn] : w.conns) {
        if (conn.is_replica) replica_fds.push_back(fd);
      }
      for (const int fd : replica_fds) {
        const auto rit = w.conns.find(fd);
        if (rit == w.conns.end()) continue;
        Connection& conn = rit->second;
        if (PumpReplica(conn) && FlushWrites(conn)) {
          const std::size_t pending = conn.PendingBytes();
          w.poller.Update(fd, /*want_read=*/pending < kWriteHighWater,
                          /*want_write=*/pending > 0);
        } else {
          CloseConnection(w, fd);
        }
      }
    }
  }
  if (pinned_) {
    // Exit protocol: refuse new forwards first (under the same mutex the
    // enqueue checks), then run everything already queued through the
    // LOCKED path — our exclusive-ownership guarantee ends here, and late
    // fallback callers will be taking the shard locks concurrently.
    {
      std::lock_guard lock(w.task_mutex);
      w.accepting_tasks = false;
    }
    DrainTasks(w, /*locked=*/true);
  }
  // Drain: one best-effort flush per connection so ACKs for already-applied
  // mutations reach the client where possible, then close.
  for (auto& [fd, conn] : w.conns) {
    FlushWrites(conn);
    net::CloseFd(fd);
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  w.conns.clear();
}

void VcfServer::AcceptReady(Worker& w) {
  (void)w;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: poller will re-arm
    }
    net::SetNonBlocking(fd);
    net::SetNoDelay(fd);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    Worker& target =
        *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                  workers_.size()];
    {
      std::lock_guard lock(target.inbox_mutex);
      target.inbox.push_back(fd);
    }
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(target.wakeup[1], &byte, 1);
  }
}

bool VcfServer::ServeReadable(Worker& w, Connection& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = net::ReadSome(conn.fd, buf);
    if (n == -2) break;          // drained
    if (n <= 0) return false;    // EOF or error
    if (!conn.in.Append(std::span<const std::uint8_t>(
            buf, static_cast<std::size_t>(n)))) {
      // Oversized length prefix: the stream cannot be re-synced. Tell the
      // peer why, then close once the reply flushes.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    std::span<const std::uint8_t> payload;
    while (!conn.close_after_flush && conn.in.Next(payload)) {
      if (coalesce_) {
        const Run::Kind kind = ClassifyFrame(payload);
        if (kind != Run::Kind::kNone) {
          if (w.run.kind != Run::Kind::kNone && w.run.kind != kind) {
            FlushRun(w, conn);
          }
          if (AppendToRun(w, kind, payload)) {
            conn.in.Pop();
            if (w.run.keys.size() >= kCoalesceMaxKeys) FlushRun(w, conn);
            continue;
          }
          // Malformed despite a plausible header: flush what preceded it so
          // response order holds, then let HandleFrame produce the error.
        }
        FlushRun(w, conn);
      }
      HandleFrame(w, conn, payload);
      conn.in.Pop();
    }
    if (coalesce_) FlushRun(w, conn);
    if (conn.in.poisoned()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    if (conn.PendingBytes() >= kWriteHighWater) break;
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // likely drained
  }
  return FlushWrites(conn);
}

bool VcfServer::FlushWrites(Connection& conn) {
  const std::size_t head = conn.sending.size() - conn.send_off;
  const std::size_t fresh = conn.out.size();
  if (head + fresh == 0) return true;
  struct iovec iov[2];
  std::size_t cnt = 0;
  if (head > 0) {
    iov[cnt].iov_base = conn.sending.data() + conn.send_off;
    iov[cnt].iov_len = head;
    ++cnt;
  }
  if (fresh > 0) {
    iov[cnt].iov_base = conn.out.data();
    iov[cnt].iov_len = fresh;
    ++cnt;
  }
  std::size_t written = 0;
  if (!net::WritevAll(conn.fd, std::span<const struct iovec>(iov, cnt),
                      &written)) {
    return false;
  }
  const std::size_t from_head = std::min(written, head);
  const std::size_t from_out = written - from_head;
  conn.send_off += from_head;
  if (conn.send_off == conn.sending.size()) {
    conn.sending.clear();
    conn.send_off = 0;
  }
  if (from_out == fresh) {
    conn.out.clear();
  } else if (from_out > 0) {
    // writev consumes segments in order, so a partially-written `out`
    // implies the old tail fully drained: `out` becomes the new in-flight
    // tail and the (empty) old buffer becomes the accumulator. No copy.
    conn.sending.swap(conn.out);
    conn.out.clear();
    conn.send_off = from_out;
  }
  return true;
}

// --- Coalescer --------------------------------------------------------------

VcfServer::Run::Kind VcfServer::ClassifyFrame(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() < net::kHeaderSize) return Run::Kind::kNone;
  if (payload[0] != net::kProtoVersion) return Run::Kind::kNone;
  if (stop_.load(std::memory_order_relaxed)) return Run::Kind::kNone;
  switch (static_cast<net::Opcode>(payload[1])) {
    case net::Opcode::kLookup:
    case net::Opcode::kLookupBatch:
      return Run::Kind::kLookup;
    case net::Opcode::kInsert:
    case net::Opcode::kInsertBatch:
      // Insert coalescing is only response-equivalent when no op log
      // serialises mutations into journal order and writes are accepted at
      // all; otherwise the slow path handles journaling/rejection.
      if (oplog_ != nullptr || options_.read_only) return Run::Kind::kNone;
      return Run::Kind::kInsert;
    default:
      return Run::Kind::kNone;
  }
}

bool VcfServer::AppendToRun(Worker& w, Run::Kind kind,
                            std::span<const std::uint8_t> payload) {
  net::Request req;
  if (net::DecodeRequest(payload, req) != net::DecodeResult::kOk) return false;
  Run& run = w.run;
  run.kind = kind;
  Run::FrameRef ref;
  ref.request_id = req.request_id;
  if (req.opcode == net::Opcode::kInsert ||
      req.opcode == net::Opcode::kLookup) {
    ref.nkeys = 1;
    ref.batch = false;
    run.keys.push_back(req.key);
  } else {
    ref.nkeys = static_cast<std::uint32_t>(req.keys.size());
    ref.batch = true;
    run.keys.insert(run.keys.end(), req.keys.begin(), req.keys.end());
  }
  run.frames.push_back(ref);
  return true;
}

void VcfServer::FlushRun(Worker& w, Connection& conn) {
  Run& run = w.run;
  if (run.kind == Run::Kind::kNone) return;
  const std::size_t n = run.keys.size();
  if (w.results_cap < std::max<std::size_t>(n, 1)) {
    w.results_cap = std::max<std::size_t>(n, 64);
    w.results = std::make_unique<bool[]>(w.results_cap);
  }
  bool* results = w.results.get();
  const bool insert = run.kind == Run::Kind::kInsert;
  if (n > 0) {
    const std::span<const std::uint64_t> keys(run.keys);
    if (pinned_) {
      if (insert) {
        PinnedInsertBatch(w, keys, results);
      } else {
        PinnedLookupBatch(w, keys, results);
      }
    } else if (options_.filter_internally_locked) {
      if (insert) {
        filter_->InsertBatch(keys, results);
      } else {
        filter_->ContainsBatch(keys, results);
      }
    } else if (insert) {
      std::unique_lock lock(filter_mutex_);
      SeqLockWriteGuard seq_guard(filter_seq_);
      filter_->InsertBatch(keys, results);
    } else if (!TryLookupBatchOptimistic(keys, results)) {
      std::shared_lock lock(filter_mutex_);
      filter_->ContainsBatch(keys, results);
    }
  }
  // Per-frame responses, in frame order, each over its slice of the run's
  // results. Identical bytes to per-frame execution: the Filter batch
  // contract pins results[i] = the sequential op outcome.
  std::size_t off = 0;
  for (const Run::FrameRef& ref : run.frames) {
    if (!ref.batch) {
      net::EncodeFlagResponse(conn.out, ref.request_id, results[off]);
    } else {
      const std::span<const bool> slice(results + off, ref.nkeys);
      std::uint32_t accepted = 0;
      if (insert) {
        for (const bool b : slice) accepted += b ? 1u : 0u;
      }
      net::EncodeBatchResponse(conn.out,
                               insert ? net::Opcode::kInsertBatch
                                      : net::Opcode::kLookupBatch,
                               ref.request_id, slice, accepted);
    }
    off += ref.nkeys;
  }
  counters_.requests.fetch_add(run.frames.size(), std::memory_order_relaxed);
  counters_.coalesced_frames.fetch_add(run.frames.size(),
                                       std::memory_order_relaxed);
  if (run.frames.size() > 1) {
    counters_.coalesced_runs.fetch_add(1, std::memory_order_relaxed);
  }
  run.kind = Run::Kind::kNone;
  run.keys.clear();
  run.frames.clear();
}

void VcfServer::HandleFrame(Worker& w, Connection& conn,
                            std::span<const std::uint8_t> payload) {
  using net::Opcode;
  using net::Status;
  std::vector<std::uint8_t>& out = conn.out;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  net::Request req;
  switch (net::DecodeRequest(payload, req)) {
    case net::DecodeResult::kOk:
      break;
    case net::DecodeResult::kBadVersion:
      // A peer speaking another protocol version cannot be trusted to agree
      // on framing either; answer and drop the connection.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadVersion,
                               net::PeekRequestId(payload));
      conn.close_after_flush = true;
      return;
    case net::DecodeResult::kBadOpcode:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadOpcode,
                               net::PeekRequestId(payload));
      return;  // framing was intact; the connection survives
    case net::DecodeResult::kMalformed:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadRequest,
                               net::PeekRequestId(payload));
      return;
  }
  if (stop_.load(std::memory_order_relaxed) && req.opcode != Opcode::kPing) {
    net::EncodeErrorResponse(out, Status::kShuttingDown, req.request_id);
    return;
  }
  const bool internal = options_.filter_internally_locked;
  const bool mutation = req.opcode == Opcode::kInsert ||
                        req.opcode == Opcode::kDelete ||
                        req.opcode == Opcode::kInsertBatch;
  if (mutation && options_.read_only) {
    counters_.read_only_rejections.fetch_add(1, std::memory_order_relaxed);
    net::EncodeErrorResponse(out, Status::kReadOnly, req.request_id);
    return;
  }
  switch (req.opcode) {
    case Opcode::kPing:
      net::EncodePingResponse(out, req.request_id, req.ping_echo);
      return;
    case Opcode::kInsert:
    case Opcode::kDelete: {
      const bool erase = req.opcode == Opcode::kDelete;
      if (erase && !filter_->SupportsDeletion()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      bool ok;
      if (oplog_ != nullptr) {
        bool journal_failed = false;
        {
          std::lock_guard repl(repl_mutex_);
          if (internal) {
            ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
          } else {
            std::unique_lock lock(filter_mutex_);
            SeqLockWriteGuard seq_guard(filter_seq_);
            ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
          }
          if (ok) {
            if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogAppend)) {
              // Journal failed: undo the apply so the error we report is
              // the truth — an op is either ACKed AND journaled, or
              // neither. (Undo needs a deletable filter; see docs.)
              if (internal) {
                if (erase) filter_->Insert(req.key);
                else filter_->Erase(req.key);
              } else {
                std::unique_lock lock(filter_mutex_);
                SeqLockWriteGuard seq_guard(filter_seq_);
                if (erase) filter_->Insert(req.key);
                else filter_->Erase(req.key);
              }
              journal_failed = true;
            } else {
              applied_seq_.store(
                  oplog_->Append(erase ? kOplogErase : kOplogInsert, req.key),
                  std::memory_order_release);
              counters_.oplog_appends.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (journal_failed) {
          net::EncodeErrorResponse(out, Status::kServerError, req.request_id);
          return;
        }
        if (ok) NotifyReplicas();
      } else if (pinned_) {
        ok = PinnedKeyOp(w, erase ? 2 : 1, req.key);
      } else if (internal) {
        ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
      } else {
        std::unique_lock lock(filter_mutex_);
        SeqLockWriteGuard seq_guard(filter_seq_);
        ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kLookup: {
      bool ok;
      if (pinned_) {
        ok = PinnedKeyOp(w, 0, req.key);
      } else if (internal) {
        ok = filter_->Contains(req.key);
      } else if (!TryLookupOptimistic(req.key, &ok)) {
        std::shared_lock lock(filter_mutex_);
        ok = filter_->Contains(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kInsertBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      std::size_t accepted;
      if (oplog_ != nullptr) {
        bool journal_failed = false;
        {
          std::lock_guard repl(repl_mutex_);
          if (internal) {
            accepted = filter_->InsertBatch(req.keys, results.get());
          } else {
            std::unique_lock lock(filter_mutex_);
            SeqLockWriteGuard seq_guard(filter_seq_);
            accepted = filter_->InsertBatch(req.keys, results.get());
          }
          if (accepted > 0 &&
              VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogAppend)) {
            // Roll the whole batch back; the client sees kServerError and
            // no key from it is ACKed or journaled.
            if (internal) {
              for (std::size_t i = 0; i < n; ++i) {
                if (results[i]) filter_->Erase(req.keys[i]);
              }
            } else {
              std::unique_lock lock(filter_mutex_);
              SeqLockWriteGuard seq_guard(filter_seq_);
              for (std::size_t i = 0; i < n; ++i) {
                if (results[i]) filter_->Erase(req.keys[i]);
              }
            }
            journal_failed = true;
          } else {
            std::uint64_t seq = 0;
            for (std::size_t i = 0; i < n; ++i) {
              if (results[i]) seq = oplog_->Append(kOplogInsert, req.keys[i]);
            }
            if (accepted > 0) {
              applied_seq_.store(seq, std::memory_order_release);
              counters_.oplog_appends.fetch_add(accepted,
                                                std::memory_order_relaxed);
            }
          }
        }
        if (journal_failed) {
          net::EncodeErrorResponse(out, Status::kServerError, req.request_id);
          return;
        }
        if (accepted > 0) NotifyReplicas();
      } else if (pinned_) {
        PinnedInsertBatch(w, req.keys, results.get());
        accepted = 0;
        for (std::size_t i = 0; i < n; ++i) accepted += results[i] ? 1 : 0;
      } else if (internal) {
        accepted = filter_->InsertBatch(req.keys, results.get());
      } else {
        std::unique_lock lock(filter_mutex_);
        SeqLockWriteGuard seq_guard(filter_seq_);
        accepted = filter_->InsertBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kInsertBatch, req.request_id,
                               std::span<const bool>(results.get(), n),
                               static_cast<std::uint32_t>(accepted));
      return;
    }
    case Opcode::kLookupBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      if (pinned_) {
        PinnedLookupBatch(w, req.keys, results.get());
      } else if (internal) {
        filter_->ContainsBatch(req.keys, results.get());
      } else if (!TryLookupBatchOptimistic(req.keys, results.get())) {
        std::shared_lock lock(filter_mutex_);
        filter_->ContainsBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kLookupBatch, req.request_id,
                               std::span<const bool>(results.get(), n), 0);
      return;
    }
    case Opcode::kStats: {
      std::string name;
      std::uint64_t items, slots, memory;
      double lf;
      bool deletion;
      if (pinned_) {
        // Name/SupportsDeletion are immutable post-construction; size
        // counters come from each shard's owner.
        name = filter_->Name();
        deletion = filter_->SupportsDeletion();
        PinnedStats(w, items, slots, memory);
        lf = slots == 0 ? 0.0
                        : static_cast<double>(items) /
                              static_cast<double>(slots);
      } else if (internal) {
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      } else {
        std::shared_lock lock(filter_mutex_);
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      }
      // Trailers: optimistic-read contention from wherever the protocol ran
      // (filter wrappers or the server-level path), hugepage-backed bytes
      // for every live table, and elastic migration progress summed over
      // every elastic leaf (ForEachLeaf briefly holds the wrappers' write
      // locks; the counters themselves are relaxed atomics).
      const OpCounters& fc = filter_->counters();
      const HugepageStats hp = GetHugepageStats();
      std::uint64_t el_resizes = 0, el_backlog = 0, el_dual = 0;
      filter_->ForEachLeaf([&](Filter& leaf) {
        if (auto* e = dynamic_cast<ElasticFilter*>(&leaf)) {
          el_resizes += e->Resizes();
          el_backlog += e->MigrationBacklog();
          el_dual += e->DualReads();
        }
      });
      net::EncodeStatsResponse(
          out, req.request_id, name, items, slots, memory, lf, deletion,
          fc.seqlock_retries.Value() +
              counters_.seqlock_retries.load(std::memory_order_relaxed),
          fc.seqlock_fallbacks.Value() +
              counters_.seqlock_fallbacks.load(std::memory_order_relaxed),
          hp.thp_bytes + hp.hugetlb_bytes, el_resizes, el_backlog, el_dual);
      return;
    }
    case Opcode::kSnapshot: {
      if (options_.state_path.empty()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      net::EncodeFlagResponse(out, req.request_id, CheckpointImpl(&w));
      return;
    }
    case Opcode::kWorkerInfo:
      // Live directory size, not the Start()-time cache: a SHARD_SPLIT may
      // have grown it (never in pinned mode, where clients rely on it).
      net::EncodeWorkerInfoResponse(
          out, req.request_id, w.index, options_.threads,
          static_cast<std::uint32_t>(sharded_ != nullptr
                                         ? sharded_->shard_count()
                                         : shard_count_),
          route_salt_, pinned_);
      return;
    case Opcode::kResize: {
      if (options_.read_only) {
        counters_.read_only_rejections.fetch_add(1, std::memory_order_relaxed);
        net::EncodeErrorResponse(out, Status::kReadOnly, req.request_id);
        return;
      }
      if (pinned_) {
        // Owners mutate their shards without locks; an admin-thread
        // BeginGrow inside one would race them.
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      bool any_elastic = false;
      bool started = false;
      const auto grow = [&](Filter& leaf) {
        if (auto* e = dynamic_cast<ElasticFilter*>(&leaf)) {
          any_elastic = true;
          started = e->BeginGrow() || started;
        }
      };
      if (internal) {
        filter_->ForEachLeaf(grow);  // wrappers hold their write locks
      } else {
        std::unique_lock lock(filter_mutex_);
        SeqLockWriteGuard seq_guard(filter_seq_);
        filter_->ForEachLeaf(grow);
      }
      if (!any_elastic) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      net::EncodeFlagResponse(out, req.request_id, started);
      return;
    }
    case Opcode::kShardSplit: {
      if (options_.read_only) {
        counters_.read_only_rejections.fetch_add(1, std::memory_order_relaxed);
        net::EncodeErrorResponse(out, Status::kReadOnly, req.request_id);
        return;
      }
      if (sharded_ == nullptr || pinned_ || !sharded_->has_shard_builder()) {
        // Pinned mode's shard→owner assignment is fixed at Start(); a live
        // topology change would orphan the clone.
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      std::string split_error;
      if (!sharded_->SplitShard(req.shard_entry, &split_error)) {
        std::fprintf(stderr, "vcfd: SHARD_SPLIT(%u) refused: %s\n",
                     req.shard_entry, split_error.c_str());
        net::EncodeErrorResponse(out, Status::kServerError, req.request_id);
        return;
      }
      net::EncodeFlagResponse(out, req.request_id, true);
      return;
    }
    case Opcode::kReplHello: {
      if (oplog_ == nullptr) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      const std::uint64_t replica_last = req.seq;
      // The replica's sequence numbers only mean anything against THIS run's
      // op log: a restarted primary journals from 1 again, so a stale epoch
      // (or none, with a nonzero position) forces the snapshot path even
      // when the raw numbers happen to look servable.
      const bool same_epoch = replica_last == 0 || req.epoch == run_id_;
      bool snapshot = false;
      std::uint64_t start_seq = 0;
      {
        std::lock_guard repl(repl_mutex_);
        if (same_epoch && oplog_->CanServeFrom(replica_last + 1)) {
          // The log still retains everything past the replica's position:
          // resume the stream, no bootstrap needed.
          start_seq = replica_last + 1;
          conn.snapshot_pending = false;
          conn.repl_next_seq = start_seq;
        } else {
          // Too far behind (or joining fresh after evictions): stream a
          // snapshot of the current state. Built under repl_mutex_ so it
          // covers exactly the ops up to snapshot_seq.
          std::ostringstream inner;
          bool ok;
          if (options_.filter_internally_locked) {
            ok = filter_->SaveState(inner);
          } else {
            std::shared_lock lock(filter_mutex_);
            ok = filter_->SaveState(inner);
          }
          if (!ok) {
            net::EncodeErrorResponse(out, Status::kServerError,
                                     req.request_id);
            return;
          }
          std::ostringstream envelope;
          if (!detail::WriteFramedBlob(envelope, inner.str())) {
            net::EncodeErrorResponse(out, Status::kServerError,
                                     req.request_id);
            return;
          }
          snapshot = true;
          conn.snapshot_buf = envelope.str();
          conn.snapshot_off = 0;
          conn.snapshot_pending = true;
          conn.snapshot_seq = oplog_->last();
          conn.repl_next_seq = conn.snapshot_seq + 1;
          start_seq = conn.snapshot_seq;
          counters_.repl_snapshots_streamed.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      net::EncodeReplHelloResponse(out, req.request_id, snapshot, start_seq,
                                   run_id_);
      if (snapshot) {
        net::EncodeSnapshotBegin(out, conn.snapshot_seq,
                                 conn.snapshot_buf.size());
      }
      if (!conn.is_replica) {
        conn.is_replica = true;
        ++w.replica_conns;
        w.has_replicas.store(true, std::memory_order_relaxed);
      }
      // The event loop pumps chunks/entries after this frame is handled.
      return;
    }
    case Opcode::kOplogAck:
      // Cumulative progress marker (and keepalive) from a replica; a
      // spoofed ACK from a non-replica peer is meaningless and ignored.
      if (conn.is_replica) conn.repl_acked_seq = req.seq;
      return;
    case Opcode::kOplogEntry:
    case Opcode::kSnapshotBegin:
    case Opcode::kSnapshotChunk:
    case Opcode::kSnapshotEnd:
      // Primary-to-replica stream frames; nothing a server should receive.
      net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
      return;
  }
  net::EncodeErrorResponse(out, Status::kBadOpcode, req.request_id);
}

bool VcfServer::PumpReplica(Connection& conn) {
  if (!conn.is_replica || oplog_ == nullptr) return true;
  while (conn.snapshot_pending && conn.PendingBytes() < kWriteHighWater) {
    if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplSnapshotChunk)) {
      return false;  // drill: cut the replica off mid-snapshot
    }
    const std::size_t remaining = conn.snapshot_buf.size() - conn.snapshot_off;
    const std::size_t n =
        std::min<std::size_t>(remaining, net::kReplChunkBytes);
    if (n > 0) {
      net::EncodeSnapshotChunk(
          conn.out,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(conn.snapshot_buf.data()) +
                  conn.snapshot_off,
              n));
      conn.snapshot_off += n;
    }
    if (conn.snapshot_off == conn.snapshot_buf.size()) {
      net::EncodeSnapshotEnd(conn.out, conn.snapshot_buf.size(),
                             SplitMixHash64(conn.snapshot_buf.data(),
                                            conn.snapshot_buf.size(), 0));
      conn.snapshot_buf.clear();
      conn.snapshot_off = 0;
      conn.snapshot_pending = false;
    }
  }
  if (conn.snapshot_pending) return true;  // backpressured mid-snapshot
  std::vector<OplogEntry> entries;
  while (conn.PendingBytes() < kWriteHighWater) {
    entries.clear();
    if (!oplog_->CopyFrom(conn.repl_next_seq, 256, entries)) {
      // The replica's position fell off the bounded log's tail (it was
      // backpressured or partitioned too long): disconnect so its next
      // handshake resyncs via snapshot instead of silently diverging.
      return false;
    }
    if (entries.empty()) break;  // caught up
    for (const OplogEntry& e : entries) {
      if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogStream)) {
        return false;  // drill: mid-stream disconnect
      }
      net::EncodeOplogEntry(conn.out, e.seq, e.op, e.key);
    }
    conn.repl_next_seq = entries.back().seq + 1;
    counters_.repl_entries_streamed.fetch_add(entries.size(),
                                              std::memory_order_relaxed);
  }
  return true;
}

void VcfServer::NotifyReplicas() {
  for (const auto& w : workers_) {
    if (w->has_replicas.load(std::memory_order_relaxed)) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(w->wakeup[1], &byte, 1);
    }
  }
}

bool VcfServer::ApplyReplicated(std::uint8_t op, std::uint64_t key,
                                std::uint64_t seq) {
  std::lock_guard repl(repl_mutex_);
  bool ok;
  if (options_.filter_internally_locked) {
    ok = op == kOplogErase ? filter_->Erase(key) : filter_->Insert(key);
  } else {
    std::unique_lock lock(filter_mutex_);
    SeqLockWriteGuard seq_guard(filter_seq_);
    ok = op == kOplogErase ? filter_->Erase(key) : filter_->Insert(key);
  }
  applied_seq_.store(seq, std::memory_order_release);
  return ok;
}

bool VcfServer::InstallSnapshot(const std::string& envelope, std::uint64_t seq,
                                std::uint64_t epoch, std::string* error) {
  std::istringstream in(envelope);
  std::string blob;
  if (!detail::ReadFramedBlob(in, &blob, envelope.size())) {
    if (error != nullptr) *error = "malformed snapshot envelope";
    return false;
  }
  std::istringstream inner(blob);
  std::lock_guard repl(repl_mutex_);
  bool ok;
  if (options_.filter_internally_locked) {
    ok = filter_->LoadState(inner);
  } else {
    std::unique_lock lock(filter_mutex_);
    SeqLockWriteGuard seq_guard(filter_seq_);
    ok = filter_->LoadState(inner);
  }
  if (!ok) {
    if (error != nullptr) {
      *error = "snapshot blob rejected by filter (mismatched parameters?)";
    }
    return false;
  }
  applied_seq_.store(seq, std::memory_order_release);
  repl_epoch_ = epoch;
  return true;
}

void VcfServer::SetReplEpoch(std::uint64_t epoch) {
  std::lock_guard repl(repl_mutex_);
  repl_epoch_ = epoch;
}

void VcfServer::CloseConnection(Worker& w, int fd) {
  const auto it = w.conns.find(fd);
  if (it != w.conns.end() && it->second.is_replica) {
    if (--w.replica_conns == 0) {
      w.has_replicas.store(false, std::memory_order_relaxed);
    }
  }
  w.poller.Remove(fd);
  w.conns.erase(fd);
  net::CloseFd(fd);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vcf::server
