#include "server/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <random>
#include <fstream>
#include <mutex>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#include <unordered_map>

#include "common/failpoint.hpp"
#include "core/state_io.hpp"
#include "hash/hash64.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"

namespace vcf::server {

namespace {

/// Stop reading from a connection whose unsent responses exceed this, until
/// the peer drains them — bounds server memory against a client that
/// pipelines requests but never reads replies.
constexpr std::size_t kWriteHighWater = 8u << 20;

bool MakePipe(int fds[2]) {
  if (::pipe(fds) != 0) return false;
  // Non-blocking on both ends: the writer must never stall a signal
  // handler, and workers only poll readability without draining.
  return net::SetNonBlocking(fds[0]) && net::SetNonBlocking(fds[1]);
}

}  // namespace

struct VcfServer::Connection {
  int fd = -1;
  net::FrameBuffer in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  bool close_after_flush = false;
  // Replica-stream state (set by REPLICATE_HELLO, owning worker only):
  bool is_replica = false;
  std::uint64_t repl_next_seq = 0;   ///< next op-log seq to stream
  std::uint64_t repl_acked_seq = 0;  ///< replica's cumulative ACK
  bool snapshot_pending = false;
  std::uint64_t snapshot_seq = 0;
  std::string snapshot_buf;  ///< framed checkpoint envelope being streamed
  std::size_t snapshot_off = 0;
};

struct VcfServer::Worker {
  explicit Worker(Poller::Backend backend) : poller(backend) {}

  Poller poller;
  int wakeup[2] = {-1, -1};
  std::mutex inbox_mutex;
  std::vector<int> inbox;  ///< freshly accepted fds awaiting registration
  std::unordered_map<int, Connection> conns;
  int replica_conns = 0;  ///< owning-thread count of replica connections
  /// Read by journaling threads (NotifyReplicas) without the worker's
  /// cooperation, hence atomic; written only by the owning thread.
  std::atomic<bool> has_replicas{false};
};

VcfServer::VcfServer(std::unique_ptr<Filter> filter, Options options)
    : filter_(std::move(filter)), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
  if (options_.oplog_capacity > 0) {
    oplog_ = std::make_unique<OplogBuffer>(options_.oplog_capacity);
    // One run ID per primary incarnation: a replica's resume position is
    // only honoured when it quotes this ID back, so sequence numbers from a
    // previous incarnation's log can never be mistaken for this one's.
    std::random_device rd;
    run_id_ = (static_cast<std::uint64_t>(rd()) << 32) | rd();
    if (run_id_ == 0) run_id_ = 1;  // 0 is "no epoch" on the wire
  }
}

VcfServer::~VcfServer() {
  RequestShutdown();
  Join();
}

bool VcfServer::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  listen_fd_ = net::ListenTcp(options_.port, error);
  if (listen_fd_ < 0) return false;
  if (!net::SetNonBlocking(listen_fd_)) {
    if (error != nullptr) *error = "could not set listen socket non-blocking";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = net::BoundPort(listen_fd_);
  if (!MakePipe(shutdown_pipe_)) {
    if (error != nullptr) *error = "could not create shutdown pipe";
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  workers_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto w = std::make_unique<Worker>(options_.backend);
    if (!MakePipe(w->wakeup)) {
      if (error != nullptr) *error = "could not create worker wakeup pipe";
      RequestShutdown();
      Join();
      return false;
    }
    w->poller.Add(shutdown_pipe_[0], /*want_read=*/true, /*want_write=*/false);
    w->poller.Add(w->wakeup[0], /*want_read=*/true, /*want_write=*/false);
    if (i == 0) {
      w->poller.Add(listen_fd_, /*want_read=*/true, /*want_write=*/false);
    }
    workers_.push_back(std::move(w));
  }
  threads_.reserve(options_.threads);
  for (unsigned i = 0; i < options_.threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
  started_ = true;
  return true;
}

void VcfServer::RequestShutdown() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (shutdown_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe: write(2) on a non-blocking pipe. The return value
    // is irrelevant — a full pipe is already readable, which is the signal.
    [[maybe_unused]] const ssize_t n =
        ::write(shutdown_pipe_[1], &byte, 1);
  }
}

bool VcfServer::Join() {
  if (joined_ || !started_) return true;
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  for (auto& w : workers_) {
    for (auto& [fd, conn] : w->conns) net::CloseFd(fd);
    w->conns.clear();
    net::CloseFd(w->wakeup[0]);
    net::CloseFd(w->wakeup[1]);
  }
  workers_.clear();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  net::CloseFd(shutdown_pipe_[0]);
  net::CloseFd(shutdown_pipe_[1]);
  shutdown_pipe_[0] = shutdown_pipe_[1] = -1;
  joined_ = true;
  if (!options_.state_path.empty()) return CheckpointNow();
  return true;
}

bool VcfServer::ServeUntilShutdown() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd p{};
    p.fd = shutdown_pipe_[0];
    p.events = POLLIN;
    ::poll(&p, 1, 500);
  }
  return Join();
}

bool VcfServer::CheckpointNow() {
  if (options_.state_path.empty()) return false;
  std::lock_guard checkpoint_lock(checkpoint_mutex_);
  const bool repl = oplog_ != nullptr || options_.read_only;
  std::uint64_t covered_seq = 0;
  std::uint64_t covered_epoch = 0;
  const std::string tmp = options_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    // With replication on, hold the mutation order lock across the save so
    // the checkpoint covers exactly the ops up to `covered_seq` — the
    // invariant the resume sidecar and the convergence drills rely on.
    std::unique_lock<std::mutex> repl_lock;
    if (repl) {
      repl_lock = std::unique_lock(repl_mutex_);
      covered_seq = oplog_ != nullptr
                        ? oplog_->last()
                        : applied_seq_.load(std::memory_order_acquire);
      covered_epoch = oplog_ != nullptr ? run_id_ : repl_epoch_;
    }
    bool ok;
    if (options_.filter_internally_locked) {
      ok = filter_->SaveState(out);
    } else {
      std::shared_lock lock(filter_mutex_);
      ok = filter_->SaveState(out);
    }
    out.flush();
    if (!ok || !out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), options_.state_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  counters_.checkpoints.fetch_add(1, std::memory_order_relaxed);
  if (repl && !options_.repl_meta_path.empty()) {
    // Sidecar write is best-effort: losing it only costs a snapshot
    // re-bootstrap on the next restart, never correctness.
    std::uint64_t digest = 0;
    if (FileDigest(options_.state_path, &digest)) {
      WriteReplMeta(options_.repl_meta_path,
                    ReplMeta{covered_seq, covered_epoch, digest});
    }
  }
  return true;
}

bool VcfServer::TryRestore(std::string* error) {
  if (options_.state_path.empty()) return true;
  std::ifstream in(options_.state_path, std::ios::binary);
  if (!in) return true;  // missing checkpoint: clean cold start
  std::unique_lock lock(filter_mutex_);
  if (!filter_->LoadState(in)) {
    if (error != nullptr) {
      *error = "corrupt checkpoint or mismatched --filter flags: " +
               options_.state_path;
    }
    return false;
  }
  return true;
}

void VcfServer::WorkerLoop(unsigned index) {
  Worker& w = *workers_[index];
  std::vector<Poller::Event> events;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (w.poller.Wait(events, /*timeout_ms=*/500) < 0) break;
    for (const Poller::Event& ev : events) {
      if (ev.fd == shutdown_pipe_[0]) continue;  // stop_ check drives exit
      if (ev.fd == listen_fd_) {
        AcceptReady(w);
        continue;
      }
      if (ev.fd == w.wakeup[0]) {
        std::uint8_t drain[64];
        while (net::ReadSome(w.wakeup[0], drain) > 0) {
        }
        std::vector<int> fresh;
        {
          std::lock_guard lock(w.inbox_mutex);
          fresh.swap(w.inbox);
        }
        for (const int fd : fresh) {
          Connection conn;
          conn.fd = fd;
          w.conns.emplace(fd, std::move(conn));
          w.poller.Add(fd, /*want_read=*/true, /*want_write=*/false);
        }
        continue;
      }
      const auto it = w.conns.find(ev.fd);
      if (it == w.conns.end()) continue;
      Connection& conn = it->second;
      bool alive = !ev.error;
      if (alive && ev.writable) alive = FlushWrites(conn);
      if (alive && ev.readable) alive = ServeReadable(w, conn);
      if (alive && conn.close_after_flush &&
          conn.out_off == conn.out.size()) {
        alive = false;
      }
      if (!alive) {
        CloseConnection(w, ev.fd);
        continue;
      }
      const std::size_t pending = conn.out.size() - conn.out_off;
      w.poller.Update(ev.fd,
                      /*want_read=*/!conn.close_after_flush &&
                          pending < kWriteHighWater,
                      /*want_write=*/pending > 0);
    }
    if (w.replica_conns > 0) {
      // Stream to every replica this worker owns. Runs after each poll
      // round — journal appends poke the wakeup pipe so Wait() returns
      // promptly, and the timeout tick backstops any lost wakeup.
      std::vector<int> replica_fds;
      replica_fds.reserve(static_cast<std::size_t>(w.replica_conns));
      for (const auto& [fd, conn] : w.conns) {
        if (conn.is_replica) replica_fds.push_back(fd);
      }
      for (const int fd : replica_fds) {
        const auto rit = w.conns.find(fd);
        if (rit == w.conns.end()) continue;
        Connection& conn = rit->second;
        if (PumpReplica(conn) && FlushWrites(conn)) {
          const std::size_t pending = conn.out.size() - conn.out_off;
          w.poller.Update(fd, /*want_read=*/pending < kWriteHighWater,
                          /*want_write=*/pending > 0);
        } else {
          CloseConnection(w, fd);
        }
      }
    }
  }
  // Drain: one best-effort flush per connection so ACKs for already-applied
  // mutations reach the client where possible, then close.
  for (auto& [fd, conn] : w.conns) {
    FlushWrites(conn);
    net::CloseFd(fd);
    counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  }
  w.conns.clear();
}

void VcfServer::AcceptReady(Worker& w) {
  (void)w;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: poller will re-arm
    }
    net::SetNonBlocking(fd);
    net::SetNoDelay(fd);
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    Worker& target =
        *workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                  workers_.size()];
    {
      std::lock_guard lock(target.inbox_mutex);
      target.inbox.push_back(fd);
    }
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(target.wakeup[1], &byte, 1);
  }
}

bool VcfServer::ServeReadable(Worker& w, Connection& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = net::ReadSome(conn.fd, buf);
    if (n == -2) break;          // drained
    if (n <= 0) return false;    // EOF or error
    if (!conn.in.Append(std::span<const std::uint8_t>(
            buf, static_cast<std::size_t>(n)))) {
      // Oversized length prefix: the stream cannot be re-synced. Tell the
      // peer why, then close once the reply flushes.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    std::span<const std::uint8_t> payload;
    while (!conn.close_after_flush && conn.in.Next(payload)) {
      HandleFrame(w, conn, payload);
      conn.in.Pop();
    }
    if (conn.in.poisoned()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(conn.out, net::Status::kBadRequest, 0);
      conn.close_after_flush = true;
      break;
    }
    if (conn.out.size() - conn.out_off >= kWriteHighWater) break;
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // likely drained
  }
  return FlushWrites(conn);
}

bool VcfServer::FlushWrites(Connection& conn) {
  const std::size_t pending = conn.out.size() - conn.out_off;
  if (pending == 0) return true;
  std::size_t written = 0;
  if (!net::WriteAll(conn.fd,
                     std::span<const std::uint8_t>(conn.out).subspan(
                         conn.out_off),
                     &written)) {
    return false;
  }
  conn.out_off += written;
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > kWriteHighWater) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_off));
    conn.out_off = 0;
  }
  return true;
}

void VcfServer::HandleFrame(Worker& w, Connection& conn,
                            std::span<const std::uint8_t> payload) {
  using net::Opcode;
  using net::Status;
  std::vector<std::uint8_t>& out = conn.out;
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  net::Request req;
  switch (net::DecodeRequest(payload, req)) {
    case net::DecodeResult::kOk:
      break;
    case net::DecodeResult::kBadVersion:
      // A peer speaking another protocol version cannot be trusted to agree
      // on framing either; answer and drop the connection.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadVersion,
                               net::PeekRequestId(payload));
      conn.close_after_flush = true;
      return;
    case net::DecodeResult::kBadOpcode:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadOpcode,
                               net::PeekRequestId(payload));
      return;  // framing was intact; the connection survives
    case net::DecodeResult::kMalformed:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      net::EncodeErrorResponse(out, Status::kBadRequest,
                               net::PeekRequestId(payload));
      return;
  }
  if (stop_.load(std::memory_order_relaxed) && req.opcode != Opcode::kPing) {
    net::EncodeErrorResponse(out, Status::kShuttingDown, req.request_id);
    return;
  }
  const bool internal = options_.filter_internally_locked;
  const bool mutation = req.opcode == Opcode::kInsert ||
                        req.opcode == Opcode::kDelete ||
                        req.opcode == Opcode::kInsertBatch;
  if (mutation && options_.read_only) {
    counters_.read_only_rejections.fetch_add(1, std::memory_order_relaxed);
    net::EncodeErrorResponse(out, Status::kReadOnly, req.request_id);
    return;
  }
  switch (req.opcode) {
    case Opcode::kPing:
      net::EncodePingResponse(out, req.request_id, req.ping_echo);
      return;
    case Opcode::kInsert:
    case Opcode::kDelete: {
      const bool erase = req.opcode == Opcode::kDelete;
      if (erase && !filter_->SupportsDeletion()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      bool ok;
      if (oplog_ != nullptr) {
        bool journal_failed = false;
        {
          std::lock_guard repl(repl_mutex_);
          if (internal) {
            ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
          } else {
            std::unique_lock lock(filter_mutex_);
            ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
          }
          if (ok) {
            if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogAppend)) {
              // Journal failed: undo the apply so the error we report is
              // the truth — an op is either ACKed AND journaled, or
              // neither. (Undo needs a deletable filter; see docs.)
              if (internal) {
                if (erase) filter_->Insert(req.key);
                else filter_->Erase(req.key);
              } else {
                std::unique_lock lock(filter_mutex_);
                if (erase) filter_->Insert(req.key);
                else filter_->Erase(req.key);
              }
              journal_failed = true;
            } else {
              applied_seq_.store(
                  oplog_->Append(erase ? kOplogErase : kOplogInsert, req.key),
                  std::memory_order_release);
              counters_.oplog_appends.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (journal_failed) {
          net::EncodeErrorResponse(out, Status::kServerError, req.request_id);
          return;
        }
        if (ok) NotifyReplicas();
      } else if (internal) {
        ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
      } else {
        std::unique_lock lock(filter_mutex_);
        ok = erase ? filter_->Erase(req.key) : filter_->Insert(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kLookup: {
      bool ok;
      if (internal) {
        ok = filter_->Contains(req.key);
      } else {
        std::shared_lock lock(filter_mutex_);
        ok = filter_->Contains(req.key);
      }
      net::EncodeFlagResponse(out, req.request_id, ok);
      return;
    }
    case Opcode::kInsertBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      std::size_t accepted;
      if (oplog_ != nullptr) {
        bool journal_failed = false;
        {
          std::lock_guard repl(repl_mutex_);
          if (internal) {
            accepted = filter_->InsertBatch(req.keys, results.get());
          } else {
            std::unique_lock lock(filter_mutex_);
            accepted = filter_->InsertBatch(req.keys, results.get());
          }
          if (accepted > 0 &&
              VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogAppend)) {
            // Roll the whole batch back; the client sees kServerError and
            // no key from it is ACKed or journaled.
            if (internal) {
              for (std::size_t i = 0; i < n; ++i) {
                if (results[i]) filter_->Erase(req.keys[i]);
              }
            } else {
              std::unique_lock lock(filter_mutex_);
              for (std::size_t i = 0; i < n; ++i) {
                if (results[i]) filter_->Erase(req.keys[i]);
              }
            }
            journal_failed = true;
          } else {
            std::uint64_t seq = 0;
            for (std::size_t i = 0; i < n; ++i) {
              if (results[i]) seq = oplog_->Append(kOplogInsert, req.keys[i]);
            }
            if (accepted > 0) {
              applied_seq_.store(seq, std::memory_order_release);
              counters_.oplog_appends.fetch_add(accepted,
                                                std::memory_order_relaxed);
            }
          }
        }
        if (journal_failed) {
          net::EncodeErrorResponse(out, Status::kServerError, req.request_id);
          return;
        }
        if (accepted > 0) NotifyReplicas();
      } else if (internal) {
        accepted = filter_->InsertBatch(req.keys, results.get());
      } else {
        std::unique_lock lock(filter_mutex_);
        accepted = filter_->InsertBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kInsertBatch, req.request_id,
                               std::span<const bool>(results.get(), n),
                               static_cast<std::uint32_t>(accepted));
      return;
    }
    case Opcode::kLookupBatch: {
      const std::size_t n = req.keys.size();
      const auto results = std::make_unique<bool[]>(n == 0 ? 1 : n);
      if (internal) {
        filter_->ContainsBatch(req.keys, results.get());
      } else {
        std::shared_lock lock(filter_mutex_);
        filter_->ContainsBatch(req.keys, results.get());
      }
      net::EncodeBatchResponse(out, Opcode::kLookupBatch, req.request_id,
                               std::span<const bool>(results.get(), n), 0);
      return;
    }
    case Opcode::kStats: {
      std::string name;
      std::uint64_t items, slots, memory;
      double lf;
      bool deletion;
      if (internal) {
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      } else {
        std::shared_lock lock(filter_mutex_);
        name = filter_->Name();
        items = filter_->ItemCount();
        slots = filter_->SlotCount();
        memory = filter_->MemoryBytes();
        lf = filter_->LoadFactor();
        deletion = filter_->SupportsDeletion();
      }
      net::EncodeStatsResponse(out, req.request_id, name, items, slots,
                               memory, lf, deletion);
      return;
    }
    case Opcode::kSnapshot: {
      if (options_.state_path.empty()) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      net::EncodeFlagResponse(out, req.request_id, CheckpointNow());
      return;
    }
    case Opcode::kReplHello: {
      if (oplog_ == nullptr) {
        net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
        return;
      }
      const std::uint64_t replica_last = req.seq;
      // The replica's sequence numbers only mean anything against THIS run's
      // op log: a restarted primary journals from 1 again, so a stale epoch
      // (or none, with a nonzero position) forces the snapshot path even
      // when the raw numbers happen to look servable.
      const bool same_epoch = replica_last == 0 || req.epoch == run_id_;
      bool snapshot = false;
      std::uint64_t start_seq = 0;
      {
        std::lock_guard repl(repl_mutex_);
        if (same_epoch && oplog_->CanServeFrom(replica_last + 1)) {
          // The log still retains everything past the replica's position:
          // resume the stream, no bootstrap needed.
          start_seq = replica_last + 1;
          conn.snapshot_pending = false;
          conn.repl_next_seq = start_seq;
        } else {
          // Too far behind (or joining fresh after evictions): stream a
          // snapshot of the current state. Built under repl_mutex_ so it
          // covers exactly the ops up to snapshot_seq.
          std::ostringstream inner;
          bool ok;
          if (options_.filter_internally_locked) {
            ok = filter_->SaveState(inner);
          } else {
            std::shared_lock lock(filter_mutex_);
            ok = filter_->SaveState(inner);
          }
          if (!ok) {
            net::EncodeErrorResponse(out, Status::kServerError,
                                     req.request_id);
            return;
          }
          std::ostringstream envelope;
          if (!detail::WriteFramedBlob(envelope, inner.str())) {
            net::EncodeErrorResponse(out, Status::kServerError,
                                     req.request_id);
            return;
          }
          snapshot = true;
          conn.snapshot_buf = envelope.str();
          conn.snapshot_off = 0;
          conn.snapshot_pending = true;
          conn.snapshot_seq = oplog_->last();
          conn.repl_next_seq = conn.snapshot_seq + 1;
          start_seq = conn.snapshot_seq;
          counters_.repl_snapshots_streamed.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      net::EncodeReplHelloResponse(out, req.request_id, snapshot, start_seq,
                                   run_id_);
      if (snapshot) {
        net::EncodeSnapshotBegin(out, conn.snapshot_seq,
                                 conn.snapshot_buf.size());
      }
      if (!conn.is_replica) {
        conn.is_replica = true;
        ++w.replica_conns;
        w.has_replicas.store(true, std::memory_order_relaxed);
      }
      // The event loop pumps chunks/entries after this frame is handled.
      return;
    }
    case Opcode::kOplogAck:
      // Cumulative progress marker (and keepalive) from a replica; a
      // spoofed ACK from a non-replica peer is meaningless and ignored.
      if (conn.is_replica) conn.repl_acked_seq = req.seq;
      return;
    case Opcode::kOplogEntry:
    case Opcode::kSnapshotBegin:
    case Opcode::kSnapshotChunk:
    case Opcode::kSnapshotEnd:
      // Primary-to-replica stream frames; nothing a server should receive.
      net::EncodeErrorResponse(out, Status::kUnsupported, req.request_id);
      return;
  }
  net::EncodeErrorResponse(out, Status::kBadOpcode, req.request_id);
}

bool VcfServer::PumpReplica(Connection& conn) {
  if (!conn.is_replica || oplog_ == nullptr) return true;
  while (conn.snapshot_pending &&
         conn.out.size() - conn.out_off < kWriteHighWater) {
    if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplSnapshotChunk)) {
      return false;  // drill: cut the replica off mid-snapshot
    }
    const std::size_t remaining = conn.snapshot_buf.size() - conn.snapshot_off;
    const std::size_t n =
        std::min<std::size_t>(remaining, net::kReplChunkBytes);
    if (n > 0) {
      net::EncodeSnapshotChunk(
          conn.out,
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(conn.snapshot_buf.data()) +
                  conn.snapshot_off,
              n));
      conn.snapshot_off += n;
    }
    if (conn.snapshot_off == conn.snapshot_buf.size()) {
      net::EncodeSnapshotEnd(conn.out, conn.snapshot_buf.size(),
                             SplitMixHash64(conn.snapshot_buf.data(),
                                            conn.snapshot_buf.size(), 0));
      conn.snapshot_buf.clear();
      conn.snapshot_off = 0;
      conn.snapshot_pending = false;
    }
  }
  if (conn.snapshot_pending) return true;  // backpressured mid-snapshot
  std::vector<OplogEntry> entries;
  while (conn.out.size() - conn.out_off < kWriteHighWater) {
    entries.clear();
    if (!oplog_->CopyFrom(conn.repl_next_seq, 256, entries)) {
      // The replica's position fell off the bounded log's tail (it was
      // backpressured or partitioned too long): disconnect so its next
      // handshake resyncs via snapshot instead of silently diverging.
      return false;
    }
    if (entries.empty()) break;  // caught up
    for (const OplogEntry& e : entries) {
      if (VCF_FAILPOINT_TRIGGERED(failpoints::kReplOplogStream)) {
        return false;  // drill: mid-stream disconnect
      }
      net::EncodeOplogEntry(conn.out, e.seq, e.op, e.key);
    }
    conn.repl_next_seq = entries.back().seq + 1;
    counters_.repl_entries_streamed.fetch_add(entries.size(),
                                              std::memory_order_relaxed);
  }
  return true;
}

void VcfServer::NotifyReplicas() {
  for (const auto& w : workers_) {
    if (w->has_replicas.load(std::memory_order_relaxed)) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(w->wakeup[1], &byte, 1);
    }
  }
}

bool VcfServer::ApplyReplicated(std::uint8_t op, std::uint64_t key,
                                std::uint64_t seq) {
  std::lock_guard repl(repl_mutex_);
  bool ok;
  if (options_.filter_internally_locked) {
    ok = op == kOplogErase ? filter_->Erase(key) : filter_->Insert(key);
  } else {
    std::unique_lock lock(filter_mutex_);
    ok = op == kOplogErase ? filter_->Erase(key) : filter_->Insert(key);
  }
  applied_seq_.store(seq, std::memory_order_release);
  return ok;
}

bool VcfServer::InstallSnapshot(const std::string& envelope, std::uint64_t seq,
                                std::uint64_t epoch, std::string* error) {
  std::istringstream in(envelope);
  std::string blob;
  if (!detail::ReadFramedBlob(in, &blob, envelope.size())) {
    if (error != nullptr) *error = "malformed snapshot envelope";
    return false;
  }
  std::istringstream inner(blob);
  std::lock_guard repl(repl_mutex_);
  bool ok;
  if (options_.filter_internally_locked) {
    ok = filter_->LoadState(inner);
  } else {
    std::unique_lock lock(filter_mutex_);
    ok = filter_->LoadState(inner);
  }
  if (!ok) {
    if (error != nullptr) {
      *error = "snapshot blob rejected by filter (mismatched parameters?)";
    }
    return false;
  }
  applied_seq_.store(seq, std::memory_order_release);
  repl_epoch_ = epoch;
  return true;
}

void VcfServer::SetReplEpoch(std::uint64_t epoch) {
  std::lock_guard repl(repl_mutex_);
  repl_epoch_ = epoch;
}

void VcfServer::CloseConnection(Worker& w, int fd) {
  const auto it = w.conns.find(fd);
  if (it != w.conns.end() && it->second.is_replica) {
    if (--w.replica_conns == 0) {
      w.has_replicas.store(false, std::memory_order_relaxed);
    }
  }
  w.poller.Remove(fd);
  w.conns.erase(fd);
  net::CloseFd(fd);
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace vcf::server
