// vcfd's serving core: a multi-threaded TCP server exposing one Filter over
// the length-prefixed binary protocol in net/proto.hpp.
//
// Threading model: worker 0 owns the (non-blocking) listening socket and
// hands accepted connections to workers round-robin through per-worker
// locked inboxes; every worker then runs an independent event loop
// (io_uring/epoll/poll — server/poller.hpp) over its own connections, so a
// slow or hostile peer only ever stalls its own worker's loop iteration,
// never the whole fleet. Requests are pipelined: every complete frame in a
// connection's read buffer is served before the loop returns to the poller,
// and responses are batched into one writev (old unsent tail + fresh
// responses, one syscall).
//
// Cross-frame coalescing (Options::coalesce, default on): within one
// event-loop tick, adjacent frames of the same kind — LOOKUP/LOOKUP_BATCH,
// or INSERT/INSERT_BATCH when no op log is journaling — are merged into one
// key run and executed through the filter's prefetch-pipelined batch
// kernels, then per-frame responses are emitted in exact frame order. The
// Filter contract (batch ops ≡ the sequential calls, in key order) makes
// the response bytes identical to per-frame execution; the coalescing-
// equivalence test asserts that byte-for-byte.
//
// Filter locking: a ShardedFilter carries per-shard locks, so server ops
// call straight into it and scale across workers (Options::
// filter_internally_locked = true, the vcfd default for sharded: specs).
// Any other filter is guarded by one server-level shared_mutex — reads
// share, mutations are exclusive — which is correct but caps write
// throughput at one core; prefer `--filter sharded:<n>:...` in deployment.
//
// Optimistic lookups: internally-locked filters bring their own seqlock
// read path (ShardedFilter/ConcurrentFilter), so LOOKUP/LOOKUP_BATCH call
// straight in and never block behind a writer. For server-locked filters
// that are OptimisticReadSafe(), the server runs the same protocol itself:
// a server-level SeqLock bumped around every filter mutation, lookups
// probing without the lock and validating the sequence, bounded retries,
// then the shared_mutex as the fallback. Counters::seqlock_retries /
// seqlock_fallbacks record the contention that path absorbs.
//
// Core-affine shard ownership (Options::pin_shards, requires a sharded
// filter and no replication): worker w exclusively owns shards
// {s : s % threads == w}, and accesses them WITHOUT their shard locks —
// but bumps the shard's SeqLock around every mutation. A key run routed to
// a foreign worker's shard is therefore served LOCALLY for lookups: the
// worker probes the foreign shard through its seqlock (no queue hop) and
// only falls back to owner forwarding when the optimistic window keeps
// closing. Mutations (and lookup fallbacks) are forwarded to the owner
// through a locked task inbox and executed there; a worker waiting on a
// forwarded run cooperatively drains its own inbox, so two workers
// forwarding to each other always make progress. Clients that route keys
// with the same Mix64 salt (WORKER_INFO reports it) never hit the
// forwarding path. Options::cpu_list pins worker i to cpu_list[i % n].
//
// Shutdown: RequestShutdown() is async-signal-safe (atomic flag + self-pipe
// write), so vcfd calls it straight from its SIGTERM handler. Workers stop
// accepting, flush pending responses best-effort, close, and Join() then
// writes a final checkpoint to Options::state_path (atomic tmp+rename) —
// every key a client saw ACKed is in that checkpoint, the invariant the
// restart integration test asserts end-to-end. A pinned worker flips its
// inbox closed under the inbox lock before exiting and runs the remaining
// tasks through the locked shard path, so late forwards from still-live
// workers fall back to the per-shard locks instead of racing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/seqlock.hpp"
#include "core/filter.hpp"
#include "core/sharded_filter.hpp"
#include "server/poller.hpp"
#include "server/replication.hpp"

namespace vcf::server {

class VcfServer {
 public:
  struct Options {
    std::uint16_t port = 0;   ///< 0 = ephemeral (read back via port())
    unsigned threads = 2;     ///< worker event loops (>= 1)
    std::string state_path;   ///< checkpoint target; empty = no checkpoints
    /// True when the filter synchronises internally (ShardedFilter). False
    /// adds a server-level reader-writer lock around every op.
    bool filter_internally_locked = false;
    Poller::Backend backend = Poller::Backend::kAuto;
    /// > 0 makes this server a replication primary: every ACKed mutation is
    /// journaled into an op log retaining this many entries, and replicas
    /// may connect with REPLICATE_HELLO. While the op log is on, mutations
    /// are serialised into log order under one mutex (lookups still run
    /// concurrently) — the price of replicas converging to bit-identical
    /// state (docs/server.md#replication).
    std::size_t oplog_capacity = 0;
    /// Replica mode: reject INSERT/DELETE/INSERT_BATCH with kReadOnly;
    /// mutations arrive only through ApplyReplicated()/InstallSnapshot().
    bool read_only = false;
    /// When set (and replication is on either way), every checkpoint also
    /// writes this sidecar with {covered seq, checkpoint digest} so a
    /// restarted replica can resume the stream instead of re-bootstrapping.
    std::string repl_meta_path;
    /// CPU ids to pin worker threads to (worker i → cpu_list[i % size]).
    /// Empty = no pinning.
    std::vector<int> cpu_list;
    /// Core-affine shard ownership (see class comment). Start() fails
    /// unless the filter is an internally-locked ShardedFilter and
    /// replication is off (owner execution bypasses the op-log ordering).
    bool pin_shards = false;
    /// Cross-frame batch coalescing (see class comment). The VCFD_COALESCE
    /// environment variable overrides this at construction (0 = off).
    bool coalesce = true;
  };

  /// Monotonic service counters (relaxed atomics; exact enough for ops).
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> protocol_errors{0};  ///< malformed frames
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> oplog_appends{0};
    std::atomic<std::uint64_t> repl_entries_streamed{0};
    std::atomic<std::uint64_t> repl_snapshots_streamed{0};
    std::atomic<std::uint64_t> read_only_rejections{0};
    std::atomic<std::uint64_t> coalesced_frames{0};  ///< frames served via runs
    std::atomic<std::uint64_t> coalesced_runs{0};    ///< multi-frame runs
    std::atomic<std::uint64_t> forwarded_tasks{0};   ///< pinned cross-worker
    /// Server-level optimistic-lookup protocol (see class comment): probe
    /// attempts invalidated by a concurrent writer, and lookups that
    /// exhausted their retry budget (locked / forwarded fallback).
    std::atomic<std::uint64_t> seqlock_retries{0};
    std::atomic<std::uint64_t> seqlock_fallbacks{0};
  };

  VcfServer(std::unique_ptr<Filter> filter, Options options);
  ~VcfServer();

  VcfServer(const VcfServer&) = delete;
  VcfServer& operator=(const VcfServer&) = delete;

  /// Binds, listens and spawns the workers. False (with *error) on failure.
  bool Start(std::string* error);

  /// The bound port (resolves Options::port == 0 after Start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-safe shutdown request; workers drain and exit. Idempotent.
  void RequestShutdown() noexcept;

  /// Waits for every worker to exit, then writes the final checkpoint.
  /// Returns false when the checkpoint was wanted but failed.
  bool Join();

  /// Blocks until a shutdown request arrives, then Join()s. Convenience for
  /// vcfd's main thread.
  bool ServeUntilShutdown();

  /// Checkpoints the filter to Options::state_path now (tmp + rename).
  /// Thread-safe; serialised against concurrent snapshots. False when no
  /// state path is configured or the write failed.
  bool CheckpointNow();

  /// Loads a checkpoint from Options::state_path into the filter, if the
  /// file exists. Returns false only on a load *failure* (corrupt blob or
  /// parameter mismatch); a missing file is a clean cold start (true).
  bool TryRestore(std::string* error);

  Filter& filter() noexcept { return *filter_; }
  const Counters& counters() const noexcept { return counters_; }
  bool shutting_down() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  /// The poller backend worker 0 resolved to (valid after Start()).
  Poller::Backend resolved_backend() const noexcept;
  /// True when core-affine shard ownership is active (after Start()).
  bool pinned() const noexcept { return pinned_; }

  /// Replica-side apply hooks, called by ReplicaSession's thread only.
  /// ApplyReplicated performs one journaled mutation; InstallSnapshot
  /// replaces the filter state with a snapshot-bootstrap envelope (the
  /// WriteFramedBlob-wrapped checkpoint blob) covering ops <= `seq`.
  bool ApplyReplicated(std::uint8_t op, std::uint64_t key, std::uint64_t seq);
  bool InstallSnapshot(const std::string& envelope, std::uint64_t seq,
                       std::uint64_t epoch, std::string* error);

  /// Records the primary run ID the replica's applied_seq belongs to, so
  /// checkpoints stamp their sidecar with a (seq, epoch) pair that is
  /// consistent under repl_mutex_. ReplicaSession calls this right after a
  /// resume handshake; snapshot installs set it atomically with the seq.
  void SetReplEpoch(std::uint64_t epoch);

  /// Last sequence applied (replica) — 0 on a primary; see oplog_last().
  std::uint64_t applied_seq() const noexcept {
    return applied_seq_.load(std::memory_order_acquire);
  }
  /// Last sequence journaled (primary) — 0 when replication is off.
  std::uint64_t oplog_last() const noexcept {
    return oplog_ == nullptr ? 0 : oplog_->last();
  }

 private:
  struct Connection;
  struct Worker;

  /// One forwarded unit of work for a pinned shard's owning thread. `fn`
  /// runs on the owner with locked = false; a worker draining its inbox on
  /// exit runs it with locked = true (through the per-shard locks) because
  /// its ownership guarantee ends with it.
  struct ShardTask {
    std::function<void(bool locked)> fn;
    std::atomic<std::uint32_t>* done = nullptr;  ///< incremented after fn
  };

  /// A pending coalesced key run on one connection (worker-local scratch).
  struct Run {
    enum class Kind : std::uint8_t { kNone, kLookup, kInsert };
    struct FrameRef {
      std::uint32_t request_id = 0;
      std::uint32_t nkeys = 0;
      bool batch = false;  ///< response shape: batch bitmap vs single flag
    };
    Kind kind = Kind::kNone;
    std::vector<std::uint64_t> keys;
    std::vector<FrameRef> frames;
  };

  void WorkerLoop(unsigned index);
  void AcceptReady(Worker& w);
  /// Drains readable bytes and serves every complete pipelined frame,
  /// coalescing adjacent same-kind key frames into batch runs. Returns
  /// false when the connection must close.
  bool ServeReadable(Worker& w, Connection& conn);
  bool FlushWrites(Connection& conn);
  void HandleFrame(Worker& w, Connection& conn,
                   std::span<const std::uint8_t> payload);

  // --- Coalescer ----------------------------------------------------------
  /// kNone when the frame cannot join a run (wrong opcode/version, op log
  /// journaling, read-only, shutdown).
  Run::Kind ClassifyFrame(std::span<const std::uint8_t> payload) const;
  /// Decodes and appends a classified frame to the worker's run. False on a
  /// malformed frame (caller routes it to HandleFrame for the error path).
  bool AppendToRun(Worker& w, Run::Kind kind,
                   std::span<const std::uint8_t> payload);
  /// Executes the pending run through the batch kernels and emits per-frame
  /// responses, in frame order, into conn.out.
  void FlushRun(Worker& w, Connection& conn);

  // --- Pinned executor ----------------------------------------------------
  unsigned OwnerOf(std::size_t shard) const noexcept {
    return static_cast<unsigned>(shard % options_.threads);
  }
  /// False when the target stopped accepting (caller runs the locked path).
  bool EnqueueTask(Worker& target, ShardTask task);
  void DrainTasks(Worker& w, bool locked);
  /// Spin-waits for `done` to reach `want`; a worker drains its own inbox
  /// while waiting (deadlock freedom), a non-worker caller just yields.
  void WaitTaskCount(Worker* self, const std::atomic<std::uint32_t>& done,
                     std::uint32_t want);
  /// Executes the idx-selected keys grouped per shard through the shard
  /// batch kernels; results scatter to results[idx[j]]. Runs unlocked on
  /// the owning thread, or through ShardedFilter's locks when `locked`.
  void RunKeysForOwner(bool insert, std::span<const std::uint64_t> keys,
                       std::span<const std::uint32_t> idx, bool* results,
                       bool locked);
  bool PinnedKeyOp(Worker& w, std::uint8_t kind, std::uint64_t key);
  void PinnedInsertBatch(Worker& w, std::span<const std::uint64_t> keys,
                         bool* results);
  /// Serves a lookup batch locally: own shards probe unlocked, foreign
  /// shards probe through their seqlocks; only shards whose optimistic
  /// window kept closing are forwarded to their owners.
  void PinnedLookupBatch(Worker& w, std::span<const std::uint64_t> keys,
                         bool* results);
  void PinnedStats(Worker& w, std::uint64_t& items, std::uint64_t& slots,
                   std::uint64_t& memory);
  bool CheckpointImpl(Worker* self);
  /// Stages every shard blob via owner tasks (locked fallback for exited
  /// owners) and writes the envelope. Pinned mode only.
  bool PinnedSaveState(Worker* self, std::ostream& out);

  // --- Server-level optimistic lookups (non-internally-locked filters) ----
  /// False when the path is ineligible (filter not OptimisticReadSafe) or
  /// the retry budget ran out; caller takes the shared lock.
  bool TryLookupOptimistic(std::uint64_t key, bool* result);
  bool TryLookupBatchOptimistic(std::span<const std::uint64_t> keys,
                                bool* results);

  bool PumpReplica(Connection& conn);
  /// Wakes every worker that owns replica connections after a journal
  /// append, so streaming latency is one event-loop turn, not a poll tick.
  void NotifyReplicas();
  void CloseConnection(Worker& w, int fd);

  std::unique_ptr<Filter> filter_;
  Options options_;
  Counters counters_;

  ShardedFilter* sharded_ = nullptr;  ///< filter_ downcast; null if not sharded
  bool pinned_ = false;               ///< set by Start() when pin_shards holds
  bool coalesce_ = true;
  std::size_t shard_count_ = 0;       ///< cached sharded_ geometry
  std::uint64_t route_salt_ = 0;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  int shutdown_pipe_[2] = {-1, -1};  ///< [0] watched by all workers

  /// Guards non-internally-locked filters (see class comment). Internally
  /// locked filters bypass it entirely; their live snapshots are per-shard
  /// consistent (ShardedFilter::SaveState holds each shard's lock while
  /// staging that shard), which is sufficient for a structure with no
  /// cross-key invariants. The final Join() checkpoint runs after every
  /// worker has exited and is therefore fully consistent.
  mutable std::shared_mutex filter_mutex_;
  /// Seqlock for the server-level optimistic read path: bumped (under
  /// filter_mutex_'s exclusive lock) around every mutation of a
  /// non-internally-locked filter. Unused when the filter locks internally.
  mutable SeqLock filter_seq_;
  /// Cached `!filter_internally_locked && filter_->OptimisticReadSafe()`.
  bool filter_optimistic_ = false;
  std::mutex checkpoint_mutex_;

  /// Serialises mutations into op-log order whenever replication is active
  /// (primary journaling or replica apply) and pins checkpoints to an exact
  /// sequence. Ordering: repl_mutex_ before filter_mutex_; never the
  /// reverse.
  std::mutex repl_mutex_;
  std::unique_ptr<OplogBuffer> oplog_;      ///< primary only
  std::uint64_t run_id_ = 0;  ///< primary incarnation ID (epoch on the wire)
  std::atomic<std::uint64_t> applied_seq_{0};  ///< replica apply progress
  std::uint64_t repl_epoch_ = 0;  ///< replica: epoch of applied_seq_
                                  ///< (guarded by repl_mutex_)

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<unsigned> next_worker_{0};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace vcf::server
