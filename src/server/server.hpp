// vcfd's serving core: a multi-threaded TCP server exposing one Filter over
// the length-prefixed binary protocol in net/proto.hpp.
//
// Threading model: worker 0 owns the (non-blocking) listening socket and
// hands accepted connections to workers round-robin through per-worker
// locked inboxes; every worker then runs an independent event loop (epoll on
// Linux, poll fallback — server/poller.hpp) over its own connections, so a
// slow or hostile peer only ever stalls its own worker's loop iteration,
// never the whole fleet. Requests are pipelined: every complete frame in a
// connection's read buffer is served before the loop returns to the poller,
// and responses are batched into one write.
//
// Filter locking: a ShardedFilter carries per-shard locks, so server ops
// call straight into it and scale across workers (Options::
// filter_internally_locked = true, the vcfd default for sharded: specs).
// Any other filter is guarded by one server-level shared_mutex — reads
// share, mutations are exclusive — which is correct but caps write
// throughput at one core; prefer `--filter sharded:<n>:...` in deployment.
//
// Shutdown: RequestShutdown() is async-signal-safe (atomic flag + self-pipe
// write), so vcfd calls it straight from its SIGTERM handler. Workers stop
// accepting, flush pending responses best-effort, close, and Join() then
// writes a final checkpoint to Options::state_path (atomic tmp+rename) —
// every key a client saw ACKed is in that checkpoint, the invariant the
// restart integration test asserts end-to-end.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/filter.hpp"
#include "server/poller.hpp"

namespace vcf::server {

class VcfServer {
 public:
  struct Options {
    std::uint16_t port = 0;   ///< 0 = ephemeral (read back via port())
    unsigned threads = 2;     ///< worker event loops (>= 1)
    std::string state_path;   ///< checkpoint target; empty = no checkpoints
    /// True when the filter synchronises internally (ShardedFilter). False
    /// adds a server-level reader-writer lock around every op.
    bool filter_internally_locked = false;
    Poller::Backend backend = Poller::Backend::kAuto;
  };

  /// Monotonic service counters (relaxed atomics; exact enough for ops).
  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> protocol_errors{0};  ///< malformed frames
    std::atomic<std::uint64_t> checkpoints{0};
  };

  VcfServer(std::unique_ptr<Filter> filter, Options options);
  ~VcfServer();

  VcfServer(const VcfServer&) = delete;
  VcfServer& operator=(const VcfServer&) = delete;

  /// Binds, listens and spawns the workers. False (with *error) on failure.
  bool Start(std::string* error);

  /// The bound port (resolves Options::port == 0 after Start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-safe shutdown request; workers drain and exit. Idempotent.
  void RequestShutdown() noexcept;

  /// Waits for every worker to exit, then writes the final checkpoint.
  /// Returns false when the checkpoint was wanted but failed.
  bool Join();

  /// Blocks until a shutdown request arrives, then Join()s. Convenience for
  /// vcfd's main thread.
  bool ServeUntilShutdown();

  /// Checkpoints the filter to Options::state_path now (tmp + rename).
  /// Thread-safe; serialised against concurrent snapshots. False when no
  /// state path is configured or the write failed.
  bool CheckpointNow();

  /// Loads a checkpoint from Options::state_path into the filter, if the
  /// file exists. Returns false only on a load *failure* (corrupt blob or
  /// parameter mismatch); a missing file is a clean cold start (true).
  bool TryRestore(std::string* error);

  Filter& filter() noexcept { return *filter_; }
  const Counters& counters() const noexcept { return counters_; }
  bool shutting_down() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct Worker;

  void WorkerLoop(unsigned index);
  void AcceptReady(Worker& w);
  /// Drains readable bytes and serves every complete pipelined frame.
  /// Returns false when the connection must close.
  bool ServeReadable(Connection& conn);
  bool FlushWrites(Connection& conn);
  void HandleFrame(std::span<const std::uint8_t> payload,
                   std::vector<std::uint8_t>& out, bool& close_after);
  void CloseConnection(Worker& w, int fd);

  std::unique_ptr<Filter> filter_;
  Options options_;
  Counters counters_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  int shutdown_pipe_[2] = {-1, -1};  ///< [0] watched by all workers

  /// Guards non-internally-locked filters (see class comment). Internally
  /// locked filters bypass it entirely; their live snapshots are per-shard
  /// consistent (ShardedFilter::SaveState holds each shard's lock while
  /// staging that shard), which is sufficient for a structure with no
  /// cross-key invariants. The final Join() checkpoint runs after every
  /// worker has exited and is therefore fully consistent.
  mutable std::shared_mutex filter_mutex_;
  std::mutex checkpoint_mutex_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<unsigned> next_worker_{0};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace vcf::server
