// Readiness-notification abstraction for the vcfd event loops: io_uring on
// kernels that support it, epoll(7) on Linux, poll(2) everywhere else. The
// backend can be forced at runtime (VCFD_BACKEND=io_uring|epoll|poll, or the
// legacy VCFD_FORCE_POLL=1, or Poller(Backend::...)) so every fallback path
// stays covered by the Linux test matrix instead of rotting untested.
//
// The interface is level-triggered on all backends: a readable fd keeps
// reporting readable until drained, which lets the connection state machine
// stop mid-drain (e.g. to apply backpressure) without losing a wakeup.
//
// io_uring backend notes: readiness is produced with IORING_OP_POLL_ADD.
// Connection fds use one-shot polls re-armed at the top of every Wait — the
// re-arm re-checks readiness, which is what makes the contract
// level-triggered. Fds registered as `persistent` (listen socket, wakeup and
// shutdown pipes — always fully drained by their handlers) use
// IORING_POLL_ADD_MULTI so they stay armed across ticks without extra SQEs.
// All arming SQEs accumulated during a tick are flushed by the single
// io_uring_enter() in Wait (submission batching). Stale completions from
// canceled polls are fenced by a per-watch generation counter packed into
// user_data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vcf::server {

class Poller {
 public:
  enum class Backend : std::uint8_t { kAuto, kEpoll, kPoll, kIoUring };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< EPOLLERR/EPOLLHUP — close the connection
  };

  explicit Poller(Backend backend = Backend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd`. `persistent` is a hint for the io_uring backend: the fd
  /// is long-lived and its handler always drains it completely, so a
  /// multishot poll (armed once, fires repeatedly) is safe. Other backends
  /// ignore the hint.
  bool Add(int fd, bool want_read, bool want_write, bool persistent = false);
  bool Update(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// `out` (cleared first). Returns the number of events, 0 on timeout, -1
  /// on error (EINTR is retried internally).
  int Wait(std::vector<Event>& out, int timeout_ms);

  /// The backend actually in use (after kAuto/env resolution + degrade).
  Backend backend() const noexcept { return backend_; }

  /// True if `backend` can be instantiated on this kernel (io_uring probes
  /// io_uring_setup + the EXT_ARG timeout feature). kAuto is always true.
  static bool BackendAvailable(Backend backend);

  /// "auto" | "epoll" | "poll" | "io_uring".
  static const char* BackendName(Backend backend) noexcept;

  /// Parses a backend name as accepted by VCFD_BACKEND / --backend. Returns
  /// false on unknown names ("uring" is accepted as an io_uring alias).
  static bool ParseBackend(const char* name, Backend* out) noexcept;

 private:
  struct Watch {
    bool want_read = false;
    bool want_write = false;
    bool persistent = false;
    bool armed = false;        // io_uring: a POLL_ADD is in flight
    std::uint32_t gen = 0;     // io_uring: fences stale/canceled completions
  };

  struct Ring;  // io_uring state, defined in poller.cpp (raw syscalls)

  bool InitRing();
  void ArmWatch(int fd, Watch& w);
  void CancelWatch(int fd, Watch& w);
  int WaitIoUring(std::vector<Event>& out, int timeout_ms);

  Backend backend_;
  int epoll_fd_ = -1;
  Ring* ring_ = nullptr;
  // All backends: registered fds. epoll keeps kernel state in epoll_fd_;
  // poll(2) rebuilds pollfds from this map before every Wait; io_uring
  // tracks arm state + generation per fd.
  std::unordered_map<int, Watch> watches_;
};

}  // namespace vcf::server
