// Readiness-notification abstraction for the vcfd event loops: epoll(7) on
// Linux, poll(2) everywhere else. The poll backend can also be forced at
// runtime (VCFD_FORCE_POLL=1 or Poller(Backend::kPoll)) so the fallback path
// stays covered by the Linux test matrix instead of rotting untested.
//
// The interface is level-triggered on both backends: a readable fd keeps
// reporting readable until drained, which lets the connection state machine
// stop mid-drain (e.g. to apply backpressure) without losing a wakeup.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vcf::server {

class Poller {
 public:
  enum class Backend : std::uint8_t { kAuto, kEpoll, kPoll };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< EPOLLERR/EPOLLHUP — close the connection
  };

  explicit Poller(Backend backend = Backend::kAuto);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool Add(int fd, bool want_read, bool want_write);
  bool Update(int fd, bool want_read, bool want_write);
  void Remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events to
  /// `out` (cleared first). Returns the number of events, 0 on timeout, -1
  /// on error (EINTR is retried internally).
  int Wait(std::vector<Event>& out, int timeout_ms);

  /// The backend actually in use (after kAuto/env resolution).
  Backend backend() const noexcept { return backend_; }

 private:
  struct Watch {
    bool want_read = false;
    bool want_write = false;
  };

  Backend backend_;
  int epoll_fd_ = -1;
  // poll(2) backend: rebuilt from watches_ before every Wait.
  std::unordered_map<int, Watch> watches_;
};

}  // namespace vcf::server
