// Primary/replica replication for vcfd (docs/server.md#replication).
//
// The primary journals every ACKed mutation into a bounded in-memory op log
// (OplogBuffer) and streams it over the same framed protocol clients speak:
// a replica connects, sends REPLICATE_HELLO with the last sequence number it
// applied, and the primary either resumes the op-log stream from there or —
// when the replica is too far behind for the bounded log, or joining fresh
// after evictions — falls back to a snapshot bootstrap (SNAPSHOT_BEGIN/
// CHUNK/END carrying the PR 5 WriteFramedBlob checkpoint envelope, digest-
// verified), then continues streaming entries past the snapshot point.
//
// The replica side lives in ReplicaSession: one background thread that
// connects, applies entries exactly once (duplicates below the resume point
// are skipped, a sequence gap aborts the session so the next handshake
// falls back to snapshot), acknowledges progress, and reconnects with
// exponential backoff on any failure. Durable resume uses a tiny sidecar
// (ReplMeta) written next to the checkpoint: {applied_seq, primary epoch,
// digest of the checkpoint file}, so a restarted replica resumes from its
// checkpoint only when the two files provably belong together — and only
// against the same primary incarnation that assigned those sequences.
//
// Convergence contract: with mutations serialised into log order on the
// primary (VcfServer does this under one mutex whenever the op log is on)
// and applied in that order here, a replica that streamed the full log from
// sequence 1 produces a bit-identical checkpoint blob — the cuckoo kernels
// are deterministic given the op order. A snapshot-bootstrapped replica is
// set-identical and byte-identical as long as no post-bootstrap insert
// triggers eviction randomisation (the kernel RNG is intentionally not part
// of the checkpoint; see docs/server.md for the caveat).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vcf::server {

class VcfServer;

inline constexpr std::uint8_t kOplogInsert = 0;
inline constexpr std::uint8_t kOplogErase = 1;

struct OplogEntry {
  std::uint64_t seq = 0;
  std::uint8_t op = kOplogInsert;
  std::uint64_t key = 0;
};

/// Bounded journal of mutations, oldest entries evicted once `capacity` is
/// exceeded. Sequence numbers start at 1 and never repeat. Thread-safe: the
/// server appends under its replication mutex while worker threads copy
/// ranges out for streaming.
class OplogBuffer {
 public:
  explicit OplogBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Journals one mutation; returns its assigned sequence number.
  std::uint64_t Append(std::uint8_t op, std::uint64_t key);

  /// Seq of the last journaled entry (0 when nothing was ever journaled).
  std::uint64_t last() const;

  /// Seq of the oldest retained entry; `last() + 1` when the log is empty.
  std::uint64_t first_retained() const;

  /// True when a stream starting at `seq` can be served from the log —
  /// i.e. nothing in [seq, last()] has been evicted. `last() + 1` (fully
  /// caught up, nothing to send) is always servable.
  bool CanServeFrom(std::uint64_t seq) const;

  /// Copies up to `max_entries` entries with seq >= `from_seq` into `out`
  /// (appended). Returns false when `from_seq` fell off the log's tail —
  /// the caller must disconnect the replica so it resyncs via snapshot.
  bool CopyFrom(std::uint64_t from_seq, std::size_t max_entries,
                std::vector<OplogEntry>& out) const;

 private:
  mutable std::mutex mutex_;
  std::deque<OplogEntry> entries_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 1;
};

/// Durable resume sidecar for a replica: the sequence its checkpoint covers,
/// the primary run ID (epoch) that sequence belongs to, and a digest of the
/// checkpoint file itself — so a checkpoint/sidecar pair from different runs
/// can never be combined into a silently wrong resume, and a restarted
/// primary (fresh epoch, sequence numbers reused from 1) can never serve a
/// stale resume position.
struct ReplMeta {
  std::uint64_t applied_seq = 0;
  std::uint64_t primary_epoch = 0;
  std::uint64_t state_digest = 0;
};

bool WriteReplMeta(const std::string& path, const ReplMeta& meta);
bool ReadReplMeta(const std::string& path, ReplMeta* meta);

/// SplitMix digest of a whole file (streamed); false when unreadable.
bool FileDigest(const std::string& path, std::uint64_t* digest);

/// The replica's pull loop: owns a background thread that keeps `server`
/// (a read-only VcfServer) in sync with a primary. Start() after the server
/// is running; Stop() before tearing the server down.
class ReplicaSession {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    std::uint16_t primary_port = 0;
    int connect_timeout_ms = 2000;
    /// Idle read tick: when no frame arrives within this window the session
    /// sends a keepalive ACK and checks for Stop().
    int read_timeout_ms = 250;
    int backoff_base_ms = 50;   ///< doubles per consecutive failure...
    int backoff_max_ms = 2000;  ///< ...up to this cap
    std::uint64_t ack_every = 64;  ///< ACK cadence in applied entries
    std::uint64_t max_snapshot_bytes = 1ull << 31;
  };

  struct Counters {
    std::atomic<std::uint64_t> entries_applied{0};
    std::atomic<std::uint64_t> apply_failures{0};  ///< filter rejected an op
    std::atomic<std::uint64_t> snapshots_installed{0};
    std::atomic<std::uint64_t> gaps_detected{0};
    std::atomic<std::uint64_t> reconnects{0};  ///< failed / lost sessions
  };

  ReplicaSession(VcfServer& server, Options options);
  ~ReplicaSession();

  ReplicaSession(const ReplicaSession&) = delete;
  ReplicaSession& operator=(const ReplicaSession&) = delete;

  /// Loads the durable resume point from `meta_path` (the sidecar written
  /// next to `state_path` by the replica's checkpoints). Only adopts it when
  /// the sidecar's digest matches the checkpoint file — otherwise the
  /// session starts from sequence 0 and bootstraps via snapshot. Call
  /// before the server restores its checkpoint; returns the sequence to
  /// resume from (0 = start fresh, caller should skip the restore).
  std::uint64_t LoadResumePoint(const std::string& meta_path,
                                const std::string& state_path);

  void Start();
  void Stop();

  std::uint64_t last_applied() const noexcept {
    return last_applied_.load(std::memory_order_acquire);
  }

  /// Test/ops helper: polls until last_applied() >= seq or the timeout
  /// expires. Returns whether the sequence was reached.
  bool WaitForSeq(std::uint64_t seq, int timeout_ms) const;

  const Counters& counters() const noexcept { return counters_; }

 private:
  void Run();
  /// One connect-handshake-stream session; returns when it fails or Stop()
  /// was requested. True on clean stop, false when the caller should back
  /// off and reconnect.
  bool SyncOnce();

  VcfServer& server_;
  Options options_;
  Counters counters_;
  /// Primary run ID the current stream position belongs to (0 = none yet).
  /// Only the session thread (and pre-Start LoadResumePoint) touches it.
  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> last_applied_{0};
  std::atomic<bool> stop_{false};
  std::atomic<int> fd_{-1};  ///< live socket, shut down by Stop()
  std::thread thread_;
};

}  // namespace vcf::server
