#include "server/poller.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define VCF_HAVE_EPOLL 1
#if defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#define VCF_HAVE_IO_URING 1
#endif
#endif
#endif

namespace vcf::server {

namespace {

#if VCF_HAVE_IO_URING

constexpr unsigned kRingEntries = 256;
// POLL_REMOVE completions carry no actionable state; tag and drop them.
constexpr std::uint64_t kIgnoredUserData = ~0ULL;

std::uint64_t PackUserData(int fd, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         static_cast<std::uint32_t>(fd);
}

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

#endif  // VCF_HAVE_IO_URING

}  // namespace

#if VCF_HAVE_IO_URING

// Mmapped io_uring state. The poller is single-threaded per worker, so the
// only cross-thread actors are kernel ↔ user: acquire-loads on the
// kernel-written indices (SQ head, CQ tail) and release-stores on the
// user-written ones (SQ tail, CQ head) are sufficient.
struct Poller::Ring {
  int fd = -1;
  void* sq_ptr = nullptr;
  std::size_t sq_sz = 0;
  void* cq_ptr = nullptr;  // == sq_ptr with IORING_FEAT_SINGLE_MMAP
  std::size_t cq_sz = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_sz = 0;

  unsigned sq_entries = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  unsigned to_submit = 0;    // SQEs staged since the last io_uring_enter
  bool multishot_ok = true;  // cleared if POLL_ADD_MULTI returns -EINVAL

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_sz);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_sz);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_sz);
    if (fd >= 0) ::close(fd);
  }

  // Flushes staged SQEs without waiting. Returns false if the kernel
  // rejected the submission (ring is then effectively dead).
  bool Flush() {
    while (to_submit > 0) {
      const int n = SysIoUringEnter(fd, to_submit, 0, 0, nullptr, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      to_submit -= static_cast<unsigned>(n);
      if (n == 0) return false;  // no forward progress
    }
    return true;
  }

  io_uring_sqe* GetSqe() {
    unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    if (*sq_tail - head >= sq_entries) {
      if (!Flush()) return nullptr;
      head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
      if (*sq_tail - head >= sq_entries) return nullptr;
    }
    const unsigned tail = *sq_tail;
    const unsigned idx = tail & *sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array[idx] = idx;
    __atomic_store_n(sq_tail, tail + 1, __ATOMIC_RELEASE);
    ++to_submit;
    return sqe;
  }
};

bool Poller::InitRing() {
  io_uring_params p{};
  const int fd = SysIoUringSetup(kRingEntries, &p);
  if (fd < 0) return false;
  // EXT_ARG carries the Wait timeout through io_uring_enter (kernel 5.11+);
  // without it every timed wait would need a timeout SQE. Treat its absence
  // as "no io_uring" and degrade.
  if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
    ::close(fd);
    return false;
  }
  auto ring = new Ring();
  ring->fd = fd;
  ring->sq_entries = p.sq_entries;
  ring->sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  ring->cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && ring->cq_sz > ring->sq_sz) ring->sq_sz = ring->cq_sz;
  ring->sq_ptr = ::mmap(nullptr, ring->sq_sz, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring->sq_ptr == MAP_FAILED) {
    ring->sq_ptr = nullptr;
    delete ring;
    return false;
  }
  if (single_mmap) {
    ring->cq_ptr = ring->sq_ptr;
  } else {
    ring->cq_ptr = ::mmap(nullptr, ring->cq_sz, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring->cq_ptr == MAP_FAILED) {
      ring->cq_ptr = nullptr;
      delete ring;
      return false;
    }
  }
  ring->sqes_sz = p.sq_entries * sizeof(io_uring_sqe);
  ring->sqes = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, ring->sqes_sz, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
  if (ring->sqes == MAP_FAILED) {
    ring->sqes = nullptr;
    delete ring;
    return false;
  }
  auto* sq = static_cast<std::uint8_t*>(ring->sq_ptr);
  ring->sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  ring->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  auto* cq = static_cast<std::uint8_t*>(ring->cq_ptr);
  ring->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  ring->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
  ring_ = ring;
  return true;
}

void Poller::ArmWatch(int fd, Watch& w) {
  if (w.armed || (!w.want_read && !w.want_write)) return;
  io_uring_sqe* sqe = ring_->GetSqe();
  if (sqe == nullptr) return;  // ring wedged; retried next Wait
  std::uint32_t mask = 0;
  if (w.want_read) mask |= POLLIN;
  if (w.want_write) mask |= POLLOUT;
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = fd;
  sqe->poll32_events = mask;
  if (w.persistent && ring_->multishot_ok) sqe->len = IORING_POLL_ADD_MULTI;
  sqe->user_data = PackUserData(fd, w.gen);
  w.armed = true;
}

void Poller::CancelWatch(int fd, Watch& w) {
  if (w.armed) {
    io_uring_sqe* sqe = ring_->GetSqe();
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_POLL_REMOVE;
      sqe->addr = PackUserData(fd, w.gen);
      sqe->user_data = kIgnoredUserData;
    }
    w.armed = false;
  }
  // Whether or not the cancel SQE landed, the generation bump fences any
  // completion still in flight for the old registration.
  ++w.gen;
}

int Poller::WaitIoUring(std::vector<Event>& out, int timeout_ms) {
  Ring& r = *ring_;
  // Re-arm every one-shot watch that fired (or was updated) last tick. The
  // POLL_ADD re-checks current readiness, so an fd left half-drained
  // reports readable again: level-triggered semantics.
  for (auto& [fd, w] : watches_) ArmWatch(fd, w);

  __kernel_timespec ts{};
  io_uring_getevents_arg arg{};
  unsigned flags = IORING_ENTER_GETEVENTS;
  const void* argp = nullptr;
  std::size_t argsz = 0;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000LL;
    arg.ts = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(&ts));
    flags |= IORING_ENTER_EXT_ARG;
    argp = &arg;
    argsz = sizeof(arg);
  }
  bool timed_out = false;
  unsigned to_submit = r.to_submit;
  for (;;) {
    const int n = SysIoUringEnter(r.fd, to_submit, 1, flags, argp, argsz);
    if (n >= 0) {
      r.to_submit -= static_cast<unsigned>(n) > r.to_submit
                         ? r.to_submit
                         : static_cast<unsigned>(n);
      break;
    }
    if (errno == ETIME) {
      r.to_submit -= to_submit;  // submission happens before the wait phase
      timed_out = true;
      break;
    }
    if (errno == EINTR) {
      // Submissions were consumed before the interrupted wait phase.
      r.to_submit -= to_submit;
      to_submit = 0;
      continue;
    }
    if (errno == EBUSY) {
      // CQ overflow backpressure: reap below, submit again next tick.
      break;
    }
    return -1;
  }

  unsigned head = *r.cq_head;
  const unsigned tail = __atomic_load_n(r.cq_tail, __ATOMIC_ACQUIRE);
  while (head != tail) {
    const io_uring_cqe& cqe = r.cqes[head & *r.cq_mask];
    ++head;
    if (cqe.user_data == kIgnoredUserData) continue;
    const int fd = static_cast<int>(cqe.user_data & 0xffffffffU);
    const auto gen = static_cast<std::uint32_t>(cqe.user_data >> 32);
    const auto it = watches_.find(fd);
    if (it == watches_.end() || it->second.gen != gen) continue;  // stale
    Watch& w = it->second;
    if ((cqe.flags & IORING_CQE_F_MORE) == 0) w.armed = false;
    if (cqe.res == -ECANCELED) continue;
    if (cqe.res == -EINVAL && w.persistent && r.multishot_ok) {
      // Kernel predates POLL_ADD_MULTI (< 5.13): drop to one-shot arming
      // for every persistent fd and re-arm on the next tick.
      r.multishot_ok = false;
      w.armed = false;
      continue;
    }
    Event e;
    e.fd = fd;
    if (cqe.res < 0) {
      e.error = true;
    } else {
      e.readable = (cqe.res & POLLIN) != 0;
      e.writable = (cqe.res & POLLOUT) != 0;
      e.error = (cqe.res & (POLLERR | POLLHUP)) != 0;
    }
    out.push_back(e);
  }
  __atomic_store_n(r.cq_head, head, __ATOMIC_RELEASE);
  if (out.empty() && timed_out) return 0;
  return static_cast<int>(out.size());
}

#else  // !VCF_HAVE_IO_URING

struct Poller::Ring {};
bool Poller::InitRing() { return false; }
void Poller::ArmWatch(int, Watch&) {}
void Poller::CancelWatch(int, Watch&) {}
int Poller::WaitIoUring(std::vector<Event>&, int) { return -1; }

#endif  // VCF_HAVE_IO_URING

namespace {

Poller::Backend ResolveBackend(Poller::Backend requested) {
  if (requested != Poller::Backend::kAuto) return requested;
  if (const char* env = std::getenv("VCFD_BACKEND")) {
    Poller::Backend b = Poller::Backend::kAuto;
    if (Poller::ParseBackend(env, &b) && b != Poller::Backend::kAuto) {
      return b;
    }
  }
  const char* force = std::getenv("VCFD_FORCE_POLL");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Poller::Backend::kPoll;
  }
  if (Poller::BackendAvailable(Poller::Backend::kIoUring)) {
    return Poller::Backend::kIoUring;
  }
#if VCF_HAVE_EPOLL
  return Poller::Backend::kEpoll;
#else
  return Poller::Backend::kPoll;
#endif
}

}  // namespace

bool Poller::BackendAvailable(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
    case Backend::kPoll:
      return true;
    case Backend::kEpoll:
#if VCF_HAVE_EPOLL
      return true;
#else
      return false;
#endif
    case Backend::kIoUring: {
#if VCF_HAVE_IO_URING
      // One probe per process: io_uring_setup is not free and the answer
      // cannot change underneath us.
      static const bool available = [] {
        io_uring_params p{};
        const int fd = SysIoUringSetup(4, &p);
        if (fd < 0) return false;
        ::close(fd);
        return (p.features & IORING_FEAT_EXT_ARG) != 0;
      }();
      return available;
#else
      return false;
#endif
    }
  }
  return false;
}

const char* Poller::BackendName(Backend backend) noexcept {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kEpoll:
      return "epoll";
    case Backend::kPoll:
      return "poll";
    case Backend::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

bool Poller::ParseBackend(const char* name, Backend* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "auto") == 0) {
    *out = Backend::kAuto;
  } else if (std::strcmp(name, "epoll") == 0) {
    *out = Backend::kEpoll;
  } else if (std::strcmp(name, "poll") == 0) {
    *out = Backend::kPoll;
  } else if (std::strcmp(name, "io_uring") == 0 ||
             std::strcmp(name, "uring") == 0) {
    *out = Backend::kIoUring;
  } else {
    return false;
  }
  return true;
}

Poller::Poller(Backend backend) : backend_(ResolveBackend(backend)) {
  if (backend_ == Backend::kIoUring && !InitRing()) {
    backend_ = Backend::kEpoll;  // degrade, don't die
  }
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;  // degrade, don't die
  }
#else
  if (backend_ == Backend::kEpoll) backend_ = Backend::kPoll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  delete ring_;
}

#if VCF_HAVE_EPOLL
namespace {
std::uint32_t EpollMask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace
#endif

bool Poller::Add(int fd, bool want_read, bool want_write, bool persistent) {
  Watch w;
  w.want_read = want_read;
  w.want_write = want_write;
  w.persistent = persistent;
  watches_[fd] = w;  // io_uring: unarmed; armed at the top of the next Wait
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  return true;
}

bool Poller::Update(int fd, bool want_read, bool want_write) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return false;
  if (it->second.want_read == want_read &&
      it->second.want_write == want_write) {
    // The steady state (read-armed, nothing queued to write) re-requests
    // the same interest set every tick; skip the epoll_ctl / poll-cancel
    // syscall when nothing changed.
    return true;
  }
  if (backend_ == Backend::kIoUring) {
    // Cancel the in-flight poll (its mask is stale); the next Wait re-arms
    // with the new interest set.
    CancelWatch(fd, it->second);
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  return true;
}

void Poller::Remove(int fd) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  if (backend_ == Backend::kIoUring) CancelWatch(fd, it->second);
  watches_.erase(it);
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

int Poller::Wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
  if (backend_ == Backend::kIoUring) return WaitIoUring(out, timeout_ms);
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(watches_.size());
  for (const auto& [fd, w] : watches_) {
    pollfd p{};
    p.fd = fd;
    if (w.want_read) p.events |= POLLIN;
    if (w.want_write) p.events |= POLLOUT;
    pfds.push_back(p);
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return static_cast<int>(out.size());
}

}  // namespace vcf::server
