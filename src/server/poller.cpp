#include "server/poller.hpp"

#include <cerrno>
#include <cstdlib>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define VCF_HAVE_EPOLL 1
#endif

namespace vcf::server {

namespace {

Poller::Backend ResolveBackend(Poller::Backend requested) {
  if (requested != Poller::Backend::kAuto) return requested;
  const char* force = std::getenv("VCFD_FORCE_POLL");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Poller::Backend::kPoll;
  }
#if VCF_HAVE_EPOLL
  return Poller::Backend::kEpoll;
#else
  return Poller::Backend::kPoll;
#endif
}

}  // namespace

Poller::Poller(Backend backend) : backend_(ResolveBackend(backend)) {
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) backend_ = Backend::kPoll;  // degrade, don't die
  }
#else
  backend_ = Backend::kPoll;
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#if VCF_HAVE_EPOLL
namespace {
std::uint32_t EpollMask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace
#endif

bool Poller::Add(int fd, bool want_read, bool want_write) {
  watches_[fd] = Watch{want_read, want_write};
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }
#endif
  return true;
}

bool Poller::Update(int fd, bool want_read, bool want_write) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return false;
  it->second = Watch{want_read, want_write};
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  return true;
}

void Poller::Remove(int fd) {
  watches_.erase(fd);
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
}

int Poller::Wait(std::vector<Event>& out, int timeout_ms) {
  out.clear();
#if VCF_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(watches_.size());
  for (const auto& [fd, w] : watches_) {
    pollfd p{};
    p.fd = fd;
    if (w.want_read) p.events |= POLLIN;
    if (w.want_write) p.events |= POLLOUT;
    pfds.push_back(p);
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return static_cast<int>(out.size());
}

}  // namespace vcf::server
