#include "server/replication.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <sys/socket.h>

#include "hash/hash64.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"

namespace vcf::server {

// --- OplogBuffer ----------------------------------------------------------

std::uint64_t OplogBuffer::Append(std::uint8_t op, std::uint64_t key) {
  std::lock_guard lock(mutex_);
  const std::uint64_t seq = next_seq_++;
  entries_.push_back(OplogEntry{seq, op, key});
  if (entries_.size() > capacity_) entries_.pop_front();
  return seq;
}

std::uint64_t OplogBuffer::last() const {
  std::lock_guard lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t OplogBuffer::first_retained() const {
  std::lock_guard lock(mutex_);
  return entries_.empty() ? next_seq_ : entries_.front().seq;
}

bool OplogBuffer::CanServeFrom(std::uint64_t seq) const {
  std::lock_guard lock(mutex_);
  const std::uint64_t first = entries_.empty() ? next_seq_
                                               : entries_.front().seq;
  return seq >= first && seq <= next_seq_;
}

bool OplogBuffer::CopyFrom(std::uint64_t from_seq, std::size_t max_entries,
                           std::vector<OplogEntry>& out) const {
  std::lock_guard lock(mutex_);
  if (!entries_.empty() && from_seq < entries_.front().seq) return false;
  if (entries_.empty() && from_seq < next_seq_) return false;
  // Entries are contiguous, so the first wanted one is at a fixed offset.
  if (entries_.empty() || from_seq >= next_seq_) return true;
  std::size_t idx = static_cast<std::size_t>(from_seq - entries_.front().seq);
  for (; idx < entries_.size() && max_entries > 0; ++idx, --max_entries) {
    out.push_back(entries_[idx]);
  }
  return true;
}

// --- ReplMeta -------------------------------------------------------------

namespace {

constexpr char kReplMetaMagic[4] = {'V', 'C', 'F', 'R'};

void PutLE64(std::ofstream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.write(b, 8);
}

bool GetLE64(std::ifstream& in, std::uint64_t* v) {
  char b[8];
  if (!in.read(b, 8)) return false;
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  }
  *v = r;
  return true;
}

}  // namespace

bool WriteReplMeta(const std::string& path, const ReplMeta& meta) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kReplMetaMagic, 4);
    PutLE64(out, meta.applied_seq);
    PutLE64(out, meta.primary_epoch);
    PutLE64(out, meta.state_digest);
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadReplMeta(const std::string& path, ReplMeta* meta) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kReplMetaMagic, 4) != 0) {
    return false;
  }
  return GetLE64(in, &meta->applied_seq) &&
         GetLE64(in, &meta->primary_epoch) &&
         GetLE64(in, &meta->state_digest);
}

bool FileDigest(const std::string& path, std::uint64_t* digest) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  // Chain per-block SplitMix digests; block-boundary independence is not
  // needed, only that the same bytes give the same digest.
  std::uint64_t h = 0x5EED0F11E5ULL;
  char buf[64 * 1024];
  for (;;) {
    in.read(buf, sizeof(buf));
    const std::streamsize n = in.gcount();
    if (n <= 0) break;
    h = SplitMixHash64(buf, static_cast<std::size_t>(n), h);
    if (!in) break;
  }
  if (in.bad()) return false;
  *digest = h;
  return true;
}

// --- ReplicaSession -------------------------------------------------------

ReplicaSession::ReplicaSession(VcfServer& server, Options options)
    : server_(server), options_(options) {}

ReplicaSession::~ReplicaSession() { Stop(); }

std::uint64_t ReplicaSession::LoadResumePoint(const std::string& meta_path,
                                              const std::string& state_path) {
  ReplMeta meta;
  std::uint64_t digest = 0;
  if (!ReadReplMeta(meta_path, &meta) || !FileDigest(state_path, &digest) ||
      digest != meta.state_digest) {
    return 0;
  }
  epoch_ = meta.primary_epoch;
  server_.SetReplEpoch(meta.primary_epoch);
  last_applied_.store(meta.applied_seq, std::memory_order_release);
  return meta.applied_seq;
}

void ReplicaSession::Start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Run(); });
}

void ReplicaSession::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  const int fd = fd_.load(std::memory_order_relaxed);
  // Unblock a session parked in a read; the fd itself is closed by the
  // session loop that owns it.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

bool ReplicaSession::WaitForSeq(std::uint64_t seq, int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (last_applied() < seq) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

void ReplicaSession::Run() {
  int backoff_ms = options_.backoff_base_ms;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (SyncOnce()) break;  // clean stop
    counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
    // Exponential backoff, interruptible by Stop() at 10 ms granularity.
    for (int slept = 0;
         slept < backoff_ms && !stop_.load(std::memory_order_relaxed);
         slept += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
  }
}

namespace {

/// Reads whole frames off a blocking socket with an idle tick. Returns
/// 1 = frame produced, 0 = idle tick (timeout, no frame), -1 = fail.
int NextFrame(int fd, net::FrameBuffer& in, int timeout_ms,
              std::span<const std::uint8_t>& payload) {
  if (in.Next(payload)) return 1;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const std::ptrdiff_t n = net::ReadSomeTimeout(fd, buf, timeout_ms);
    if (n == -3) return 0;
    if (n <= 0) return -1;
    if (!in.Append(std::span<const std::uint8_t>(
            buf, static_cast<std::size_t>(n)))) {
      return -1;
    }
    if (in.Next(payload)) return 1;
  }
}

}  // namespace

bool ReplicaSession::SyncOnce() {
  std::string error;
  const int fd = net::ConnectTcpTimeout(options_.primary_host,
                                        options_.primary_port,
                                        options_.connect_timeout_ms, &error);
  if (fd < 0) return stop_.load(std::memory_order_relaxed);
  net::SetNoDelay(fd);
  fd_.store(fd, std::memory_order_relaxed);
  // Stop() may have raced the store; re-check so the shutdown isn't missed.
  if (stop_.load(std::memory_order_relaxed)) {
    fd_.store(-1, std::memory_order_relaxed);
    net::CloseFd(fd);
    return true;
  }

  const auto fail = [&](bool clean) {
    fd_.store(-1, std::memory_order_relaxed);
    net::CloseFd(fd);
    return clean;
  };
  const auto stopped = [&] { return stop_.load(std::memory_order_relaxed); };

  std::vector<std::uint8_t> wire;
  net::EncodeReplHello(wire, /*request_id=*/1, epoch_, last_applied());
  if (!net::WriteAll(fd, wire)) return fail(stopped());

  net::FrameBuffer in;
  std::span<const std::uint8_t> payload;

  // Handshake response.
  int r;
  do {
    r = NextFrame(fd, in, options_.read_timeout_ms, payload);
    if (r < 0 || stopped()) return fail(stopped());
  } while (r == 0);
  net::Response hello;
  if (net::DecodeResponse(payload, net::Opcode::kReplHello, hello) !=
          net::DecodeResult::kOk ||
      hello.status != net::Status::kOk) {
    return fail(stopped());
  }
  in.Pop();
  // Adopt the primary's run ID. On a resume the primary has verified our
  // position belongs to its log (or we joined fresh at seq 0), so the
  // (seq, epoch) pair stays consistent; a snapshot install stamps both
  // atomically below instead.
  epoch_ = hello.epoch;
  if (!hello.flag) server_.SetReplEpoch(hello.epoch);
  std::uint64_t next_seq = last_applied() + 1;

  if (hello.flag) {
    // Snapshot bootstrap: BEGIN, chunks, END; then install and continue the
    // stream past the snapshot point.
    const std::uint64_t snapshot_seq = hello.seq;
    std::string blob;
    std::uint64_t announced_total = 0;
    bool begun = false;
    for (;;) {
      do {
        r = NextFrame(fd, in, options_.read_timeout_ms, payload);
        if (r < 0 || stopped()) return fail(stopped());
      } while (r == 0);
      net::Request frame;
      if (net::DecodeRequest(payload, frame) != net::DecodeResult::kOk) {
        return fail(stopped());
      }
      in.Pop();
      if (frame.opcode == net::Opcode::kSnapshotBegin) {
        if (begun || frame.seq != snapshot_seq ||
            frame.total_bytes > options_.max_snapshot_bytes) {
          return fail(stopped());
        }
        begun = true;
        announced_total = frame.total_bytes;
        blob.reserve(static_cast<std::size_t>(announced_total));
        continue;
      }
      if (frame.opcode == net::Opcode::kSnapshotChunk) {
        if (!begun ||
            blob.size() + frame.blob.size() > announced_total) {
          return fail(stopped());
        }
        blob.append(reinterpret_cast<const char*>(frame.blob.data()),
                    frame.blob.size());
        continue;
      }
      if (frame.opcode == net::Opcode::kSnapshotEnd) {
        if (!begun || frame.total_bytes != announced_total ||
            blob.size() != announced_total ||
            frame.digest != SplitMixHash64(blob.data(), blob.size(), 0)) {
          return fail(stopped());
        }
        break;
      }
      return fail(stopped());  // anything else mid-snapshot is a protocol error
    }
    std::string install_error;
    if (!server_.InstallSnapshot(blob, snapshot_seq, hello.epoch,
                                 &install_error)) {
      return fail(stopped());
    }
    last_applied_.store(snapshot_seq, std::memory_order_release);
    next_seq = snapshot_seq + 1;
    counters_.snapshots_installed.fetch_add(1, std::memory_order_relaxed);
  }

  // Steady-state stream: apply entries exactly once, in order.
  std::uint64_t since_ack = 0;
  const auto send_ack = [&] {
    wire.clear();
    net::EncodeOplogAck(wire, last_applied());
    since_ack = 0;
    return net::WriteAll(fd, wire);
  };
  for (;;) {
    r = NextFrame(fd, in, options_.read_timeout_ms, payload);
    if (r < 0 || stopped()) return fail(stopped());
    if (r == 0) {
      // Idle: keepalive ACK doubles as liveness so the primary can reap
      // dead replicas via TCP errors.
      if (!send_ack()) return fail(stopped());
      continue;
    }
    net::Request frame;
    if (net::DecodeRequest(payload, frame) != net::DecodeResult::kOk ||
        frame.opcode != net::Opcode::kOplogEntry) {
      return fail(stopped());
    }
    in.Pop();
    if (frame.seq < next_seq) continue;  // duplicate: already applied
    if (frame.seq > next_seq) {
      // A gap can only mean the primary skipped entries we never saw —
      // abort; the reconnect handshake resyncs (usually via snapshot).
      counters_.gaps_detected.fetch_add(1, std::memory_order_relaxed);
      return fail(stopped());
    }
    if (!server_.ApplyReplicated(frame.repl_op, frame.key, frame.seq)) {
      counters_.apply_failures.fetch_add(1, std::memory_order_relaxed);
    }
    counters_.entries_applied.fetch_add(1, std::memory_order_relaxed);
    last_applied_.store(frame.seq, std::memory_order_release);
    ++next_seq;
    if (++since_ack >= options_.ack_every) {
      if (!send_ack()) return fail(stopped());
    }
  }
}

}  // namespace vcf::server
