// Log-bucketed streaming latency histogram (HdrHistogram-style), built for
// the service benchmarks: Record() is a handful of bit ops plus one counter
// increment, memory is a fixed ~18 KB regardless of sample count, and
// histograms merge exactly (bucket-wise sum), so each load-generator thread
// records into its own and the report merges them at the end.
//
// Bucketing: values are grouped by (floor(log2(v)), 5 high sub-bucket bits),
// i.e. 32 sub-buckets per octave, giving a worst-case relative error of
// 1/32 ≈ 3.1% on any reported quantile — far below run-to-run noise — over
// the full range [1 ns, 2^63 ns ≈ 292 years]. Values of 0 land in the first
// bucket; quantiles are reported as the upper edge of their bucket, so a
// reported p99 is a conservative (never optimistic) bound.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace vcf {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBucketBits = 5;  ///< 32 sub-buckets / octave
  static constexpr std::size_t kBucketCount = 64u << kSubBucketBits;

  void Record(std::uint64_t nanos) noexcept {
    ++buckets_[BucketIndex(nanos)];
    ++count_;
    sum_ += nanos;
    if (nanos < min_) min_ = nanos;
    if (nanos > max_) max_ = nanos;
  }

  /// Bucket-wise sum; exact (merging then querying == querying a histogram
  /// that saw both streams).
  LatencyHistogram& Merge(const LatencyHistogram& other) noexcept;

  std::uint64_t Count() const noexcept { return count_; }
  double MeanNanos() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t MinNanos() const noexcept { return count_ == 0 ? 0 : min_; }
  /// Exact maximum (tracked outside the buckets, so the tail is not rounded).
  std::uint64_t MaxNanos() const noexcept { return max_; }

  /// Upper edge of the bucket holding the q-th sample (q in [0, 1]; q = 0
  /// returns the min bucket edge, q = 1 the exact max). 0 when empty.
  std::uint64_t ValueAtQuantile(double q) const noexcept;

  std::uint64_t P50() const noexcept { return ValueAtQuantile(0.50); }
  std::uint64_t P95() const noexcept { return ValueAtQuantile(0.95); }
  std::uint64_t P99() const noexcept { return ValueAtQuantile(0.99); }
  std::uint64_t P999() const noexcept { return ValueAtQuantile(0.999); }

  void Reset() noexcept;

  /// "p50=1.2us p95=3.4us p99=8.1us p999=22us max=31us" — log lines.
  std::string Summary() const;

  /// The largest value mapping to the same bucket as `nanos` (bucket upper
  /// edge); exposed for tests asserting the error bound.
  static std::uint64_t BucketUpperEdge(std::uint64_t nanos) noexcept;

  /// Binary serialisation (little-endian, versioned magic) for cross-process
  /// merging: vcf_loadgen --processes writes each child's histograms to a
  /// temp file and the parent Load()s + Merge()s them. Load replaces this
  /// histogram's contents; false on a short read or mismatched header.
  bool Save(std::ostream& out) const;
  bool Load(std::istream& in);

 private:
  static std::size_t BucketIndex(std::uint64_t nanos) noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace vcf
