#include "metrics/op_counters.hpp"

#include <sstream>

namespace vcf {

OpCounters& OpCounters::operator+=(const OpCounters& o) noexcept {
  inserts += o.inserts;
  insert_failures += o.insert_failures;
  evictions += o.evictions;
  hash_computations += o.hash_computations;
  bucket_probes += o.bucket_probes;
  lookups += o.lookups;
  deletions += o.deletions;
  return *this;
}

std::string OpCounters::ToString() const {
  std::ostringstream os;
  os << "inserts=" << inserts << " failures=" << insert_failures
     << " evictions=" << evictions << " hashes=" << hash_computations
     << " bucket_probes=" << bucket_probes << " lookups=" << lookups
     << " deletions=" << deletions;
  return os.str();
}

}  // namespace vcf
