#include "metrics/op_counters.hpp"

#include <sstream>

namespace vcf {

OpCounters& OpCounters::operator+=(const OpCounters& o) noexcept {
  inserts += o.inserts;
  insert_failures += o.insert_failures;
  evictions += o.evictions;
  hash_computations += o.hash_computations;
  bucket_probes += o.bucket_probes;
  lookups += o.lookups;
  deletions += o.deletions;
  stash_inserts += o.stash_inserts;
  stash_hits += o.stash_hits;
  stash_drains += o.stash_drains;
  degraded_inserts += o.degraded_inserts;
  checkpoint_retries += o.checkpoint_retries;
  seqlock_retries += o.seqlock_retries;
  seqlock_fallbacks += o.seqlock_fallbacks;
  return *this;
}

std::string OpCounters::ToString() const {
  std::ostringstream os;
  os << "inserts=" << inserts << " failures=" << insert_failures
     << " evictions=" << evictions << " hashes=" << hash_computations
     << " bucket_probes=" << bucket_probes << " lookups=" << lookups
     << " deletions=" << deletions;
  // Resilience counters only appear once the wrapper has something to say,
  // keeping the common (bare-filter) string stable for existing parsers.
  if (stash_inserts || stash_hits || stash_drains || degraded_inserts ||
      checkpoint_retries) {
    os << " stash_inserts=" << stash_inserts << " stash_hits=" << stash_hits
       << " stash_drains=" << stash_drains
       << " degraded_inserts=" << degraded_inserts
       << " checkpoint_retries=" << checkpoint_retries;
  }
  if (seqlock_retries || seqlock_fallbacks) {
    os << " seqlock_retries=" << seqlock_retries
       << " seqlock_fallbacks=" << seqlock_fallbacks;
  }
  return os.str();
}

}  // namespace vcf
