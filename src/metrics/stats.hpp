// Streaming statistics for repeated-trial experiments.
//
// The paper reports means over 1000 repetitions; RunningStat accumulates
// mean/variance/min/max in O(1) memory (Welford), so a sweep never needs to
// retain per-trial vectors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vcf {

class RunningStat {
 public:
  void Add(double x) noexcept;

  std::size_t Count() const noexcept { return n_; }
  double Mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  double Variance() const noexcept;  ///< sample variance (n-1 denominator)
  double StdDev() const noexcept;
  double Min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double Max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  RunningStat& Merge(const RunningStat& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile over a retained sample (used for latency tails in the
/// micro benchmarks, where the sample count is bounded).
double Quantile(std::vector<double> values, double q) noexcept;

}  // namespace vcf
