// Operation counters instrumenting every filter.
//
// The paper's Fig. 8 reports E0, the average number of eviction (kick-out)
// operations per inserted item, and §V-C models insertion cost in terms of
// hash computations and bucket probes. Counters make those quantities
// directly observable instead of being inferred from wall-clock time, which
// also makes the reproduction CPU-portable.
//
// Counters are updated from const lookup paths, and ConcurrentFilter runs
// lookups under a shared lock — so each field is a relaxed atomic wrapped to
// behave like a plain uint64_t. Relaxed increments cost a single lock-free
// add and impose no ordering; cross-thread totals are exact, per-read
// snapshots are monotone.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace vcf {

/// A uint64 counter with relaxed-atomic access and value semantics, so that
/// aggregating structs stay copyable and comparisons read naturally.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter(std::uint64_t v = 0) noexcept : v_(v) {}
  RelaxedCounter(const RelaxedCounter& other) noexcept : v_(other.Value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    v_.store(other.Value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator std::uint64_t() const noexcept { return Value(); }
  std::uint64_t Value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  RelaxedCounter& operator++() noexcept {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t operator++(int) noexcept {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(std::uint64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_;
};

struct OpCounters {
  RelaxedCounter inserts;          ///< insert attempts
  RelaxedCounter insert_failures;  ///< attempts that hit MAX kicks (filter full)
  RelaxedCounter evictions;        ///< fingerprints kicked out (relocations)
  RelaxedCounter hash_computations;///< full hash-function invocations
  RelaxedCounter bucket_probes;    ///< candidate buckets examined
  RelaxedCounter lookups;          ///< membership queries
  RelaxedCounter deletions;        ///< delete attempts

  // ResilientFilter overload/recovery observability (docs/robustness.md).
  RelaxedCounter stash_inserts;    ///< failed inserts absorbed by the stash
  RelaxedCounter stash_hits;       ///< lookups answered from the stash
  RelaxedCounter stash_drains;     ///< stashed keys drained back into the table
  RelaxedCounter degraded_inserts; ///< inserts taken in fail-fast degraded mode
  RelaxedCounter checkpoint_retries; ///< SaveState/LoadState attempts retried

  // Optimistic (seqlock) read-path observability (DESIGN.md concurrency
  // model): a retry is one re-probe after sequence validation failed; a
  // fallback is a read that exhausted its retry budget and took the lock.
  RelaxedCounter seqlock_retries;
  RelaxedCounter seqlock_fallbacks;

  void Reset() noexcept { *this = OpCounters{}; }

  /// E0 of Fig. 8: mean evictions per attempted insertion.
  double EvictionsPerInsert() const noexcept {
    const std::uint64_t n = inserts;
    return n == 0 ? 0.0
                  : static_cast<double>(evictions.Value()) / static_cast<double>(n);
  }
  double ProbesPerLookup() const noexcept {
    const std::uint64_t n = lookups;
    return n == 0 ? 0.0
                  : static_cast<double>(bucket_probes.Value()) /
                        static_cast<double>(n);
  }

  OpCounters& operator+=(const OpCounters& o) noexcept;

  std::string ToString() const;
};

}  // namespace vcf
