#include "metrics/table_printer.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace vcf {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::Print(std::ostream& out) const {
  std::size_t cols = headers_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  PrintCsv(out);
  return static_cast<bool>(out);
}

}  // namespace vcf
