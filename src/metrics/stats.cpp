#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace vcf {

void RunningStat::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::Variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::StdDev() const noexcept { return std::sqrt(Variance()); }

RunningStat& RunningStat::Merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return *this;
  if (n_ == 0) {
    *this = other;
    return *this;
  }
  // Chan et al. parallel-merge formulas.
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return *this;
}

double Quantile(std::vector<double> values, double q) noexcept {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.end());
  const double vlo = values[lo];
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(hi),
                   values.end());
  const double vhi = values[hi];
  const double frac = pos - static_cast<double>(lo);
  return vlo + (vhi - vlo) * frac;
}

}  // namespace vcf
