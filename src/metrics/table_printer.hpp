// Aligned-column table and CSV emitters for the benchmark harness.
//
// Every bench binary prints its table/figure in the same layout the paper
// uses (rows = filters or sweep points, columns = metrics), and optionally
// dumps a CSV so the series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vcf {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; short rows are padded with empty cells, long rows widen
  /// the table.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric rows; values are formatted with `precision`
  /// significant decimal places.
  void AddNumericRow(const std::string& label, const std::vector<double>& values,
                     int precision = 3);

  /// Renders an aligned ASCII table.
  void Print(std::ostream& out) const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& out) const;

  /// Writes the CSV to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  static std::string FormatDouble(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vcf
