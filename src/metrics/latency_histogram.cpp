#include "metrics/latency_histogram.hpp"

#include <bit>
#include <cstdio>
#include <istream>
#include <ostream>

namespace vcf {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t nanos) noexcept {
  // Values below 2^kSubBucketBits get one bucket each (exact); above that,
  // the octave index and the kSubBucketBits bits below the leading one pick
  // the bucket. Layout: octave-major, so indices are monotone in value.
  if (nanos < (std::uint64_t{1} << kSubBucketBits)) {
    return static_cast<std::size_t>(nanos);
  }
  const unsigned log2 = 63u - static_cast<unsigned>(std::countl_zero(nanos));
  const std::uint64_t sub =
      (nanos >> (log2 - kSubBucketBits)) & ((1u << kSubBucketBits) - 1);
  return (static_cast<std::size_t>(log2 - kSubBucketBits + 1)
          << kSubBucketBits) +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::BucketUpperEdge(std::uint64_t nanos) noexcept {
  if (nanos < (std::uint64_t{1} << kSubBucketBits)) return nanos;
  const unsigned log2 = 63u - static_cast<unsigned>(std::countl_zero(nanos));
  const unsigned shift = log2 - kSubBucketBits;
  // Everything below the sub-bucket bits saturates to ones.
  return (nanos | ((std::uint64_t{1} << shift) - 1));
}

LatencyHistogram& LatencyHistogram::Merge(
    const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ != 0) {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  return *this;
}

std::uint64_t LatencyHistogram::ValueAtQuantile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q >= 1.0) return max_;
  // Rank of the target sample (1-based); the q-quantile is the value below
  // which at least ceil(q * count) samples fall.
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_)) + 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i < (std::size_t{1} << kSubBucketBits)) {
        return static_cast<std::uint64_t>(i);  // exact region
      }
      const unsigned octave =
          static_cast<unsigned>(i >> kSubBucketBits) + kSubBucketBits - 1;
      const std::uint64_t sub = i & ((1u << kSubBucketBits) - 1);
      const unsigned shift = octave - kSubBucketBits;
      const std::uint64_t base =
          (std::uint64_t{1} << octave) | (sub << shift);
      const std::uint64_t edge = base | ((std::uint64_t{1} << shift) - 1);
      // Never report beyond the exact max (the last occupied bucket's edge
      // can overshoot it by the bucket width).
      return edge > max_ ? max_ : edge;
    }
  }
  return max_;
}

void LatencyHistogram::Reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = ~std::uint64_t{0};
  max_ = 0;
}

namespace {

/// 1234 -> "1.23us"; keeps log lines humane across nine orders of magnitude.
std::string HumanNanos(std::uint64_t ns) {
  char buf[32];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000ull * 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

namespace {

/// 'V','C','F','H' + format version 1; the header also pins the bucket
/// geometry so a histogram built with different kSubBucketBits is rejected
/// instead of silently mis-merged.
constexpr std::uint64_t kHistMagic = 0x0148'4643'5601ull;

void PutU64LE(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.write(b, 8);
}

bool GetU64LE(std::istream& in, std::uint64_t& v) {
  char b[8];
  if (!in.read(b, 8)) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
         << (8 * i);
  }
  return true;
}

}  // namespace

bool LatencyHistogram::Save(std::ostream& out) const {
  PutU64LE(out, kHistMagic);
  PutU64LE(out, kBucketCount);
  PutU64LE(out, count_);
  PutU64LE(out, sum_);
  PutU64LE(out, min_);
  PutU64LE(out, max_);
  for (const std::uint64_t b : buckets_) PutU64LE(out, b);
  return out.good();
}

bool LatencyHistogram::Load(std::istream& in) {
  std::uint64_t magic = 0, buckets = 0;
  if (!GetU64LE(in, magic) || magic != kHistMagic) return false;
  if (!GetU64LE(in, buckets) || buckets != kBucketCount) return false;
  LatencyHistogram fresh;
  if (!GetU64LE(in, fresh.count_) || !GetU64LE(in, fresh.sum_) ||
      !GetU64LE(in, fresh.min_) || !GetU64LE(in, fresh.max_)) {
    return false;
  }
  for (std::uint64_t& b : fresh.buckets_) {
    if (!GetU64LE(in, b)) return false;
  }
  *this = fresh;
  return true;
}

std::string LatencyHistogram::Summary() const {
  if (count_ == 0) return "(no samples)";
  return "p50=" + HumanNanos(P50()) + " p95=" + HumanNanos(P95()) +
         " p99=" + HumanNanos(P99()) + " p999=" + HumanNanos(P999()) +
         " max=" + HumanNanos(MaxNanos());
}

}  // namespace vcf
