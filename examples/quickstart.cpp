// Quickstart: build a Vertical Cuckoo Filter, insert keys, query membership,
// delete, and inspect the built-in instrumentation.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

int main() {
  // A filter with 2^16 slots (2^14 buckets x 4 slots), 14-bit fingerprints,
  // balanced bitmasks — the paper's default VCF configuration.
  vcf::CuckooParams params;
  params.bucket_count = 1 << 14;
  params.fingerprint_bits = 14;
  vcf::VerticalCuckooFilter filter(params);

  std::printf("filter: %s, %zu slots, %zu bytes, r = %.4f\n",
              filter.Name().c_str(), filter.SlotCount(), filter.MemoryBytes(),
              filter.TheoreticalR());

  // Insert 60,000 keys (~92%% of capacity).
  const auto keys = vcf::UniformKeys(60000, /*stream_id=*/1);
  std::size_t stored = 0;
  for (const auto key : keys) stored += filter.Insert(key) ? 1 : 0;
  std::printf("inserted %zu/%zu keys, load factor %.2f%%\n", stored,
              keys.size(), filter.LoadFactor() * 100.0);

  // Query: every stored key answers true (no false negatives)...
  std::size_t hits = 0;
  for (const auto key : keys) hits += filter.Contains(key) ? 1 : 0;
  std::printf("positive lookups: %zu/%zu\n", hits, keys.size());

  // ...and alien keys answer true only at the false-positive rate.
  const auto aliens = vcf::UniformKeys(100000, /*stream_id=*/2);
  std::size_t false_positives = 0;
  for (const auto key : aliens) false_positives += filter.Contains(key) ? 1 : 0;
  std::printf("false positive rate: %.5f%%\n",
              100.0 * static_cast<double>(false_positives) /
                  static_cast<double>(aliens.size()));

  // String keys work through the convenience layer.
  filter.InsertKey("user:42:session:2026-07-06");
  std::printf("string key present: %s\n",
              filter.ContainsKey("user:42:session:2026-07-06") ? "yes" : "no");

  // Deletion removes exactly one copy, never disturbing other items.
  filter.Erase(keys[0]);
  std::printf("after erase, key[0] present: %s (items: %zu)\n",
              filter.Contains(keys[0]) ? "maybe (false positive)" : "no",
              filter.ItemCount());

  // Instrumentation: hash computations, bucket probes, evictions.
  std::printf("counters: %s\n", filter.counters().ToString().c_str());
  return 0;
}
