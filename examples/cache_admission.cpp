// Cache-admission doorkeeper — a classic online use of an AMQ sketch
// (TinyLFU-style): only admit an object into the cache on its SECOND touch
// within a window, filtering out one-hit wonders. The doorkeeper must absorb
// one insert per cache miss (insertion-intensive!), which is exactly the
// workload VCF is designed for.
//
// A Zipf-distributed request stream drives a small LRU cache with and
// without a VCF doorkeeper; the doorkeeper lifts the hit rate by keeping
// one-hit wonders from evicting popular objects.
//
//   $ ./build/examples/cache_admission
#include <cstdio>
#include <list>
#include <unordered_map>

#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

namespace {

/// Minimal LRU cache of fixed capacity (keys only; values irrelevant here).
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  bool Touch(std::uint64_t key) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    return false;
  }

  void Admit(std::uint64_t key) {
    if (index_.count(key)) return;
    order_.push_front(key);
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
    }
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
};

double RunTrace(bool use_doorkeeper, const std::vector<std::uint64_t>& trace,
                std::size_t cache_size) {
  LruCache cache(cache_size);
  vcf::CuckooParams params;
  params.bucket_count = 1 << 12;  // 16k-slot doorkeeper
  vcf::VerticalCuckooFilter doorkeeper(params);

  std::size_t hits = 0;
  std::size_t since_reset = 0;
  for (const auto key : trace) {
    if (cache.Touch(key)) {
      ++hits;
      continue;
    }
    if (!use_doorkeeper) {
      cache.Admit(key);
      continue;
    }
    // Doorkeeper: first miss records the key; second miss admits it.
    if (doorkeeper.Contains(key)) {
      cache.Admit(key);
    } else {
      doorkeeper.Insert(key);
    }
    // Window reset keeps the sketch fresh (generation flip).
    if (++since_reset >= doorkeeper.SlotCount() / 2) {
      doorkeeper.Clear();
      since_reset = 0;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trace.size());
}

}  // namespace

int main() {
  // 2M requests over a 200k-object universe, Zipf(0.9): a realistic CDN-ish
  // popularity skew with a long one-hit-wonder tail.
  vcf::ZipfGenerator zipf(200000, 0.9, 2026);
  std::vector<std::uint64_t> trace(2000000);
  for (auto& key : trace) key = zipf.Next();

  const std::size_t cache_size = 2000;  // 1% of the universe
  const double lru = RunTrace(false, trace, cache_size);
  const double filtered = RunTrace(true, trace, cache_size);

  std::printf("request trace: %zu requests, universe 200k, cache %zu objects\n\n",
              trace.size(), cache_size);
  std::printf("LRU alone:           hit rate %.2f%%\n", lru * 100.0);
  std::printf("LRU + VCF doorkeeper: hit rate %.2f%%\n", filtered * 100.0);
  std::printf("\nThe doorkeeper absorbs one sketch insert per miss — an "
              "insertion-intensive side\nchannel that a slow-inserting filter"
              " would turn into the cache's bottleneck.\n");
  return 0;
}
