// Sliding-window packet deduplication — a router-style online application:
// report whether a packet ID was already seen in the last W packets. The
// window slides by DELETING the expiring packet's fingerprint, so the sketch
// sees one insert + one delete per packet: sustained write traffic at a
// pinned high load factor, the regime the VCF targets.
//
//   $ ./build/examples/packet_dedup
#include <cstdio>
#include <deque>
#include <memory>

#include "common/random.hpp"
#include "common/timer.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace {

struct DedupStats {
  std::size_t duplicates_flagged = 0;
  std::size_t true_duplicates = 0;
  double seconds = 0.0;
  std::uint64_t evictions = 0;
};

DedupStats Run(vcf::Filter& filter, std::size_t window,
               std::size_t packet_count, double dup_rate) {
  // Packet stream: mostly fresh IDs, with `dup_rate` of packets repeating a
  // recent ID (real duplicates from retransmits).
  vcf::Xoshiro256 rng(7);
  std::deque<std::uint64_t> live;
  std::uint64_t next_id = 0;
  DedupStats stats;
  filter.ResetCounters();
  vcf::Stopwatch watch;
  for (std::size_t i = 0; i < packet_count; ++i) {
    std::uint64_t packet;
    bool is_dup = false;
    if (!live.empty() && rng.NextDouble() < dup_rate) {
      packet = live[rng.Below(live.size())];
      is_dup = true;
    } else {
      packet = vcf::UniformKeyAt(/*stream_id=*/4, next_id++);
    }
    stats.true_duplicates += is_dup;

    if (filter.Contains(packet)) {
      ++stats.duplicates_flagged;  // may include rare false positives
    }
    if (!is_dup) {
      filter.Insert(packet);
      live.push_back(packet);
      if (live.size() > window) {
        filter.Erase(live.front());  // window slides: expire the oldest
        live.pop_front();
      }
    }
  }
  stats.seconds = watch.ElapsedSeconds();
  stats.evictions = filter.counters().evictions;
  return stats;
}

}  // namespace

int main() {
  vcf::CuckooParams params;
  params.bucket_count = 1 << 14;  // 65536 slots
  const std::size_t window = (params.slot_count() * 9) / 10;  // 90% pinned load
  const std::size_t packets = 2000000;
  const double dup_rate = 0.02;

  std::printf("dedup window: %zu packets (90%% of %zu slots), stream: %zu "
              "packets, %.0f%% duplicates\n\n",
              window, params.slot_count(), packets, dup_rate * 100);

  const vcf::FilterSpec specs[] = {
      {vcf::FilterSpec::Kind::kCF, 0, params, 0, 0},
      {vcf::FilterSpec::Kind::kIVCF, 6, params, 0, 0},
      {vcf::FilterSpec::Kind::kKVCF, 8, params, 0, 0},
  };
  std::printf("%-10s %12s %12s %14s %14s\n", "filter", "time(s)", "Mpkt/s",
              "dup_flagged", "evictions");
  for (const auto& spec : specs) {
    auto filter = vcf::MakeFilter(spec);
    const DedupStats s = Run(*filter, window, packets, dup_rate);
    std::printf("%-10s %12.3f %12.2f %14zu %14llu\n", filter->Name().c_str(),
                s.seconds, packets / s.seconds / 1e6, s.duplicates_flagged,
                static_cast<unsigned long long>(s.evictions));
  }
  std::printf("\nEvery true duplicate is flagged (no false negatives); the "
              "handful of extra flags\nare the filter's false positives. "
              "VCF sustains the pinned 90%% load with far\nfewer evictions "
              "than CF.\n");
  return 0;
}
