// Online session tracking — the paper's motivating scenario: a service in
// which items (sessions) join and leave at a high rate, so the membership
// sketch must sustain insertion-heavy traffic at high occupancy.
//
// The example runs the identical churn trace through a standard Cuckoo
// filter and a Vertical Cuckoo filter, then reports wall time, evictions
// and insert failures. The VCF's four candidate buckets drastically reduce
// the eviction chains that dominate CF insert cost near full load.
//
//   $ ./build/examples/online_sessions
#include <cstdio>
#include <memory>

#include "common/timer.hpp"
#include "harness/filter_factory.hpp"
#include "workload/churn.hpp"

namespace {

struct ChurnReport {
  double seconds = 0.0;
  std::size_t failed_inserts = 0;
  std::uint64_t evictions = 0;
  std::size_t missing_lookups = 0;
};

ChurnReport Replay(vcf::Filter& filter, const std::vector<vcf::ChurnOp>& trace) {
  ChurnReport report;
  filter.ResetCounters();
  vcf::Stopwatch watch;
  for (const auto& op : trace) {
    switch (op.kind) {
      case vcf::ChurnOp::Kind::kInsert:
        report.failed_inserts += filter.Insert(op.key) ? 0 : 1;
        break;
      case vcf::ChurnOp::Kind::kErase:
        filter.Erase(op.key);
        break;
      case vcf::ChurnOp::Kind::kLookup:
        if (op.expect_present && !filter.Contains(op.key)) {
          ++report.missing_lookups;  // would indicate a false negative
        }
        break;
    }
  }
  report.seconds = watch.ElapsedSeconds();
  report.evictions = filter.counters().evictions;
  return report;
}

}  // namespace

int main() {
  vcf::CuckooParams params;
  params.bucket_count = 1 << 16;  // 2^18 slots
  params.fingerprint_bits = 14;

  // Sessions churn around 96% occupancy: the regime where CF's reallocation
  // cost explodes and VCF keeps cruising.
  vcf::ChurnTraceConfig cfg;
  cfg.working_set = (params.slot_count() * 96) / 100;
  cfg.operations = 1 << 20;
  cfg.lookup_fraction = 0.3;
  const auto trace = vcf::GenerateChurnTrace(cfg);
  std::printf("churn trace: %zu ops, working set %zu sessions (%.0f%% of %zu slots)\n\n",
              trace.size(), cfg.working_set,
              100.0 * static_cast<double>(cfg.working_set) /
                  static_cast<double>(params.slot_count()),
              params.slot_count());

  const vcf::FilterSpec specs[] = {
      {vcf::FilterSpec::Kind::kCF, 0, params, 0, 0},
      {vcf::FilterSpec::Kind::kIVCF, 6, params, 0, 0},
      {vcf::FilterSpec::Kind::kDVCF, 8, params, 0, 0},
      {vcf::FilterSpec::Kind::kDCF, 4, params, 0, 0},
  };
  std::printf("%-10s %10s %14s %16s %16s\n", "filter", "time(s)", "evictions",
              "failed_inserts", "false_negatives");
  for (const auto& spec : specs) {
    auto filter = vcf::MakeFilter(spec);
    const ChurnReport r = Replay(*filter, trace);
    std::printf("%-10s %10.3f %14llu %16zu %16zu\n", filter->Name().c_str(),
                r.seconds, static_cast<unsigned long long>(r.evictions),
                r.failed_inserts, r.missing_lookups);
  }
  std::printf("\nExpected: VCF variants run the trace fastest with an order of"
              " magnitude fewer\nevictions than CF; nobody ever reports a "
              "false negative.\n");
  return 0;
}
