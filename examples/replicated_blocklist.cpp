// Replicated blocklist — the distributed-systems deployment pattern for an
// AMQ sketch: an origin service maintains the authoritative set (e.g.
// revoked tokens), periodically checkpoints its filter with SaveState, and
// ships the blob to edge replicas, which restore it with LoadState and
// answer membership locally. The blob is the filter's bit-packed table plus
// a few header bytes — orders of magnitude smaller than the key set.
//
//   $ ./build/examples/replicated_blocklist
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/sizing.hpp"
#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

int main() {
  // Origin: plan capacity for 200k revoked tokens at 0.1% FPR (Eq. 11/12).
  vcf::SizingRequest req;
  req.expected_items = 200000;
  req.target_fpr = 1e-3;
  const vcf::SizingResult plan = vcf::PlanCapacity(req);
  std::printf("capacity plan: %zu slots, f = %u bits, predicted FPR %.4f%%, "
              "%.1f bits/item\n",
              plan.params.slot_count(), plan.params.fingerprint_bits,
              plan.predicted_fpr * 100.0, plan.bits_per_item);

  vcf::VerticalCuckooFilter origin(plan.params);
  const auto revoked = vcf::UniformKeys(req.expected_items, /*stream_id=*/21);
  for (const auto token : revoked) origin.Insert(token);
  std::printf("origin filled: %zu tokens, load %.2f%%\n", origin.ItemCount(),
              origin.LoadFactor() * 100.0);

  // Checkpoint — in production this buffer goes to object storage or a
  // gossip channel; here a stringstream stands in for the wire.
  std::stringstream wire;
  if (!origin.SaveState(wire)) {
    std::fprintf(stderr, "checkpoint failed\n");
    return 1;
  }
  std::printf("checkpoint size: %zu bytes (vs %zu bytes of raw 8-byte keys)\n",
              wire.str().size(), revoked.size() * sizeof(std::uint64_t));

  // Edge replica: constructed with the same parameters, restored from the
  // blob, then serving queries with zero false negatives.
  vcf::VerticalCuckooFilter replica(plan.params);
  if (!replica.LoadState(wire)) {
    std::fprintf(stderr, "replica restore failed\n");
    return 1;
  }
  std::size_t misses = 0;
  for (const auto token : revoked) misses += replica.Contains(token) ? 0 : 1;
  const auto clean = vcf::UniformKeys(1000000, /*stream_id=*/22);
  std::size_t false_blocks = 0;
  for (const auto token : clean) false_blocks += replica.Contains(token) ? 1 : 0;
  std::printf("replica: %zu/%zu revoked tokens recognised, false-block rate "
              "%.4f%% (target %.4f%%)\n",
              revoked.size() - misses, revoked.size(),
              100.0 * static_cast<double>(false_blocks) /
                  static_cast<double>(clean.size()),
              req.target_fpr * 100.0);

  // Live updates continue on the replica between checkpoints.
  replica.Insert(vcf::Filter::KeyToU64("token:freshly-revoked"));
  std::printf("replica accepts incremental updates: %s\n",
              replica.ContainsKey("token:freshly-revoked") ? "yes" : "no");
  return misses == 0 ? 0 : 1;
}
