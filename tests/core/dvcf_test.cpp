#include "core/dvcf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 14;
  return p;
}

TEST(DvcfTest, ConstructionValidation) {
  CuckooParams p = SmallParams();
  EXPECT_THROW(DifferentiatedVcf(p, std::uint64_t{1} << 14),
               std::invalid_argument);  // delta_t > 2^(f-1)
  EXPECT_NO_THROW(DifferentiatedVcf(p, std::uint64_t{1} << 13));
  EXPECT_THROW(DifferentiatedVcf::ForEighths(p, 9), std::invalid_argument);
}

TEST(DvcfTest, IntervalJudgment) {
  CuckooParams p = SmallParams();
  // delta_t = 2^10: In1 = [2^13 - 2^10, 2^13 + 2^10).
  DifferentiatedVcf f(p, 1 << 10);
  EXPECT_TRUE(f.FourWay((1 << 13)));
  EXPECT_TRUE(f.FourWay((1 << 13) - (1 << 10)));
  EXPECT_FALSE(f.FourWay((1 << 13) + (1 << 10)));  // half-open upper end
  EXPECT_FALSE(f.FourWay(1));
  EXPECT_FALSE(f.FourWay((1 << 14) - 1));
}

TEST(DvcfTest, ForEighthsMatchesEq9) {
  CuckooParams p = SmallParams();
  for (unsigned j = 0; j <= 8; ++j) {
    const DifferentiatedVcf f = DifferentiatedVcf::ForEighths(p, j);
    EXPECT_NEAR(f.TheoreticalR(), j / 8.0, 1e-12) << "j=" << j;
  }
  EXPECT_EQ(DifferentiatedVcf::ForEighths(p, 3).Name(), "DVCF_3");
}

TEST(DvcfTest, DeltaZeroBehavesLikeCF) {
  CuckooParams p = SmallParams();
  DifferentiatedVcf f(p, 0);
  EXPECT_EQ(f.TheoreticalR(), 0.0);
  const auto keys = UniformKeys(500, 11);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(DvcfTest, NoFalseNegativesAtHighLoad) {
  DifferentiatedVcf f = DifferentiatedVcf::ForEighths(SmallParams(), 6);
  const auto keys = UniformKeys(f.SlotCount() * 95 / 100, 12);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / keys.size(), 0.99);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(DvcfTest, EraseIsExactPerInterval) {
  DifferentiatedVcf f = DifferentiatedVcf::ForEighths(SmallParams(), 4);
  const auto keys = UniformKeys(800, 13);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_FALSE(f.Erase(keys[0]));
}

TEST(DvcfTest, FailedInsertRollsBack) {
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  p.max_kicks = 32;
  DifferentiatedVcf f = DifferentiatedVcf::ForEighths(p, 8);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 14)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(DvcfTest, LargerRGivesHigherLoad) {
  // Fig. 5(b): DVCF load factor rises with j.
  CuckooParams p = SmallParams();
  DifferentiatedVcf low = DifferentiatedVcf::ForEighths(p, 1);
  DifferentiatedVcf high = DifferentiatedVcf::ForEighths(p, 8);
  std::size_t low_stored = 0;
  std::size_t high_stored = 0;
  for (const auto k : UniformKeys(p.slot_count(), 15)) {
    low_stored += low.Insert(k) ? 1 : 0;
    high_stored += high.Insert(k) ? 1 : 0;
  }
  EXPECT_GT(high_stored, low_stored);
}

TEST(DvcfTest, FourWayFractionMatchesTheoryEmpirically) {
  // The fraction of inserted keys whose fingerprint lands in In1 should
  // track p = j/8.
  CuckooParams p = SmallParams();
  const DifferentiatedVcf f = DifferentiatedVcf::ForEighths(p, 3);
  // Sample fingerprints through the filter's own interval predicate using
  // uniformly distributed 14-bit values.
  std::size_t in1 = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t fp = (UniformKeyAt(77, t) >> 20) & ((1 << 14) - 1);
    in1 += f.FourWay(fp) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(in1) / trials, 3.0 / 8.0, 0.01);
}

class DvcfPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DvcfPropertyTest, InvariantsPerJ) {
  const unsigned j = GetParam();
  CuckooParams p;
  p.bucket_count = 1 << 8;
  DifferentiatedVcf f = DifferentiatedVcf::ForEighths(p, j);
  const auto keys = UniformKeys(p.slot_count() * 9 / 10, 600 + j);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (f.Insert(k)) stored.push_back(k);
  }
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
  for (const auto k : stored) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllJ, DvcfPropertyTest, ::testing::Range(0u, 9u));

}  // namespace
}  // namespace vcf
