#include "core/dynamic_vcf.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SegmentParams() {
  CuckooParams p;
  p.bucket_count = 1 << 8;  // 1024-slot segments
  p.fingerprint_bits = 14;
  return p;
}

TEST(DynamicVcfTest, StartsWithOneSegment) {
  DynamicVcf f(SegmentParams());
  EXPECT_EQ(f.SegmentCount(), 1u);
  EXPECT_EQ(f.SlotCount(), SegmentParams().slot_count());
  EXPECT_EQ(f.Name(), "DynamicVCF");
}

TEST(DynamicVcfTest, GrowsBeyondSingleSegmentCapacity) {
  DynamicVcf f(SegmentParams());
  const std::size_t n = SegmentParams().slot_count() * 3;  // 3x one segment
  const auto keys = UniformKeys(n, 81);
  for (const auto k : keys) {
    ASSERT_TRUE(f.Insert(k)) << "dynamic filter must never reject (unbounded)";
  }
  EXPECT_GE(f.SegmentCount(), 3u);
  EXPECT_EQ(f.ItemCount(), n);
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(DynamicVcfTest, MaxSegmentsBoundsGrowth) {
  DynamicVcf f(SegmentParams(), /*mask_ones=*/0, /*max_segments=*/2);
  std::size_t stored = 0;
  for (const auto k : UniformKeys(SegmentParams().slot_count() * 3, 82)) {
    stored += f.Insert(k) ? 1 : 0;
  }
  EXPECT_EQ(f.SegmentCount(), 2u);
  EXPECT_LE(stored, f.SlotCount());
  EXPECT_GT(stored, f.SlotCount() * 95 / 100);
}

TEST(DynamicVcfTest, EraseFindsKeysInAnySegment) {
  DynamicVcf f(SegmentParams());
  const auto keys = UniformKeys(SegmentParams().slot_count() * 2, 83);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Erase(k)) << "key lost across segments";
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(DynamicVcfTest, ChurnCompactsEmptySegments) {
  DynamicVcf f(SegmentParams());
  const auto keys = UniformKeys(SegmentParams().slot_count() * 3, 84);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  const std::size_t grown = f.SegmentCount();
  ASSERT_GE(grown, 3u);
  // Delete everything that landed beyond segment 0's capacity worth of keys;
  // trailing segments empty out and are dropped.
  for (const auto k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.SegmentCount(), 1u);
  EXPECT_LT(f.SlotCount(), grown * SegmentParams().slot_count() + 1);
}

TEST(DynamicVcfTest, LoadFactorAggregatesSegments) {
  DynamicVcf f(SegmentParams());
  const std::size_t n = SegmentParams().slot_count() * 3 / 2;
  for (const auto k : UniformKeys(n, 85)) ASSERT_TRUE(f.Insert(k));
  EXPECT_NEAR(f.LoadFactor(),
              static_cast<double>(n) / static_cast<double>(f.SlotCount()), 1e-9);
  EXPECT_GT(f.MemoryBytes(), 0u);
}

TEST(DynamicVcfTest, ClearResetsToOneSegment) {
  DynamicVcf f(SegmentParams());
  for (const auto k : UniformKeys(SegmentParams().slot_count() * 2, 86)) {
    f.Insert(k);
  }
  f.Clear();
  EXPECT_EQ(f.SegmentCount(), 1u);
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(DynamicVcfTest, IvcfMaskVariantWorks) {
  DynamicVcf f(SegmentParams(), /*mask_ones=*/2);
  const auto keys = UniformKeys(1500, 87);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(DynamicVcfTest, NoFalseNegativesUnderInterleavedChurn) {
  DynamicVcf f(SegmentParams());
  std::vector<std::uint64_t> live;
  std::size_t next = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t k = UniformKeyAt(88, next++);
      ASSERT_TRUE(f.Insert(k));
      live.push_back(k);
    }
    for (int i = 0; i < 150 && !live.empty(); ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    for (const auto k : live) ASSERT_TRUE(f.Contains(k));
  }
}

}  // namespace
}  // namespace vcf
