// Exact-state rollback tests: a failed insert must leave the fingerprint
// table bit-identical to its pre-insert state (the atomic-insert guarantee
// documented in DESIGN.md), not merely "no false negatives".
#include <gtest/gtest.h>

#include <vector>

#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(RollbackTest, FailedInsertLeavesTableBitIdentical) {
  CuckooParams p;
  p.bucket_count = 1 << 4;
  p.fingerprint_bits = 14;
  p.max_kicks = 24;
  VerticalCuckooFilter filter(p);

  std::size_t failures_observed = 0;
  for (const auto key : UniformKeys(filter.SlotCount() * 6, 501)) {
    const PackedTable before = filter.table();
    const std::size_t items_before = filter.ItemCount();
    if (!filter.Insert(key)) {
      ++failures_observed;
      EXPECT_TRUE(filter.table() == before)
          << "rollback left the table in a different state";
      EXPECT_EQ(filter.ItemCount(), items_before);
    }
    if (failures_observed >= 10) break;
  }
  EXPECT_GE(failures_observed, 10u) << "test never exercised the failure path";
}

TEST(RollbackTest, SuccessfulInsertChangesExactlyOneSlotNetOfSwaps) {
  // After a successful insert the occupied-slot count rises by exactly one,
  // however long the eviction chain was.
  CuckooParams p;
  p.bucket_count = 1 << 5;
  p.fingerprint_bits = 12;
  VerticalCuckooFilter filter(p);
  for (const auto key : UniformKeys(filter.SlotCount() - 4, 502)) {
    const std::size_t occupied_before = filter.table().OccupiedSlots();
    if (filter.Insert(key)) {
      ASSERT_EQ(filter.table().OccupiedSlots(), occupied_before + 1);
    }
  }
  EXPECT_GT(filter.counters().evictions, 0u) << "no eviction chain exercised";
}

TEST(RollbackTest, FailureThenRetryAfterEraseSucceeds) {
  // The filter stays fully usable after failures: freeing a slot lets the
  // previously rejected key in.
  CuckooParams p;
  p.bucket_count = 1 << 3;
  p.fingerprint_bits = 14;
  p.max_kicks = 16;
  VerticalCuckooFilter filter(p);
  std::vector<std::uint64_t> stored;
  std::uint64_t rejected = 0;
  std::size_t i = 0;
  while (rejected == 0) {
    const std::uint64_t key = UniformKeyAt(503, i++);
    if (filter.Insert(key)) {
      stored.push_back(key);
    } else {
      rejected = key;
    }
  }
  ASSERT_FALSE(stored.empty());
  ASSERT_TRUE(filter.Erase(stored.front()));
  // The random eviction walk may need a few attempts to reach the freed
  // slot; each failed attempt rolls back cleanly, so retrying is safe.
  bool inserted = false;
  for (int attempt = 0; attempt < 50 && !inserted; ++attempt) {
    inserted = filter.Insert(rejected);
  }
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(filter.Contains(rejected));
}

}  // namespace
}  // namespace vcf
