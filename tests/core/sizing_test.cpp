#include "core/sizing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/vcf.hpp"
#include "harness/experiment.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(SizingTest, ValidatesRequests) {
  SizingRequest r;
  r.expected_items = 0;
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
  r = SizingRequest{};
  r.target_fpr = 0.0;
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
  r = SizingRequest{};
  r.target_fpr = 1.5;
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
  r = SizingRequest{};
  r.r = -0.1;
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
  r = SizingRequest{};
  r.headroom = 1.0;
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
  r = SizingRequest{};
  r.target_fpr = 1e-12;  // needs > 25 fingerprint bits
  EXPECT_THROW(PlanCapacity(r), std::invalid_argument);
}

TEST(SizingTest, CapacityCoversExpectedItems) {
  SizingRequest req;
  req.expected_items = 100000;
  req.target_fpr = 1e-3;
  const SizingResult plan = PlanCapacity(req);
  EXPECT_GE(plan.params.slot_count(), req.expected_items);
  EXPECT_LE(plan.design_load, 0.97);
  EXPECT_LE(plan.predicted_fpr, req.target_fpr * 1.05);
  EXPECT_GT(plan.bits_per_item, 0.0);
}

TEST(SizingTest, TighterFprNeedsWiderFingerprints) {
  SizingRequest loose;
  loose.target_fpr = 1e-2;
  SizingRequest tight = loose;
  tight.target_fpr = 1e-5;
  EXPECT_LT(PlanCapacity(loose).params.fingerprint_bits,
            PlanCapacity(tight).params.fingerprint_bits);
}

TEST(SizingTest, HeadroomAddsSlots) {
  SizingRequest no_headroom;
  no_headroom.expected_items = 1 << 19;  // near a power-of-two boundary
  no_headroom.headroom = 0.0;
  SizingRequest lots = no_headroom;
  lots.headroom = 0.5;
  EXPECT_LT(PlanCapacity(no_headroom).params.slot_count(),
            PlanCapacity(lots).params.slot_count());
}

TEST(SizingTest, CeilBucketCountRoundsUpToLegalPowersOfTwo) {
  EXPECT_EQ(CeilBucketCount(0), 1u);
  EXPECT_EQ(CeilBucketCount(1), 1u);
  EXPECT_EQ(CeilBucketCount(2), 2u);
  EXPECT_EQ(CeilBucketCount(3), 4u);
  EXPECT_EQ(CeilBucketCount(1025), 2048u);
  EXPECT_EQ(CeilBucketCount(std::size_t{1} << 20), std::size_t{1} << 20);
  EXPECT_EQ(CeilBucketCount(kMaxBucketCount), kMaxBucketCount);
  EXPECT_THROW(CeilBucketCount(kMaxBucketCount + 1), std::invalid_argument);
}

TEST(SizingTest, NextCapacityDoublesBucketsAndNothingElse) {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 13;
  p.seed = 0xFEEDULL;
  const CuckooParams next = NextCapacity(p);
  EXPECT_EQ(next.bucket_count, p.bucket_count * 2);
  EXPECT_EQ(next.fingerprint_bits, p.fingerprint_bits);
  EXPECT_EQ(next.slots_per_bucket, p.slots_per_bucket);
  EXPECT_EQ(next.seed, p.seed);
  EXPECT_EQ(next.slot_count(), 2 * p.slot_count());

  CuckooParams at_cap;
  at_cap.bucket_count = kMaxBucketCount;
  EXPECT_THROW(NextCapacity(at_cap), std::invalid_argument);
}

TEST(SizingTest, PlannedFilterMeetsItsContract) {
  // End-to-end: plan, build, fill to the expected item count, measure FPR.
  SizingRequest req;
  req.expected_items = 60000;
  req.target_fpr = 2e-3;
  const SizingResult plan = PlanCapacity(req);

  VerticalCuckooFilter filter(plan.params, /*mask_ones=*/6);
  const auto keys = UniformKeys(req.expected_items, 601);
  std::size_t stored = 0;
  for (const auto k : keys) stored += filter.Insert(k) ? 1 : 0;
  EXPECT_EQ(stored, keys.size()) << "planned capacity rejected expected load";

  const auto aliens = UniformKeys(300000, 602);
  const double fpr = MeasureFpr(filter, aliens);
  EXPECT_LT(fpr, req.target_fpr * 1.3)
      << "measured FPR blew the planned budget";
}

}  // namespace
}  // namespace vcf
