#include "core/vcf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 14;
  return p;
}

TEST(VcfTest, ConstructionValidation) {
  CuckooParams p = SmallParams();
  p.bucket_count = 100;  // not a power of two
  EXPECT_THROW(VerticalCuckooFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.fingerprint_bits = 0;
  EXPECT_THROW(VerticalCuckooFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.fingerprint_bits = 26;
  EXPECT_THROW(VerticalCuckooFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.slots_per_bucket = 0;
  EXPECT_THROW(VerticalCuckooFilter{p}, std::invalid_argument);
}

TEST(VcfTest, InsertThenContains) {
  VerticalCuckooFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(42));
  EXPECT_TRUE(f.Insert(42));
  EXPECT_TRUE(f.Contains(42));
  EXPECT_EQ(f.ItemCount(), 1u);
}

TEST(VcfTest, NoFalseNegativesAtHighLoad) {
  VerticalCuckooFilter f(SmallParams());
  const auto keys = UniformKeys(f.SlotCount() * 95 / 100, 1);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / keys.size(), 0.99);
  for (const auto k : stored) {
    ASSERT_TRUE(f.Contains(k)) << "false negative for " << k;
  }
}

TEST(VcfTest, EraseRemovesExactlyOneCopy) {
  VerticalCuckooFilter f(SmallParams());
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));  // duplicates are legal
  EXPECT_EQ(f.ItemCount(), 2u);
  EXPECT_TRUE(f.Erase(7));
  EXPECT_TRUE(f.Contains(7)) << "second copy must survive (mis-deletion safety)";
  EXPECT_TRUE(f.Erase(7));
  EXPECT_FALSE(f.Contains(7));
  EXPECT_FALSE(f.Erase(7));
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(VcfTest, EraseOfAbsentKeyFailsCleanly) {
  VerticalCuckooFilter f(SmallParams());
  EXPECT_FALSE(f.Erase(31337));
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(VcfTest, InsertEraseChurnKeepsAnswersExact) {
  VerticalCuckooFilter f(SmallParams());
  const auto keys = UniformKeys(1000, 2);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  // Erase every other key; erased keys may still false-positive, but the
  // kept keys must all answer true.
  for (std::size_t i = 0; i < keys.size(); i += 2) ASSERT_TRUE(f.Erase(keys[i]));
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_TRUE(f.Contains(keys[i]));
  }
  EXPECT_EQ(f.ItemCount(), keys.size() / 2);
}

TEST(VcfTest, FailedInsertRollsBackFilterState) {
  // Saturate a tiny filter, snapshot answers, force a failure, and verify
  // no previously-positive answer flipped (the rollback guarantee).
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  p.max_kicks = 32;
  VerticalCuckooFilter f(p);
  std::vector<std::uint64_t> stored;
  const auto keys = UniformKeys(f.SlotCount() * 4, 3);
  std::size_t failures = 0;
  for (const auto k : keys) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) {
        ASSERT_TRUE(f.Contains(s)) << "rollback lost a stored key";
      }
    }
    if (failures > 5) break;
  }
  EXPECT_GT(failures, 0u) << "test needs at least one failed insert";
}

TEST(VcfTest, InsertDirectNeverEvicts) {
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  VerticalCuckooFilter f(p);
  std::size_t stored = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 2, 7)) {
    stored += f.InsertDirect(k) ? 1 : 0;
  }
  EXPECT_EQ(f.counters().evictions, 0u);
  EXPECT_EQ(f.ItemCount(), stored);
  EXPECT_GT(stored, f.SlotCount() / 2) << "direct placement badly underfilled";
  EXPECT_LT(stored, f.SlotCount() * 2) << "cannot store more than capacity";
  // Direct-inserted keys are findable and erasable like any others.
  std::size_t present = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 2, 7)) {
    present += f.Contains(k) ? 1 : 0;
  }
  EXPECT_GE(present, stored);
}

TEST(VcfTest, ClearEmptiesFilter) {
  VerticalCuckooFilter f(SmallParams());
  const auto keys = UniformKeys(100, 4);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_EQ(f.LoadFactor(), 0.0);
  for (const auto k : keys) EXPECT_FALSE(f.Contains(k));
}

TEST(VcfTest, CountersTrackOperations) {
  VerticalCuckooFilter f(SmallParams());
  f.Insert(1);
  f.Insert(2);
  f.Contains(1);
  f.Contains(99);
  f.Erase(1);
  const OpCounters& c = f.counters();
  EXPECT_EQ(c.inserts, 2u);
  EXPECT_EQ(c.lookups, 2u);
  EXPECT_EQ(c.deletions, 1u);
  EXPECT_GE(c.hash_computations, 2u * 2u);
  EXPECT_GE(c.bucket_probes, 4u * 5u);
}

TEST(VcfTest, NamesAndVariants) {
  EXPECT_EQ(VerticalCuckooFilter(SmallParams()).Name(), "VCF");
  EXPECT_EQ(VerticalCuckooFilter(SmallParams(), 3).Name(), "IVCF_3");
  EXPECT_TRUE(VerticalCuckooFilter(SmallParams()).SupportsDeletion());
}

TEST(VcfTest, TheoreticalRMatchesMaskShape) {
  // index_bits = 10 here.
  VerticalCuckooFilter ivcf1(SmallParams(), 1);
  VerticalCuckooFilter ivcf5(SmallParams(), 5);
  EXPECT_LT(ivcf1.TheoreticalR(), ivcf5.TheoreticalR());
  EXPECT_NEAR(ivcf1.TheoreticalR(), 1.0 - (2.0 + 512.0 - 1.0) / 1024.0, 1e-12);
}

TEST(VcfTest, HigherRAchievesHigherLoadFactor) {
  // The central claim of the paper (Fig. 5(c)): load factor grows with r.
  CuckooParams p = SmallParams();
  VerticalCuckooFilter low_r(p, 1);
  VerticalCuckooFilter high_r(p, 5);
  const auto keys = UniformKeys(p.slot_count(), 5);
  std::size_t low_stored = 0;
  std::size_t high_stored = 0;
  for (const auto k : keys) {
    low_stored += low_r.Insert(k) ? 1 : 0;
    high_stored += high_r.Insert(k) ? 1 : 0;
  }
  EXPECT_GT(high_stored, low_stored);
  EXPECT_GT(static_cast<double>(high_stored) / p.slot_count(), 0.985);
}

TEST(VcfTest, MemoryBytesMatchesGeometry) {
  CuckooParams p = SmallParams();
  VerticalCuckooFilter f(p);
  // f-bit slots, bit-packed (+8 bytes slack documented in PackedTable).
  const std::size_t expect_bits = p.slot_count() * p.fingerprint_bits;
  EXPECT_EQ(f.MemoryBytes(), (expect_bits + 7) / 8 + 8);
}

// Property sweep: the no-false-negative invariant must hold for every
// fingerprint width and mask shape combination.
class VcfPropertyTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(VcfPropertyTest, NoFalseNegativesAcrossGeometries) {
  const auto [fp_bits, mask_ones] = GetParam();
  CuckooParams p;
  p.bucket_count = 1 << 8;
  p.fingerprint_bits = fp_bits;
  VerticalCuckooFilter f(p, mask_ones);
  const auto keys = UniformKeys(p.slot_count() * 9 / 10, 1000 + fp_bits);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (f.Insert(k)) stored.push_back(k);
  }
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
  // And deletion restores non-membership modulo false positives: erase all,
  // count must be zero.
  for (const auto k : stored) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, VcfPropertyTest,
    ::testing::Combine(::testing::Values(7u, 10u, 14u, 18u),
                       ::testing::Values(1u, 2u, 4u, 7u)));

}  // namespace
}  // namespace vcf
