// ResilientFilter: victim stash, degraded mode, checkpoint retry, and the
// acceptance property the robustness work targets — with the eviction
// failpoint armed at probability 0.1 and a 95%-load insert workload, every
// reported-successful insert stays Contains-true.
#include "core/resilient_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "common/failpoint.hpp"
#include "common/random.hpp"
#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  return p;
}

std::unique_ptr<ResilientFilter> MakeResilientVcf(ResilientOptions options = {},
                                                  CuckooParams params =
                                                      SmallParams()) {
  options.backoff_base = std::chrono::microseconds{0};  // instant retries
  return std::make_unique<ResilientFilter>(
      std::make_unique<VerticalCuckooFilter>(params), options);
}

class ResilientFilterTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  Failpoint& Evict() {
    return FailpointRegistry::Instance().Get(failpoints::kEvictionExhausted);
  }
};

TEST_F(ResilientFilterTest, RejectsNullInner) {
  EXPECT_THROW(ResilientFilter(nullptr), std::invalid_argument);
}

TEST_F(ResilientFilterTest, BehavesLikeInnerFilterWhenHealthy) {
  auto filter = MakeResilientVcf();
  const auto keys = UniformKeys(200, 42);
  for (const auto k : keys) ASSERT_TRUE(filter->Insert(k));
  for (const auto k : keys) EXPECT_TRUE(filter->Contains(k));
  EXPECT_EQ(filter->StashSize(), 0u);
  EXPECT_EQ(filter->ItemCount(), keys.size());
  EXPECT_EQ(filter->Name(), "Resilient(VCF)");
  EXPECT_TRUE(filter->SupportsDeletion());
  EXPECT_EQ(filter->counters().stash_inserts.Value(), 0u);
}

TEST_F(ResilientFilterTest, FailedInsertLandsInStashAndStaysQueryable) {
  auto filter = MakeResilientVcf();
  Evict().ArmAlways();  // every eviction-phase insert now fails

  // Fill until direct placement starts failing; those keys must be absorbed.
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(filter->SlotCount(), 7)) {
    if (filter->Insert(k)) accepted.push_back(k);
  }
  EXPECT_GT(filter->StashSize(), 0u);
  EXPECT_GT(filter->counters().stash_inserts.Value(), 0u);
  for (const auto k : accepted) {
    ASSERT_TRUE(filter->Contains(k)) << "accepted key lost";
  }
  EXPECT_GT(filter->counters().stash_hits.Value(), 0u);
}

TEST_F(ResilientFilterTest, InsertFailsOnlyWhenStashIsFull) {
  ResilientOptions options;
  options.stash_capacity = 4;
  auto filter = MakeResilientVcf(options);
  Evict().ArmAlways();

  std::size_t failures = 0;
  for (const auto k : UniformKeys(filter->SlotCount() * 2, 11)) {
    if (!filter->Insert(k)) ++failures;
  }
  EXPECT_EQ(filter->StashSize(), 4u);
  EXPECT_GT(failures, 0u);
  EXPECT_EQ(filter->counters().insert_failures.Value(), failures);
}

TEST_F(ResilientFilterTest, ZeroStashCapacityDisablesTheStash) {
  ResilientOptions options;
  options.stash_capacity = 0;
  auto filter = MakeResilientVcf(options);
  Evict().ArmAlways();
  bool saw_failure = false;
  for (const auto k : UniformKeys(filter->SlotCount() * 2, 13)) {
    saw_failure |= !filter->Insert(k);
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_EQ(filter->StashSize(), 0u);
}

TEST_F(ResilientFilterTest, EraseRemovesStashedKeys) {
  ResilientOptions options;
  options.stash_capacity = 8;
  auto filter = MakeResilientVcf(options);
  Evict().ArmAlways();
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(filter->SlotCount() * 2, 17)) {
    if (filter->Insert(k)) accepted.push_back(k);
    if (filter->StashSize() == options.stash_capacity) break;
  }
  ASSERT_EQ(filter->StashSize(), options.stash_capacity);

  // Keys that ended up ONLY in the stash: erasing them must succeed and
  // shrink the stash.
  const std::size_t before = filter->StashSize();
  std::size_t erased_from_stash = 0;
  for (const auto k : accepted) {
    if (!filter->inner().Contains(k) && filter->Erase(k)) ++erased_from_stash;
  }
  EXPECT_GT(erased_from_stash, 0u);
  EXPECT_LT(filter->StashSize(), before);
}

TEST_F(ResilientFilterTest, StashDrainsBackIntoTableOnErase) {
  auto filter = MakeResilientVcf();
  // Fill the table to genuine saturation so real failures stash keys.
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(filter->SlotCount() + 64, 19)) {
    if (filter->Insert(k)) accepted.push_back(k);
  }
  // Force a few stashed keys even if the organic fill produced none.
  Evict().ArmAlways();
  for (const auto k : UniformKeys(64, 23)) {
    if (filter->Insert(k)) accepted.push_back(k);
  }
  Evict().Disarm();
  ASSERT_GT(filter->StashSize(), 0u);

  // Deleting table keys opens slots; the drain should move stashed keys in.
  const std::size_t stashed_before = filter->StashSize();
  std::size_t erased = 0;
  for (const auto k : accepted) {
    if (filter->inner().Contains(k)) {
      ASSERT_TRUE(filter->Erase(k));
      if (++erased == 64) break;
    }
  }
  EXPECT_LT(filter->StashSize(), stashed_before);
  EXPECT_GT(filter->counters().stash_drains.Value(), 0u);
}

TEST_F(ResilientFilterTest, DegradedModeEngagesAboveWatermark) {
  ResilientOptions options;
  options.degrade_watermark = 0.5;
  auto filter = MakeResilientVcf(options);
  ASSERT_FALSE(filter->InDegradedMode());
  for (const auto k : UniformKeys(filter->SlotCount() * 3 / 4, 29)) {
    filter->Insert(k);
  }
  EXPECT_TRUE(filter->InDegradedMode());
  const auto degraded_before = filter->counters().degraded_inserts.Value();
  filter->Insert(0xDE6BADED);
  EXPECT_GT(filter->counters().degraded_inserts.Value(), degraded_before);
}

TEST_F(ResilientFilterTest, ContainsBatchConsultsTheStash) {
  auto filter = MakeResilientVcf();
  Evict().ArmAlways();
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(filter->SlotCount() * 2, 31)) {
    if (filter->Insert(k)) accepted.push_back(k);
    if (filter->StashSize() >= 8) break;
  }
  ASSERT_GE(filter->StashSize(), 8u);
  std::vector<bool> expected;
  std::vector<std::uint64_t> queries;
  for (const auto k : accepted) {
    queries.push_back(k);
    expected.push_back(true);
  }
  queries.push_back(0xAB5E17ULL);
  expected.push_back(filter->Contains(0xAB5E17ULL));  // FP-rate honest
  const auto results = std::make_unique<bool[]>(queries.size());
  filter->ContainsBatch(queries, results.get());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(results[i], expected[i]) << "query " << i;
  }
}

// Picks a probability seed whose deterministic fire sequence (p = 0.5:
// evaluation n fires iff the top bit of Mix64(seed ^ n) is clear) fails
// evaluation 1 and passes evaluations 2..8 — i.e. exactly one transient
// failure followed by clean retries.
std::uint64_t SeedFailingOnlyFirstEvaluation() {
  const auto fires = [](std::uint64_t seed, std::uint64_t n) {
    return (Mix64(seed ^ n) >> 63) == 0;
  };
  for (std::uint64_t seed = 0;; ++seed) {
    bool want = fires(seed, 1);
    for (std::uint64_t n = 2; n <= 8 && want; ++n) want = !fires(seed, n);
    if (want) return seed;
  }
}

TEST_F(ResilientFilterTest, SaveStateExhaustsRetryBudgetOnPersistentFailure) {
  auto filter = MakeResilientVcf();
  for (const auto k : UniformKeys(100, 37)) filter->Insert(k);
  auto& write_fp = FailpointRegistry::Instance().Get(failpoints::kStateWrite);
  write_fp.ArmAlways();
  std::ostringstream out;
  EXPECT_FALSE(filter->SaveState(out));
  EXPECT_EQ(filter->counters().checkpoint_retries.Value(),
            filter->options().checkpoint_retries);
  write_fp.Disarm();
  // A persistent failure writes NOTHING: no torn blob for a loader to trip on.
  EXPECT_TRUE(out.str().empty());
}

TEST_F(ResilientFilterTest, SaveStateRetriesThroughOneTransientFailure) {
  auto filter = MakeResilientVcf();
  for (const auto k : UniformKeys(100, 37)) filter->Insert(k);
  auto& write_fp = FailpointRegistry::Instance().Get(failpoints::kStateWrite);
  write_fp.ResetCounts();
  write_fp.ArmProbability(0.5, SeedFailingOnlyFirstEvaluation());
  std::ostringstream out;
  EXPECT_TRUE(filter->SaveState(out));
  EXPECT_EQ(filter->counters().checkpoint_retries.Value(), 1u);
  write_fp.Disarm();

  // The retried blob is a valid checkpoint.
  auto target = MakeResilientVcf();
  std::istringstream in(out.str());
  EXPECT_TRUE(target->LoadState(in));
  EXPECT_EQ(target->ItemCount(), filter->ItemCount());
}

TEST_F(ResilientFilterTest, CheckpointRoundTripsIncludingStash) {
  auto source = MakeResilientVcf();
  Evict().ArmAlways();
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(source->SlotCount(), 41)) {
    if (source->Insert(k)) accepted.push_back(k);
  }
  Evict().Disarm();
  ASSERT_GT(source->StashSize(), 0u);

  std::stringstream blob;
  ASSERT_TRUE(source->SaveState(blob));

  auto target = MakeResilientVcf();
  ASSERT_TRUE(target->LoadState(blob));
  EXPECT_EQ(target->StashSize(), source->StashSize());
  EXPECT_EQ(target->ItemCount(), source->ItemCount());
  for (const auto k : accepted) EXPECT_TRUE(target->Contains(k));
}

TEST_F(ResilientFilterTest, LoadStateRetriesTransientReadFailures) {
  auto source = MakeResilientVcf();
  for (const auto k : UniformKeys(100, 43)) source->Insert(k);
  std::stringstream blob;
  ASSERT_TRUE(source->SaveState(blob));

  auto target = MakeResilientVcf();
  auto& read_fp = FailpointRegistry::Instance().Get(failpoints::kStateRead);
  read_fp.ResetCounts();
  // The read seam evaluates once per LoadState attempt; fail only the first.
  read_fp.ArmProbability(0.5, SeedFailingOnlyFirstEvaluation());
  ASSERT_TRUE(target->LoadState(blob));
  EXPECT_EQ(target->ItemCount(), source->ItemCount());
  EXPECT_EQ(target->counters().checkpoint_retries.Value(), 1u);
  read_fp.Disarm();
}

TEST_F(ResilientFilterTest, LoadStateIsAllOrNothingOnCorruptBlob) {
  auto source = MakeResilientVcf();
  Evict().ArmAlways();
  for (const auto k : UniformKeys(source->SlotCount(), 47)) source->Insert(k);
  Evict().Disarm();
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  std::string blob = blob_stream.str();
  blob[blob.size() / 2] ^= 0x40;  // corrupt the inner payload

  auto target = MakeResilientVcf();
  ASSERT_TRUE(target->Insert(0xCA11AB1E));
  const std::size_t items_before = target->ItemCount();
  std::istringstream in(blob);
  EXPECT_FALSE(target->LoadState(in));
  EXPECT_EQ(target->ItemCount(), items_before);
  EXPECT_TRUE(target->Contains(0xCA11AB1E));
}

// The PR's acceptance criterion: probability-0.1 eviction failures during a
// 95%-load fill, zero reported-successful keys lost.
TEST_F(ResilientFilterTest, NoAcceptedKeyIsLostUnderInjectedEvictionFailures) {
  CuckooParams params;
  params.bucket_count = 1 << 10;
  ResilientOptions options;
  options.stash_capacity = 256;
  auto filter = MakeResilientVcf(options, params);
  Evict().ResetCounts();
  Evict().ArmProbability(0.1, /*seed=*/1337);

  const std::size_t target_items = filter->SlotCount() * 95 / 100;
  std::vector<std::uint64_t> accepted;
  for (const auto k : UniformKeys(target_items, 53)) {
    if (filter->Insert(k)) accepted.push_back(k);
  }
  ASSERT_GT(Evict().triggers(), 0u) << "failpoint never exercised";
  EXPECT_GT(filter->counters().stash_inserts.Value(), 0u);

  std::size_t lost = 0;
  for (const auto k : accepted) lost += filter->Contains(k) ? 0 : 1;
  EXPECT_EQ(lost, 0u) << "of " << accepted.size() << " accepted keys";
}

}  // namespace
}  // namespace vcf
