// ShardedFilter: routing, aggregation, checkpointing, and a multi-writer
// stress test in the style of concurrent_filter_test.cpp — no accepted key
// may ever be lost, and the aggregate bookkeeping must stay exact.
#include "core/sharded_filter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::unique_ptr<ShardedFilter> MakeShardedVcf(unsigned shards,
                                              unsigned bucket_log2 = 9) {
  std::vector<std::unique_ptr<Filter>> inner;
  for (unsigned i = 0; i < shards; ++i) {
    CuckooParams p;
    p.bucket_count = std::size_t{1} << bucket_log2;
    p.seed = 0x5EEDF00DULL + i;  // distinct per-shard seeds
    inner.push_back(std::make_unique<VerticalCuckooFilter>(p));
  }
  return std::make_unique<ShardedFilter>(std::move(inner));
}

TEST(ShardedFilterTest, RejectsEmptyAndNullShards) {
  EXPECT_THROW(ShardedFilter({}), std::invalid_argument);
  std::vector<std::unique_ptr<Filter>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(ShardedFilter(std::move(with_null)), std::invalid_argument);
}

TEST(ShardedFilterTest, NameAndFactoryComposition) {
  auto f = MakeShardedVcf(4);
  EXPECT_EQ(f->Name(), "Sharded4(VCF)");
  EXPECT_EQ(f->shard_count(), 4u);

  FilterSpec spec;
  spec.kind = FilterSpec::Kind::kVCF;
  spec.shards = 4;
  EXPECT_EQ(spec.DisplayName(), "Sharded4(VCF)");
  auto built = MakeFilter(spec);
  EXPECT_EQ(built->Name(), "Sharded4(VCF)");
  // sharded: outermost, resilient: per shard.
  spec.resilient = true;
  EXPECT_EQ(spec.DisplayName(), "Sharded4(Resilient(VCF))");
  EXPECT_EQ(MakeFilter(spec)->Name(), "Sharded4(Resilient(VCF))");
}

TEST(ShardedFilterTest, FactorySplitsSlotBudget) {
  FilterSpec spec;
  spec.kind = FilterSpec::Kind::kCF;
  spec.params.bucket_count = 1 << 12;
  spec.shards = 4;
  auto f = MakeFilter(spec);
  // 2^12 buckets over 4 shards -> 2^10 per shard; same total slots.
  EXPECT_EQ(f->SlotCount(),
            (std::size_t{1} << 12) * spec.params.slots_per_bucket);
}

TEST(ShardedFilterTest, RoutingIsDeterministicAndCoversAllShards) {
  auto f = MakeShardedVcf(4);
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t k = 0; k < 4000; ++k) {
    const std::size_t s = f->ShardFor(k);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, ShardedFilter::ShardIndex(k, f->salt(), 4));
    ++hits[s];
  }
  for (unsigned s = 0; s < 4; ++s) {
    // Mix64 routing: each shard gets roughly a quarter of a uniform stream.
    EXPECT_GT(hits[s], 700u) << "shard " << s << " badly underloaded";
  }
}

TEST(ShardedFilterTest, InsertRoutesToExactlyTheChosenShard) {
  auto f = MakeShardedVcf(4);
  const auto keys = UniformKeys(500, 11);
  for (const auto k : keys) {
    ASSERT_TRUE(f->Insert(k));
    EXPECT_TRUE(f->shard(f->ShardFor(k)).Contains(k));
  }
  EXPECT_EQ(f->ItemCount(), keys.size());
  for (const auto k : keys) EXPECT_TRUE(f->Contains(k));
}

TEST(ShardedFilterTest, ObserversAggregateAcrossShards) {
  auto f = MakeShardedVcf(4, /*bucket_log2=*/8);
  EXPECT_EQ(f->SlotCount(), 4u * (1u << 8) * 4u);  // 4 shards x buckets x b=4
  std::size_t per_shard_memory = f->shard(0).MemoryBytes();
  EXPECT_EQ(f->MemoryBytes(), 4 * per_shard_memory);

  const auto keys = UniformKeys(1000, 12);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));
  EXPECT_EQ(f->ItemCount(), keys.size());
  EXPECT_NEAR(f->LoadFactor(),
              static_cast<double>(keys.size()) /
                  static_cast<double>(f->SlotCount()),
              1e-12);

  // Counters aggregate: every insert was counted exactly once, somewhere.
  EXPECT_EQ(f->counters().inserts.Value(), keys.size());
  std::size_t lookups = 0;
  for (const auto k : keys) lookups += f->Contains(k) ? 1 : 0;
  EXPECT_EQ(lookups, keys.size());
  EXPECT_EQ(f->counters().lookups.Value(), keys.size());
  f->ResetCounters();
  EXPECT_EQ(f->counters().inserts.Value(), 0u);
  EXPECT_EQ(f->counters().lookups.Value(), 0u);
}

TEST(ShardedFilterTest, BatchedOpsMatchSequentialOps) {
  auto batched = MakeShardedVcf(4);
  auto sequential = MakeShardedVcf(4);
  const auto keys = UniformKeys(2000, 13);

  std::vector<bool> seq_results;
  for (const auto k : keys) seq_results.push_back(sequential->Insert(k));
  const auto batch_results = std::make_unique<bool[]>(keys.size());
  const std::size_t accepted = batched->InsertBatch(keys, batch_results.get());

  std::size_t seq_accepted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(batch_results[i], seq_results[i]) << "key index " << i;
    seq_accepted += seq_results[i] ? 1 : 0;
  }
  EXPECT_EQ(accepted, seq_accepted);
  EXPECT_EQ(batched->ItemCount(), sequential->ItemCount());

  const auto probes = UniformKeys(1000, 14);
  const auto got = std::make_unique<bool[]>(probes.size());
  batched->ContainsBatch(probes, got.get());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(got[i], sequential->Contains(probes[i]));
  }
}

TEST(ShardedFilterTest, SaveLoadRoundTrip) {
  auto f = MakeShardedVcf(4);
  const auto keys = UniformKeys(800, 15);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));

  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto g = MakeShardedVcf(4);
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_EQ(g->ItemCount(), keys.size());
  for (const auto k : keys) EXPECT_TRUE(g->Contains(k));
}

TEST(ShardedFilterTest, SaveLoadRoundTripWithResilientShards) {
  // Regression: ResilientFilter::LoadState slurps its whole stream, so
  // without per-shard length framing shard 0 would swallow shards 1..3.
  FilterSpec spec;
  spec.kind = FilterSpec::Kind::kVCF;
  spec.params.bucket_count = 1 << 9;
  spec.shards = 4;
  spec.resilient = true;
  auto f = MakeFilter(spec);
  const auto keys = UniformKeys(800, 20);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));

  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));
  auto g = MakeFilter(spec);
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_EQ(g->ItemCount(), keys.size());
  for (const auto k : keys) EXPECT_TRUE(g->Contains(k));
}

TEST(ShardedFilterTest, LoadRejectsMismatchedShardCountAndClears) {
  auto f = MakeShardedVcf(4);
  for (const auto k : UniformKeys(100, 16)) ASSERT_TRUE(f->Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto wrong = MakeShardedVcf(2);
  ASSERT_TRUE(wrong->Insert(42));
  EXPECT_FALSE(wrong->LoadState(blob));  // header digest covers shard count
}

TEST(ShardedFilterTest, TruncatedBlobClearsAllShards) {
  auto f = MakeShardedVcf(4);
  for (const auto k : UniformKeys(400, 17)) ASSERT_TRUE(f->Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));
  // Cut the stream mid-way through the shard payloads: the header parses,
  // some shards restore, then a read fails -> documented clear-on-failure.
  const std::string full = blob.str();
  std::stringstream cut(full.substr(0, full.size() * 3 / 4));

  auto g = MakeShardedVcf(4);
  ASSERT_TRUE(g->Insert(43));
  EXPECT_FALSE(g->LoadState(cut));
  EXPECT_EQ(g->ItemCount(), 0u) << "failed load must leave the filter empty";
}

TEST(ShardedFilterTest, ClearEmptiesEveryShard) {
  auto f = MakeShardedVcf(4);
  const auto keys = UniformKeys(500, 18);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));
  f->Clear();
  EXPECT_EQ(f->ItemCount(), 0u);
  for (unsigned s = 0; s < 4; ++s) EXPECT_EQ(f->shard(s).ItemCount(), 0u);
}

std::unique_ptr<Filter> MakeFactorySharded(unsigned shards) {
  FilterSpec spec;
  spec.kind = FilterSpec::Kind::kVCF;
  spec.params.bucket_count = 1 << 10;  // total budget, split across shards
  spec.shards = shards;
  return MakeFilter(spec);
}

TEST(ShardedSplitTest, SplitRefusedWithoutABuilder) {
  auto f = MakeShardedVcf(2);  // hand-built: no shard builder installed
  ASSERT_FALSE(f->has_shard_builder());
  std::string error;
  EXPECT_FALSE(f->SplitShard(0, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ShardedSplitTest, SplitDoublesTheDirectoryAndKeepsEveryKey) {
  auto owner = MakeFactorySharded(2);
  auto* f = dynamic_cast<ShardedFilter*>(owner.get());
  ASSERT_NE(f, nullptr);
  const auto keys = UniformKeys(600, 30);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));

  std::string error;
  ASSERT_TRUE(f->SplitShard(0, &error)) << error;
  // A 2-entry directory has single-entry alias classes, so the first split
  // doubles it; the clone takes the peeled-off residue.
  EXPECT_EQ(f->shard_count(), 4u);
  EXPECT_EQ(f->live_shard_count(), 3u);
  EXPECT_EQ(f->split_count(), 1u);

  // A split copies fingerprints, so no key may go missing — and new inserts
  // route through the doubled directory transparently.
  for (const auto k : keys) ASSERT_TRUE(f->Contains(k)) << "key lost by split";
  const auto more = UniformKeys(200, 31);
  for (const auto k : more) ASSERT_TRUE(f->Insert(k));
  for (const auto k : more) ASSERT_TRUE(f->Contains(k));
}

TEST(ShardedSplitTest, MergeReunitesSiblingsAndHalvesTheDirectory) {
  auto owner = MakeFactorySharded(2);
  auto* f = dynamic_cast<ShardedFilter*>(owner.get());
  ASSERT_NE(f, nullptr);
  const auto keys = UniformKeys(500, 32);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));
  std::string error;
  ASSERT_TRUE(f->SplitShard(0, &error)) << error;

  // Reuniting the split pair dedups the copied fingerprints and re-aliases
  // the halves, so the directory contracts back to the construction size.
  ASSERT_TRUE(f->MergeShards(0, &error)) << error;
  EXPECT_EQ(f->shard_count(), 2u);
  EXPECT_EQ(f->live_shard_count(), 2u);
  EXPECT_EQ(f->merge_count(), 1u);
  for (const auto k : keys) ASSERT_TRUE(f->Contains(k)) << "key lost by merge";
  EXPECT_EQ(f->ItemCount(), keys.size())
      << "merge failed to dedup the split's fingerprint copies";
}

TEST(ShardedSplitTest, MergeRefusesAcrossFamilies) {
  auto owner = MakeFactorySharded(2);
  auto* f = dynamic_cast<ShardedFilter*>(owner.get());
  ASSERT_NE(f, nullptr);
  // With the construction directory, entry 0's sibling is construction
  // shard 1 — a different seed lineage, so fingerprints don't transfer.
  std::string error;
  EXPECT_FALSE(f->MergeShards(0, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(f->shard_count(), 2u) << "refused merge must change nothing";
}

TEST(ShardedSplitTest, MidTopologyCheckpointRoundTripsViaV2) {
  auto owner = MakeFactorySharded(2);
  auto* f = dynamic_cast<ShardedFilter*>(owner.get());
  ASSERT_NE(f, nullptr);
  const auto keys = UniformKeys(400, 33);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));
  std::string error;
  ASSERT_TRUE(f->SplitShard(0, &error)) << error;
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto fresh_owner = MakeFactorySharded(2);
  auto* g = dynamic_cast<ShardedFilter*>(fresh_owner.get());
  ASSERT_NE(g, nullptr);
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_EQ(g->shard_count(), f->shard_count());
  EXPECT_EQ(g->live_shard_count(), f->live_shard_count());
  for (const auto k : keys) ASSERT_TRUE(g->Contains(k));
}

TEST(ShardedSplitTest, IdentityTopologyStillWritesTheLegacyFormat) {
  // A never-split factory filter must emit the pre-split blob format — one
  // a builder-less hand-built instance (same seeds) can still load.
  auto owner = MakeFactorySharded(2);
  auto* f = dynamic_cast<ShardedFilter*>(owner.get());
  ASSERT_NE(f, nullptr);
  const auto keys = UniformKeys(300, 34);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto g = MakeFactorySharded(2);
  auto* gs = dynamic_cast<ShardedFilter*>(g.get());
  ASSERT_NE(gs, nullptr);
  gs->SetShardBuilder(nullptr);  // force the legacy decode path
  ASSERT_TRUE(gs->LoadState(blob));
  for (const auto k : keys) ASSERT_TRUE(gs->Contains(k));
}

TEST(ShardedFilterStressTest, MixedWorkloadNeverLosesAcceptedKeys) {
  auto f = MakeShardedVcf(4, /*bucket_log2=*/10);
  // A stable core set that must never go missing while other keys churn.
  const auto core = UniformKeys(1500, 19);
  for (const auto k : core) ASSERT_TRUE(f->Insert(k));

  std::atomic<bool> stop{false};
  std::atomic<int> core_misses{0};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      // Disjoint churn streams; erase only what was accepted so a failed
      // insert cannot erase an aliased core fingerprint.
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = UniformKeyAt(200 + t, i % 700);
        if (f->Insert(k)) f->Erase(k);
        ++i;
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 20000; ++iter) {
        const auto& k = core[(t * 20000 + iter) % core.size()];
        if (!f->Contains(k)) core_misses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  for (auto& th : writers) th.join();

  EXPECT_EQ(core_misses.load(), 0)
      << "a core key vanished while unrelated keys churned";
  for (const auto k : core) ASSERT_TRUE(f->Contains(k));
  // Every churn insert was paired with an erase, so the aggregate count is
  // back to exactly the core set.
  EXPECT_EQ(f->ItemCount(), core.size());
}

TEST(ShardedFilterStressTest, ParallelWritersKeepBookkeepingExact) {
  auto f = MakeShardedVcf(4, /*bucket_log2=*/10);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 800;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> accepted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t mine = 0;
      for (int i = 0; i < kPerThread; ++i) {
        mine += f->Insert(UniformKeyAt(300 + t, i)) ? 1 : 0;
      }
      accepted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(f->ItemCount(), accepted.load());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(f->Contains(UniformKeyAt(300 + t, i)));
    }
  }
}

}  // namespace
}  // namespace vcf
