// InsertBatch contract test: for every cuckoo filter with a pipelined
// override (CF, VCF/IVCF, DVCF, k-VCF) and for the wrappers, batched
// insertion must be indistinguishable from sequential insertion — same
// per-key results, same accepted count, and the same serialized state
// (candidate derivation never depends on table contents, and the shared
// eviction tail consumes the RNG stream in the same order).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "core/concurrent_filter.hpp"
#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::string StateBlob(const Filter& f) {
  std::stringstream out;
  EXPECT_TRUE(f.SaveState(out));
  return out.str();
}

/// Builds two same-spec filters, feeds one sequentially and one in batches,
/// and checks results, bookkeeping and (when supported) the state blob.
void CheckBatchEquivalence(const FilterSpec& spec, std::size_t n_keys,
                           std::size_t batch, bool check_blob) {
  SCOPED_TRACE(spec.DisplayName() + " n=" + std::to_string(n_keys) +
               " batch=" + std::to_string(batch));
  auto sequential = MakeFilter(spec);
  auto batched = MakeFilter(spec);
  const auto keys = UniformKeys(n_keys, 0xBA7C4ULL + n_keys);

  std::vector<bool> seq_results;
  std::size_t seq_accepted = 0;
  for (const auto k : keys) {
    const bool ok = sequential->Insert(k);
    seq_results.push_back(ok);
    seq_accepted += ok ? 1 : 0;
  }

  const auto results = std::make_unique<bool[]>(keys.size());
  std::size_t accepted = 0;
  for (std::size_t done = 0; done < keys.size(); done += batch) {
    const std::size_t len = std::min(batch, keys.size() - done);
    accepted += batched->InsertBatch(
        std::span<const std::uint64_t>(keys).subspan(done, len),
        results.get() + done);
  }

  EXPECT_EQ(accepted, seq_accepted);
  EXPECT_EQ(batched->ItemCount(), sequential->ItemCount());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(results[i], seq_results[i]) << "key index " << i;
  }
  if (check_blob) {
    EXPECT_EQ(StateBlob(*batched), StateBlob(*sequential))
        << "batched insertion produced a different table";
  }
  // Identical counting too: both paths count the same insert attempts
  // (wrappers may surface wrapper-level counters; they must still agree).
  EXPECT_EQ(batched->counters().inserts.Value(),
            sequential->counters().inserts.Value());
}

FilterSpec SpecOf(FilterSpec::Kind kind, unsigned variant) {
  FilterSpec spec;
  spec.kind = kind;
  spec.variant = variant;
  spec.params.bucket_count = 1 << 10;
  return spec;
}

TEST(InsertBatchTest, CuckooFamilyMatchesSequentialIncludingEvictions) {
  // ~95% of slots offered: dense enough that eviction chains (and a few
  // rejections) run, which is where RNG-order divergence would show up.
  const std::size_t n = ((std::size_t{1} << 10) * 4 * 95) / 100;
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kCF, 0), n, 256, true);
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kVCF, 0), n, 256, true);
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kIVCF, 6), n, 256, true);
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kDVCF, 8), n, 256, true);
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kKVCF, 8), n, 256, true);
}

TEST(InsertBatchTest, OddBatchSizesAndDefaultOverride) {
  const std::size_t n = 1000;
  // Window-straddling batch lengths (not multiples of the 16-key window).
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kVCF, 0), n, 7, true);
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kCF, 0), n, 333, true);
  // A filter without an override exercises the default loop (DCF).
  CheckBatchEquivalence(SpecOf(FilterSpec::Kind::kDCF, 4), n, 64, true);
}

TEST(InsertBatchTest, NullResultsPointerIsAccepted) {
  auto f = MakeFilter(SpecOf(FilterSpec::Kind::kVCF, 0));
  const auto keys = UniformKeys(500, 21);
  EXPECT_EQ(f->InsertBatch(keys), keys.size());
  for (const auto k : keys) EXPECT_TRUE(f->Contains(k));
}

TEST(InsertBatchTest, WrappersDelegate) {
  // Resilient: stash semantics ride on the default per-key loop.
  FilterSpec resilient = SpecOf(FilterSpec::Kind::kVCF, 0);
  resilient.resilient = true;
  CheckBatchEquivalence(resilient, 1000, 128, /*check_blob=*/false);

  // Sharded: group-by-shard preserves per-shard key order.
  FilterSpec sharded = SpecOf(FilterSpec::Kind::kVCF, 0);
  sharded.shards = 4;
  CheckBatchEquivalence(sharded, 1000, 128, /*check_blob=*/true);

  // Concurrent: one lock for the whole batch, same results.
  CuckooParams p;
  p.bucket_count = 1 << 10;
  ConcurrentFilter wrapped(std::make_unique<VerticalCuckooFilter>(p));
  VerticalCuckooFilter bare(p);
  const auto keys = UniformKeys(1200, 22);
  const auto results = std::make_unique<bool[]>(keys.size());
  const std::size_t accepted = wrapped.InsertBatch(keys, results.get());
  std::size_t expect_accepted = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool ok = bare.Insert(keys[i]);
    EXPECT_EQ(results[i], ok);
    expect_accepted += ok ? 1 : 0;
  }
  EXPECT_EQ(accepted, expect_accepted);
  EXPECT_EQ(wrapped.ItemCount(), bare.ItemCount());
}

TEST(InsertBatchTest, BatchedLookupSeesBatchedInserts) {
  auto f = MakeFilter(SpecOf(FilterSpec::Kind::kIVCF, 6));
  const auto keys = UniformKeys(2000, 23);
  f->InsertBatch(keys);
  const auto results = std::make_unique<bool[]>(keys.size());
  f->ContainsBatch(keys, results.get());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(results[i]) << "false negative at index " << i;
  }
}

}  // namespace
}  // namespace vcf
