#include "core/kvcf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 16;
  return p;
}

TEST(KVcfTest, ConstructionValidation) {
  EXPECT_THROW(KVcf(SmallParams(), 1), std::invalid_argument);
  EXPECT_NO_THROW(KVcf(SmallParams(), 2));
  EXPECT_NO_THROW(KVcf(SmallParams(), 10));
}

TEST(KVcfTest, MarkBitsSizing) {
  EXPECT_EQ(KVcf(SmallParams(), 2).mark_bits(), 1u);
  EXPECT_EQ(KVcf(SmallParams(), 4).mark_bits(), 2u);
  EXPECT_EQ(KVcf(SmallParams(), 7).mark_bits(), 3u);  // paper §III-C example
  EXPECT_EQ(KVcf(SmallParams(), 8).mark_bits(), 3u);
  EXPECT_EQ(KVcf(SmallParams(), 9).mark_bits(), 4u);
}

TEST(KVcfTest, SlotWidthIncludesMarkField) {
  CuckooParams p = SmallParams();
  KVcf f(p, 7);
  const std::size_t bits = p.slot_count() * (p.fingerprint_bits + 3);
  // 17-bit slots x 4 make a 68-bit (wide-capable) bucket, so the table
  // carries a full probe-image of slack rather than the base 8 bytes.
  EXPECT_EQ(f.MemoryBytes(), (bits + 7) / 8 + kWideImageWords * 8);
}

TEST(KVcfTest, InsertLookupEraseBasics) {
  KVcf f(SmallParams(), 6);
  EXPECT_FALSE(f.Contains(5));
  EXPECT_TRUE(f.Insert(5));
  EXPECT_TRUE(f.Contains(5));
  EXPECT_TRUE(f.Erase(5));
  EXPECT_FALSE(f.Contains(5));
  EXPECT_EQ(f.ItemCount(), 0u);
}

class KVcfPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(KVcfPropertyTest, NoFalseNegativesAfterEvictionChains) {
  const unsigned k = GetParam();
  CuckooParams p = SmallParams();
  KVcf f(p, k);
  const auto keys = UniformKeys(p.slot_count() * 95 / 100, 100 + k);
  std::vector<std::uint64_t> stored;
  for (const auto key : keys) {
    if (f.Insert(key)) stored.push_back(key);
  }
  // The relocation logic (Eq. 7 + mark bits) must never lose an item.
  for (const auto key : stored) {
    ASSERT_TRUE(f.Contains(key)) << "k=" << k;
  }
}

TEST_P(KVcfPropertyTest, EraseAllRestoresEmpty) {
  const unsigned k = GetParam();
  CuckooParams p;
  p.bucket_count = 1 << 8;
  p.fingerprint_bits = 16;
  KVcf f(p, k);
  std::vector<std::uint64_t> stored;
  for (const auto key : UniformKeys(p.slot_count() * 8 / 10, 200 + k)) {
    if (f.Insert(key)) stored.push_back(key);
  }
  for (const auto key : stored) ASSERT_TRUE(f.Erase(key));
  EXPECT_EQ(f.ItemCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(KSweep, KVcfPropertyTest,
                         ::testing::Values(2u, 4u, 5u, 7u, 9u, 10u));

TEST(KVcfTest, ZeroKicksStillPlacesMostItems) {
  // Table V setting: MAX = 0. With k = 9 candidates x 4 slots the filter
  // should still reach a high load factor with zero relocations.
  CuckooParams p = SmallParams();
  p.max_kicks = 0;
  KVcf f(p, 9);
  std::size_t stored = 0;
  for (const auto key : UniformKeys(p.slot_count(), 42)) {
    stored += f.Insert(key) ? 1 : 0;
  }
  EXPECT_EQ(f.counters().evictions, 0u);
  EXPECT_GT(static_cast<double>(stored) / p.slot_count(), 0.9);
}

TEST(KVcfTest, LargerKGivesHigherZeroKickLoad) {
  // Table V's monotone trend.
  CuckooParams p = SmallParams();
  p.max_kicks = 0;
  double prev = 0.0;
  for (unsigned k : {2u, 4u, 8u}) {
    KVcf f(p, k);
    std::size_t stored = 0;
    for (const auto key : UniformKeys(p.slot_count(), 77)) {
      stored += f.Insert(key) ? 1 : 0;
    }
    const double lf = static_cast<double>(stored) / p.slot_count();
    EXPECT_GT(lf, prev) << "k=" << k;
    prev = lf;
  }
}

TEST(KVcfTest, FailedInsertRollsBack) {
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  p.max_kicks = 16;
  KVcf f(p, 5);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto key : UniformKeys(f.SlotCount() * 4, 314)) {
    if (f.Insert(key)) {
      stored.push_back(key);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(KVcfTest, NameEncodesK) {
  EXPECT_EQ(KVcf(SmallParams(), 7).Name(), "7-VCF");
  EXPECT_EQ(KVcf(SmallParams(), 2).Name(), "2-VCF");
}

}  // namespace
}  // namespace vcf
