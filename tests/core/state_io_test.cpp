// Checkpoint/restore (SaveState / LoadState) across the whole filter family.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> AllSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  return {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 3, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 6, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kCBF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kVF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kSsCF, 0, p, 12.0, 0},
  };
}

class StateIoTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(StateIoTest, RoundTripPreservesAnswers) {
  auto original = MakeFilter(GetParam());
  const auto keys = UniformKeys(original->SlotCount() / 2, 71);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (original->Insert(k)) stored.push_back(k);
  }

  std::stringstream blob;
  ASSERT_TRUE(original->SaveState(blob)) << original->Name();

  auto restored = MakeFilter(GetParam());
  ASSERT_TRUE(restored->LoadState(blob)) << restored->Name();
  EXPECT_EQ(restored->ItemCount(), original->ItemCount());
  for (const auto k : stored) {
    ASSERT_TRUE(restored->Contains(k)) << restored->Name();
  }
  // Alien answers must be bit-identical too (same table contents).
  for (const auto a : UniformKeys(5000, 72)) {
    ASSERT_EQ(restored->Contains(a), original->Contains(a)) << restored->Name();
  }
}

TEST_P(StateIoTest, RestoredFilterRemainsFullyOperational) {
  auto original = MakeFilter(GetParam());
  for (const auto k : UniformKeys(100, 73)) original->Insert(k);
  std::stringstream blob;
  ASSERT_TRUE(original->SaveState(blob));

  auto restored = MakeFilter(GetParam());
  ASSERT_TRUE(restored->LoadState(blob));
  // Keep using it: inserts, lookups and (where supported) deletions work.
  EXPECT_TRUE(restored->Insert(0xFEEDBEEF));
  EXPECT_TRUE(restored->Contains(0xFEEDBEEF));
  if (restored->SupportsDeletion()) {
    EXPECT_TRUE(restored->Erase(0xFEEDBEEF));
  }
}

TEST_P(StateIoTest, RejectsMismatchedParameters) {
  auto original = MakeFilter(GetParam());
  original->Insert(1);
  std::stringstream blob;
  ASSERT_TRUE(original->SaveState(blob));

  // Different seed => different config digest => rejection, state untouched.
  FilterSpec other = GetParam();
  other.params.seed ^= 0xDEAD;
  auto wrong = MakeFilter(other);
  wrong->Insert(999);
  EXPECT_FALSE(wrong->LoadState(blob)) << wrong->Name();
  EXPECT_TRUE(wrong->Contains(999)) << "failed load must not clobber state";
}

TEST_P(StateIoTest, RejectsGarbageAndTruncation) {
  auto filter = MakeFilter(GetParam());
  std::stringstream garbage("not a checkpoint at all, sorry");
  EXPECT_FALSE(filter->LoadState(garbage));

  auto source = MakeFilter(GetParam());
  source->Insert(5);
  std::stringstream blob;
  ASSERT_TRUE(source->SaveState(blob));
  std::string bytes = blob.str();
  bytes.resize(bytes.size() * 2 / 3);
  std::stringstream truncated(bytes);
  EXPECT_FALSE(filter->LoadState(truncated)) << filter->Name();
}

TEST_P(StateIoTest, RejectsCrossFamilyBlob) {
  // A CF blob must not load into a VCF of identical geometry, and vice
  // versa: the name in the header differs.
  CuckooParams p;
  p.bucket_count = 1 << 8;
  auto donor = MakeFilter({FilterSpec::Kind::kCF, 0, p, 12.0, 0});
  donor->Insert(1);
  std::stringstream blob;
  ASSERT_TRUE(donor->SaveState(blob));
  auto target = MakeFilter(GetParam());
  if (target->Name() == donor->Name()) {
    GTEST_SKIP() << "same family";
  }
  EXPECT_FALSE(target->LoadState(blob)) << target->Name();
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, StateIoTest, ::testing::ValuesIn(AllSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Cross-layout checkpoints: TableCodec blobs are canonical packed-layout
// bytes, so a checkpoint taken by a cache-aligned filter must restore into a
// packed-layout filter of the same logical config, and vice versa — the
// layout is a performance knob, not part of the filter's identity.

std::vector<FilterSpec> TableBackedSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  return {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 3, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 6, p, 12.0, 0},
  };
}

class CrossLayoutStateIoTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(CrossLayoutStateIoTest, AlignedAndPackedCheckpointsInteroperate) {
  FilterSpec aligned_spec = GetParam();
  aligned_spec.aligned = true;
  const FilterSpec packed_spec = GetParam();

  auto donor = MakeFilter(aligned_spec);
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(donor->SlotCount() / 2, 81)) {
    if (donor->Insert(k)) stored.push_back(k);
  }
  std::stringstream blob;
  ASSERT_TRUE(donor->SaveState(blob)) << donor->Name();

  // aligned -> packed
  auto packed = MakeFilter(packed_spec);
  ASSERT_TRUE(packed->LoadState(blob)) << packed->Name();
  EXPECT_EQ(packed->ItemCount(), donor->ItemCount());
  for (const auto k : stored) ASSERT_TRUE(packed->Contains(k));
  for (const auto a : UniformKeys(3000, 82)) {
    ASSERT_EQ(packed->Contains(a), donor->Contains(a));
  }

  // packed -> aligned
  std::stringstream blob2;
  ASSERT_TRUE(packed->SaveState(blob2));
  auto restored = MakeFilter(aligned_spec);
  ASSERT_TRUE(restored->LoadState(blob2)) << restored->Name();
  for (const auto k : stored) ASSERT_TRUE(restored->Contains(k));
  // A restored aligned filter keeps working.
  EXPECT_TRUE(restored->Insert(0xFEEDBEEF));
  EXPECT_TRUE(restored->Contains(0xFEEDBEEF));
}

TEST_P(CrossLayoutStateIoTest, BlobsAreLayoutInvariant) {
  // The same insert stream through both layouts serializes to byte-identical
  // state — the acceptance bar for the SIMD/layout work: no observable
  // change to persistent state.
  FilterSpec aligned_spec = GetParam();
  aligned_spec.aligned = true;
  auto a = MakeFilter(aligned_spec);
  auto b = MakeFilter(GetParam());
  for (const auto k : UniformKeys(a->SlotCount() / 2, 83)) {
    ASSERT_EQ(a->Insert(k), b->Insert(k));
  }
  std::stringstream blob_a, blob_b;
  ASSERT_TRUE(a->SaveState(blob_a));
  ASSERT_TRUE(b->SaveState(blob_b));
  EXPECT_EQ(blob_a.str(), blob_b.str()) << a->Name();
}

TEST_P(CrossLayoutStateIoTest, ShardedAlignedRoundTrip) {
  // Layout composes with the sharded wrapper: every shard's table converts.
  FilterSpec sharded_aligned = GetParam();
  sharded_aligned.shards = 2;
  sharded_aligned.aligned = true;
  FilterSpec sharded_packed = GetParam();
  sharded_packed.shards = 2;

  auto donor = MakeFilter(sharded_aligned);
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(donor->SlotCount() / 2, 84)) {
    if (donor->Insert(k)) stored.push_back(k);
  }
  std::stringstream blob;
  ASSERT_TRUE(donor->SaveState(blob));
  auto restored = MakeFilter(sharded_packed);
  ASSERT_TRUE(restored->LoadState(blob)) << restored->Name();
  for (const auto k : stored) ASSERT_TRUE(restored->Contains(k));
}

INSTANTIATE_TEST_SUITE_P(
    TableBacked, CrossLayoutStateIoTest,
    ::testing::ValuesIn(TableBackedSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
