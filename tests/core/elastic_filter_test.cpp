// ElasticFilter: watermark-triggered online growth, incremental migration
// with zero false negatives while in flight, dual-read accounting, the
// straggler sweep that catches eviction-displaced entities, and checkpoint
// resume of an interrupted migration.
#include "core/elastic_filter.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 8;  // 1024 slots per sub: growth steps stay cheap
  return p;
}

ElasticFilter::SubBuilder VcfBuilder(CuckooParams params = SmallParams()) {
  return [params] { return std::make_unique<VerticalCuckooFilter>(params); };
}

std::unique_ptr<ElasticFilter> MakeElastic(ElasticOptions options = {}) {
  return std::make_unique<ElasticFilter>(VcfBuilder(), options);
}

/// Drives an in-flight migration to completion (bounded, so a livelock
/// fails the test instead of hanging it).
void DrainMigration(ElasticFilter& f) {
  for (int guard = 0; f.Migrating() && guard < 100000; ++guard) {
    f.MigrateStep(16);
  }
  ASSERT_FALSE(f.Migrating()) << "migration failed to drain";
}

/// Inserts keys until `count` are accepted; returns the accepted keys.
std::vector<std::uint64_t> Fill(ElasticFilter& f, std::size_t count,
                                std::uint64_t stream) {
  std::vector<std::uint64_t> accepted;
  for (std::size_t i = 0; accepted.size() < count && i < 4 * count; ++i) {
    const std::uint64_t k = UniformKeyAt(stream, i);
    if (f.Insert(k)) accepted.push_back(k);
  }
  EXPECT_EQ(accepted.size(), count);
  return accepted;
}

TEST(ElasticFilterTest, RejectsBadConstruction) {
  EXPECT_THROW(ElasticFilter(nullptr), std::invalid_argument);
  EXPECT_THROW(ElasticFilter([] { return std::unique_ptr<Filter>(); }),
               std::invalid_argument);
  ElasticOptions bad;
  bad.grow_watermark = 1.0;
  EXPECT_THROW(ElasticFilter(VcfBuilder(), bad), std::invalid_argument);
  bad = {};
  bad.grow_hysteresis = -0.1;
  EXPECT_THROW(ElasticFilter(VcfBuilder(), bad), std::invalid_argument);
  bad = {};
  bad.max_levels = 25;
  EXPECT_THROW(ElasticFilter(VcfBuilder(), bad), std::invalid_argument);
}

TEST(ElasticFilterTest, LevelZeroDelegatesToTheSingleSub) {
  auto f = MakeElastic();
  EXPECT_EQ(f->Name(), "Elastic(VCF)");
  EXPECT_EQ(f->Level(), 0u);
  EXPECT_FALSE(f->Migrating());
  EXPECT_EQ(f->SlotCount(), SmallParams().bucket_count * 4);
  EXPECT_TRUE(f->SupportsDeletion());
  const auto keys = Fill(*f, 200, 11);
  for (const auto k : keys) EXPECT_TRUE(f->Contains(k));
  EXPECT_EQ(f->ItemCount(), keys.size());
  EXPECT_EQ(f->Resizes(), 0u);
}

TEST(ElasticFilterTest, AutoGrowthKeepsEveryAcceptedKey) {
  auto f = MakeElastic();
  const std::size_t start_slots = f->SlotCount();
  const auto keys = Fill(*f, 2000, 12);  // ~2x the starting capacity
  DrainMigration(*f);
  EXPECT_GE(f->Resizes(), 2u);
  EXPECT_GE(f->SlotCount(), 4 * start_slots);
  EXPECT_EQ(f->ItemCount(), keys.size());
  for (const auto k : keys) {
    ASSERT_TRUE(f->Contains(k)) << "accepted key lost across growth";
  }
  // The watermark policy kept the filter from ever overfilling.
  EXPECT_LT(f->LoadFactor(), f->options().grow_watermark + 0.01);
}

TEST(ElasticFilterTest, ManualGrowIsExplicitWhenAutoGrowIsOff) {
  ElasticOptions options;
  options.auto_grow = false;
  auto f = MakeElastic(options);
  const auto keys = Fill(*f, 900, 13);  // ~0.88 load, past the watermark
  EXPECT_EQ(f->Level(), 0u) << "grew without being asked";

  ASSERT_TRUE(f->BeginGrow());
  EXPECT_TRUE(f->Migrating());
  EXPECT_EQ(f->Level(), 1u);
  EXPECT_FALSE(f->BeginGrow()) << "second grow while migrating must refuse";
  EXPECT_GT(f->MigrationBacklog(), 0u);

  // Mid-migration lookups must see every key (and count dual reads for the
  // ones whose new route is the not-yet-populated high half).
  f->MigrateStep(8);
  for (const auto k : keys) ASSERT_TRUE(f->Contains(k));
  EXPECT_GT(f->DualReads(), 0u);

  DrainMigration(*f);
  EXPECT_EQ(f->MigrationBacklog(), 0u);
  EXPECT_EQ(f->MigrationStashSize(), 0u);
  EXPECT_EQ(f->Resizes(), 1u);
  EXPECT_EQ(f->SlotCount(), 2 * SmallParams().bucket_count * 4);
  for (const auto k : keys) ASSERT_TRUE(f->Contains(k));
  EXPECT_EQ(f->ItemCount(), keys.size());
}

// Regression test for the migration/eviction race: a low-route insert's
// cuckoo eviction chain can kick a not-yet-migrated entity into a bucket
// the cursor already passed. The close path's straggler sweep must catch
// every such entity before dual reads stop — churn hard against a slow
// cursor and demand zero false negatives.
TEST(ElasticFilterTest, SweepCatchesEntitiesDisplacedBehindTheCursor) {
  ElasticOptions options;
  options.auto_grow = false;
  options.migrate_buckets_per_op = 1;  // slow cursor: maximise the window
  auto f = MakeElastic(options);
  auto keys = Fill(*f, 850, 14);  // dense: eviction chains are common

  ASSERT_TRUE(f->BeginGrow());
  std::size_t i = 0;
  for (int guard = 0; f->Migrating() && guard < 100000; ++guard) {
    // Every insert paces the migration by one bucket AND (about half the
    // time) lands in the low half, re-arming the sweep.
    const std::uint64_t k = UniformKeyAt(15, i++);
    if (f->Insert(k)) keys.push_back(k);
  }
  ASSERT_FALSE(f->Migrating());
  for (const auto k : keys) {
    ASSERT_TRUE(f->Contains(k)) << "key displaced behind the cursor was lost";
  }
  EXPECT_EQ(f->ItemCount(), keys.size());
}

TEST(ElasticFilterTest, EraseWorksMidMigration) {
  ElasticOptions options;
  options.auto_grow = false;
  auto f = MakeElastic(options);
  const auto keys = Fill(*f, 600, 16);
  ASSERT_TRUE(f->BeginGrow());
  f->MigrateStep(20);

  const std::size_t before = f->ItemCount();
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(f->Erase(keys[i])) << "mid-migration erase missed key " << i;
  }
  EXPECT_EQ(f->ItemCount(), before - 100);
  DrainMigration(*f);
  // No false negatives among the surviving keys, mid-migration or after.
  for (std::size_t i = 100; i < keys.size(); ++i) {
    ASSERT_TRUE(f->Contains(keys[i]));
  }
}

TEST(ElasticFilterTest, BatchPathsAgreeWithScalarMidMigration) {
  ElasticOptions options;
  options.auto_grow = false;
  auto f = MakeElastic(options);
  Fill(*f, 700, 17);
  ASSERT_TRUE(f->BeginGrow());
  f->MigrateStep(5);

  const auto more = UniformKeys(256, 18);
  bool results[256];
  const std::size_t accepted = f->InsertBatch(more, results);
  std::size_t flags = 0;
  for (std::size_t i = 0; i < more.size(); ++i) flags += results[i] ? 1 : 0;
  EXPECT_EQ(accepted, flags);

  const auto aliens = UniformKeys(256, 19);
  std::vector<std::uint64_t> probe(more.begin(), more.end());
  probe.insert(probe.end(), aliens.begin(), aliens.end());
  {
    auto results_bool = std::make_unique<bool[]>(probe.size());
    f->ContainsBatch(probe, results_bool.get());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      EXPECT_EQ(results_bool[i], f->Contains(probe[i]))
          << "batch/scalar disagreement at " << i;
    }
  }
}

TEST(ElasticFilterTest, SaveLoadRoundTripsAfterGrowth) {
  auto f = MakeElastic();
  const auto keys = Fill(*f, 1500, 20);
  DrainMigration(*f);
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto g = MakeElastic();
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_EQ(g->Level(), f->Level());
  EXPECT_EQ(g->ItemCount(), f->ItemCount());
  EXPECT_EQ(g->SlotCount(), f->SlotCount());
  for (const auto k : keys) ASSERT_TRUE(g->Contains(k));
}

TEST(ElasticFilterTest, MidMigrationCheckpointResumesExactly) {
  ElasticOptions options;
  options.auto_grow = false;
  auto f = MakeElastic(options);
  const auto keys = Fill(*f, 800, 21);
  ASSERT_TRUE(f->BeginGrow());
  f->MigrateStep(7);  // stop with the cursor mid-sub
  ASSERT_TRUE(f->Migrating());
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));

  auto g = MakeElastic(options);
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_TRUE(g->Migrating()) << "resumed checkpoint dropped the migration";
  EXPECT_EQ(g->Level(), 1u);
  for (const auto k : keys) {
    ASSERT_TRUE(g->Contains(k)) << "key unreachable after resume";
  }
  DrainMigration(*g);
  for (const auto k : keys) ASSERT_TRUE(g->Contains(k));
  EXPECT_EQ(g->ItemCount(), keys.size());
}

TEST(ElasticFilterTest, RejectedLoadLeavesTheFilterUntouched) {
  ElasticOptions options;
  options.auto_grow = false;
  auto f = MakeElastic(options);
  Fill(*f, 800, 22);
  ASSERT_TRUE(f->BeginGrow());
  f->MigrateStep(3);
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));
  std::string bytes = blob.str();
  bytes.back() ^= 0x40;  // corrupt the final sub blob's checksum region

  auto g = MakeElastic(options);
  const auto canary = Fill(*g, 50, 23);
  const std::size_t before = g->ItemCount();
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(g->LoadState(corrupted));
  EXPECT_EQ(g->ItemCount(), before) << "rejected load mutated item count";
  for (const auto k : canary) {
    ASSERT_TRUE(g->Contains(k)) << "rejected load clobbered live state";
  }
  EXPECT_EQ(g->Level(), 0u);

  // Truncation mid-header and mid-body must reject the same way.
  for (const std::size_t len : {std::size_t{6}, bytes.size() / 2}) {
    std::stringstream prefix(bytes.substr(0, len));
    EXPECT_FALSE(g->LoadState(prefix));
    EXPECT_EQ(g->ItemCount(), before);
  }
}

TEST(ElasticFilterTest, ClearResetsToASingleSub) {
  auto f = MakeElastic();
  Fill(*f, 1200, 24);
  ASSERT_GE(f->Level(), 1u);
  f->Clear();
  EXPECT_EQ(f->Level(), 0u);
  EXPECT_FALSE(f->Migrating());
  EXPECT_EQ(f->ItemCount(), 0u);
  EXPECT_EQ(f->SlotCount(), SmallParams().bucket_count * 4);
  // The cleared filter is fully reusable, including growing again.
  const auto keys = Fill(*f, 1200, 25);
  DrainMigration(*f);
  for (const auto k : keys) ASSERT_TRUE(f->Contains(k));
}

TEST(ElasticFilterTest, MaxLevelsCapsGrowth) {
  ElasticOptions options;
  options.auto_grow = false;
  options.max_levels = 1;
  auto f = MakeElastic(options);
  Fill(*f, 400, 26);
  ASSERT_TRUE(f->BeginGrow());
  DrainMigration(*f);
  EXPECT_EQ(f->Level(), 1u);
  EXPECT_FALSE(f->BeginGrow()) << "grew past max_levels";
}

TEST(ElasticFilterTest, FactorySpellingBuildsAndComposes) {
  FilterSpec spec;
  ParseFilterKind("elastic:vcf", spec);
  spec.params = SmallParams();
  auto f = MakeFilter(spec);
  EXPECT_EQ(f->Name(), "Elastic(VCF)");

  // elastic: under sharded: grows each shard independently.
  FilterSpec sharded;
  ParseFilterKind("sharded:2:elastic:vcf", sharded);
  sharded.params = SmallParams();
  auto s = MakeFilter(sharded);
  std::size_t elastic_leaves = 0;
  s->ForEachLeaf([&](Filter& leaf) {
    if (dynamic_cast<ElasticFilter*>(&leaf) != nullptr) ++elastic_leaves;
  });
  EXPECT_EQ(elastic_leaves, 2u);

  // The tier's segments are immutable; elastic cannot compose above them.
  FilterSpec tiered;
  ParseFilterKind("elastic:vcf", tiered);
  tiered.tiered = true;
  EXPECT_THROW(MakeFilter(tiered), std::invalid_argument);
}

}  // namespace
}  // namespace vcf
