#include "core/vertical_hashing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {
namespace {

std::set<std::uint64_t> AsSet(const Candidates4& c) {
  return {c.bucket.begin(), c.bucket.end()};
}

TEST(VerticalHasherTest, MaskConstruction) {
  const VerticalHasher h(8, 8, 0x0F);
  EXPECT_EQ(h.bm1(), 0x0Fu);
  EXPECT_EQ(h.bm2(), 0xF0u);
  EXPECT_EQ(h.index_mask(), 0xFFu);
  EXPECT_EQ(h.offset_mask(), 0xFFu);
  // bm1 is truncated to the offset width.
  const VerticalHasher wide(8, 8, 0xFFFF0F);
  EXPECT_EQ(wide.bm1(), 0x0Fu);
}

TEST(VerticalHasherTest, Eq3CandidatesContainPrimaryAndFullXor) {
  const VerticalHasher h(10, 10, 0x1F);
  const std::uint64_t b1 = 0x2A5;
  const std::uint64_t fh = 0x3C7;
  const Candidates4 c = h.Candidates(b1, fh);
  EXPECT_EQ(c.bucket[0], b1);
  EXPECT_EQ(c.bucket[3], (b1 ^ fh) & h.index_mask());
  EXPECT_EQ(c.bucket[1], b1 ^ (fh & 0x1F));
  EXPECT_EQ(c.bucket[2], b1 ^ (fh & 0x3E0));
}

TEST(VerticalHasherTest, OffsetsConfinedToFingerprintBlock) {
  // With offset width f < index width w, all four candidates share the high
  // w - f index bits: the table decomposes into aligned 2^f-bucket blocks.
  // This is the structural cause of Fig. 4's f-dependence.
  const VerticalHasher h(18, 8, 0x0F);
  Xoshiro256 rng(3);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t b1 = rng.Next() & h.index_mask();
    const Candidates4 c = h.Candidates(b1, rng.Next());
    for (std::uint64_t member : c.bucket) {
      ASSERT_EQ(member >> 8, b1 >> 8) << "candidate escaped its block";
    }
  }
}

TEST(VerticalHasherTest, Theorem1CyclicAccessFromEveryMember) {
  // From ANY candidate, Alternates() must reproduce exactly the other three
  // (as a set, including the viewpoint itself via the degenerate dup case).
  Xoshiro256 rng(17);
  const VerticalHasher h(14, 14, LowMask(7));
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t b1 = rng.Next() & h.index_mask();
    const std::uint64_t fh = rng.Next();
    const Candidates4 c = h.Candidates(b1, fh);
    const std::set<std::uint64_t> full = AsSet(c);
    for (std::uint64_t member : c.bucket) {
      const auto alts = h.Alternates(member, fh);
      std::set<std::uint64_t> reached(alts.begin(), alts.end());
      reached.insert(member);
      EXPECT_EQ(reached, full) << "viewpoint " << member;
    }
  }
}

TEST(VerticalHasherTest, Theorem1HoldsWithNarrowTable) {
  // Index space narrower than the offset space (tiny tables): closure must
  // survive the extra index-mask reduction.
  Xoshiro256 rng(19);
  const VerticalHasher h(6, 14, LowMask(7));
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t b1 = rng.Next() & h.index_mask();
    const std::uint64_t fh = rng.Next();
    const Candidates4 c = h.Candidates(b1, fh);
    const std::set<std::uint64_t> full = AsSet(c);
    for (std::uint64_t member : c.bucket) {
      const auto alts = h.Alternates(member, fh);
      std::set<std::uint64_t> reached(alts.begin(), alts.end());
      reached.insert(member);
      ASSERT_EQ(reached, full);
    }
  }
}

TEST(VerticalHasherTest, Theorem1RequiresComplementaryMasks) {
  // Negative control: with bm2 != ~bm1 the candidate set is NOT closed
  // under the Eq. 4 derivation. We emulate a broken hasher by combining
  // fragments of two different hashers.
  const VerticalHasher good(8, 8, 0x0F);
  const std::uint64_t b1 = 0x12;
  const std::uint64_t fh = 0xB7;  // both fragments non-zero
  const Candidates4 c = good.Candidates(b1, fh);
  // A wrong mask pair (bm2 == bm1) collapses B2 == B3; derived sets differ.
  const std::uint64_t wrong_b3 = b1 ^ (fh & 0x0F);  // using bm1 twice
  EXPECT_NE(wrong_b3, c.bucket[2]);
}

TEST(VerticalHasherTest, DegenerateFragmentsYieldTwoDistinctBuckets) {
  const VerticalHasher h(8, 8, 0x0F);
  const std::uint64_t b1 = 0x55;
  // fh & bm1 == 0: candidates collapse pairwise (B1==B2, B3==B4).
  const std::uint64_t fh = 0xA0;
  EXPECT_FALSE(h.YieldsFourDistinct(fh));
  const Candidates4 c = h.Candidates(b1, fh);
  EXPECT_EQ(c.bucket[0], c.bucket[1]);
  EXPECT_EQ(c.bucket[2], c.bucket[3]);
  EXPECT_EQ(AsSet(c).size(), 2u);
  // Even degenerate sets stay cyclic (Theorem 1 still holds).
  for (std::uint64_t member : c.bucket) {
    const auto alts = h.Alternates(member, fh);
    std::set<std::uint64_t> reached(alts.begin(), alts.end());
    reached.insert(member);
    EXPECT_EQ(reached, AsSet(c));
  }
}

TEST(VerticalHasherTest, ZeroHashDegeneratesToOneBucket) {
  const VerticalHasher h(8, 8, 0x0F);
  const Candidates4 c = h.Candidates(0x21, 0);
  EXPECT_EQ(AsSet(c).size(), 1u);
}

TEST(VerticalHasherTest, Eq8EmpiricalFourCandidateProbability) {
  // The measured fraction of hashes yielding 4 distinct candidates matches
  // Eq. 8's closed form for several mask shapes.
  Xoshiro256 rng(23);
  for (unsigned ones : {1u, 3u, 7u, 9u}) {
    const unsigned width = 18;
    const VerticalHasher h = VerticalHasher::WithOnes(width, width, ones);
    const int trials = 200000;
    int four = 0;
    for (int t = 0; t < trials; ++t) {
      four += h.YieldsFourDistinct(rng.Next()) ? 1 : 0;
    }
    const double measured = static_cast<double>(four) / trials;
    EXPECT_NEAR(measured, h.TheoreticalR(), 0.005) << "ones=" << ones;
  }
}

TEST(VerticalHasherTest, Eq8EmpiricalWithTruncatedIndex) {
  // Offset width 14, index width 10: the effective fragments shrink and so
  // must TheoreticalR. (fp_hash is truncated to the offset width before the
  // distinctness check, as in the filters.)
  Xoshiro256 rng(29);
  const VerticalHasher h = VerticalHasher::WithOnes(10, 14, 3);
  const int trials = 200000;
  int four = 0;
  for (int t = 0; t < trials; ++t) {
    four += h.YieldsFourDistinct(rng.Next()) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(four) / trials, h.TheoreticalR(), 0.005);
}

TEST(VerticalHasherTest, BalancedFactoryMaximisesR) {
  for (unsigned width : {8u, 14u, 18u}) {
    const double balanced = VerticalHasher::Balanced(width, width).TheoreticalR();
    for (unsigned ones = 1; ones < width; ++ones) {
      EXPECT_GE(balanced + 1e-12,
                VerticalHasher::WithOnes(width, width, ones).TheoreticalR())
          << width << "/" << ones;
    }
  }
}

TEST(VerticalHasherTest, DegenerateMaskBehavesLikeCF) {
  // All-zero bm1 (or all-ones) gives bm2 = full: B2 == B1 and B3 == B4,
  // exactly the two partial-key candidates.
  const VerticalHasher h(12, 12, 0);
  const std::uint64_t b1 = 0x7FF;
  const std::uint64_t fh = 0xABC;
  const Candidates4 c = h.Candidates(b1, fh);
  EXPECT_EQ(c.bucket[0], c.bucket[1]);
  EXPECT_EQ(c.bucket[2], c.bucket[3]);
  EXPECT_EQ(c.bucket[2], (b1 ^ fh) & h.index_mask());
  EXPECT_EQ(h.TheoreticalR(), 0.0);
}

// ---------------------------------------------------------------------------
// Generalized vertical hashing (k-VCF substrate).

TEST(GeneralizedHasherTest, MaskFamilyShape) {
  const GeneralizedVerticalHasher g(16, 16, 7, 42);
  EXPECT_EQ(g.k(), 7u);
  EXPECT_EQ(g.mask(0), 0u);
  EXPECT_EQ(g.mask(6), LowMask(16));
  std::set<std::uint64_t> distinct;
  for (unsigned e = 0; e < g.k(); ++e) distinct.insert(g.mask(e));
  EXPECT_EQ(distinct.size(), 7u);
}

TEST(GeneralizedHasherTest, RejectsInvalidConfigs) {
  EXPECT_THROW(GeneralizedVerticalHasher(16, 16, 1, 0), std::invalid_argument);
  EXPECT_THROW(GeneralizedVerticalHasher(0, 16, 4, 0), std::invalid_argument);
  EXPECT_THROW(GeneralizedVerticalHasher(16, 0, 4, 0), std::invalid_argument);
  EXPECT_THROW(GeneralizedVerticalHasher(1, 1, 3, 0), std::invalid_argument);
  EXPECT_NO_THROW(GeneralizedVerticalHasher(1, 1, 2, 0));
  EXPECT_NO_THROW(GeneralizedVerticalHasher(2, 2, 4, 0));
}

TEST(GeneralizedHasherTest, Theorem2SiblingDerivation) {
  // Eq. 7: for every ordered pair (g, e), FromSibling(B_g, h, g, e) == B_e.
  Xoshiro256 rng(31);
  const GeneralizedVerticalHasher gh(14, 14, 9, 7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t b1 = rng.Next() & gh.index_mask();
    const std::uint64_t fh = rng.Next();
    std::vector<std::uint64_t> cand(gh.k());
    for (unsigned e = 0; e < gh.k(); ++e) cand[e] = gh.Candidate(b1, fh, e);
    for (unsigned g = 0; g < gh.k(); ++g) {
      for (unsigned e = 0; e < gh.k(); ++e) {
        ASSERT_EQ(gh.FromSibling(cand[g], fh, g, e), cand[e])
            << "g=" << g << " e=" << e;
      }
    }
  }
}

TEST(GeneralizedHasherTest, Theorem2WithNarrowIndex) {
  Xoshiro256 rng(37);
  const GeneralizedVerticalHasher gh(8, 16, 6, 11);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t b1 = rng.Next() & gh.index_mask();
    const std::uint64_t fh = rng.Next() & LowMask(16);
    std::vector<std::uint64_t> cand(gh.k());
    for (unsigned e = 0; e < gh.k(); ++e) {
      cand[e] = gh.Candidate(b1, fh, e);
      ASSERT_LE(cand[e], gh.index_mask());
    }
    for (unsigned g = 0; g < gh.k(); ++g) {
      for (unsigned e = 0; e < gh.k(); ++e) {
        ASSERT_EQ(gh.FromSibling(cand[g], fh, g, e), cand[e]);
      }
    }
  }
}

TEST(GeneralizedHasherTest, KEqualsTwoIsPartialKeyCuckoo) {
  const GeneralizedVerticalHasher g(12, 12, 2, 5);
  const std::uint64_t b1 = 0x123;
  const std::uint64_t fh = 0x9AB;
  EXPECT_EQ(g.Candidate(b1, fh, 0), b1);
  EXPECT_EQ(g.Candidate(b1, fh, 1), (b1 ^ fh) & LowMask(12));
}

TEST(GeneralizedHasherTest, DeterministicMaskFamilyPerSeed) {
  const GeneralizedVerticalHasher a(16, 16, 6, 99);
  const GeneralizedVerticalHasher b(16, 16, 6, 99);
  const GeneralizedVerticalHasher c(16, 16, 6, 100);
  for (unsigned e = 0; e < 6; ++e) EXPECT_EQ(a.mask(e), b.mask(e));
  bool any_diff = false;
  for (unsigned e = 1; e + 1 < 6; ++e) any_diff |= a.mask(e) != c.mask(e);
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace vcf
