#include "core/concurrent_filter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::unique_ptr<ConcurrentFilter> MakeConcurrentVcf() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  return std::make_unique<ConcurrentFilter>(
      std::make_unique<VerticalCuckooFilter>(p));
}

TEST(ConcurrentFilterTest, RejectsNullInner) {
  EXPECT_THROW(ConcurrentFilter(nullptr), std::invalid_argument);
}

TEST(ConcurrentFilterTest, SingleThreadedSemanticsDelegate) {
  auto f = MakeConcurrentVcf();
  EXPECT_EQ(f->Name(), "Concurrent(VCF)");
  EXPECT_TRUE(f->SupportsDeletion());
  EXPECT_TRUE(f->Insert(7));
  EXPECT_TRUE(f->Contains(7));
  EXPECT_EQ(f->ItemCount(), 1u);
  EXPECT_TRUE(f->Erase(7));
  EXPECT_EQ(f->ItemCount(), 0u);
  f->Insert(9);
  f->Clear();
  EXPECT_FALSE(f->Contains(9));
}

TEST(ConcurrentFilterTest, ParallelReadersSeeStableAnswers) {
  auto f = MakeConcurrentVcf();
  const auto keys = UniformKeys(2000, 91);
  for (const auto k : keys) ASSERT_TRUE(f->Insert(k));

  std::atomic<int> misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 5000; ++iter) {
        const auto& k = keys[(t * 5000 + iter) % keys.size()];
        if (!f->Contains(k)) misses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(misses.load(), 0);
}

TEST(ConcurrentFilterTest, WritersAndReadersInterleaveSafely) {
  auto f = MakeConcurrentVcf();
  // Pre-populate a stable core set that must never go missing.
  const auto core = UniformKeys(1000, 92);
  for (const auto k : core) ASSERT_TRUE(f->Insert(k));

  std::atomic<bool> stop{false};
  std::atomic<int> core_misses{0};

  std::thread writer([&] {
    // Churn a disjoint stream: insert then erase, repeatedly.
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = UniformKeyAt(93, i % 500);
      f->Insert(k);
      f->Erase(k);
      ++i;
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 20000; ++iter) {
        const auto& k = core[(t * 20000 + iter) % core.size()];
        if (!f->Contains(k)) core_misses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(core_misses.load(), 0)
      << "a core key vanished while unrelated keys churned";
  for (const auto k : core) ASSERT_TRUE(f->Contains(k));
}

TEST(ConcurrentFilterTest, ParallelWritersKeepBookkeepingExact) {
  auto f = MakeConcurrentVcf();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        f->Insert(UniformKeyAt(100 + t, i));
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(f->ItemCount(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(f->Contains(UniformKeyAt(100 + t, i)));
    }
  }
}

TEST(ConcurrentFilterTest, StatePassthrough) {
  auto f = MakeConcurrentVcf();
  f->Insert(42);
  std::stringstream blob;
  ASSERT_TRUE(f->SaveState(blob));
  auto g = MakeConcurrentVcf();
  ASSERT_TRUE(g->LoadState(blob));
  EXPECT_TRUE(g->Contains(42));
}

}  // namespace
}  // namespace vcf
