// Checkpoint-blob robustness: LoadState consumes untrusted bytes (restart
// recovery reads whatever is on disk), so flipping ANY bit of a valid blob
// must produce a clean rejection or a still-consistent filter — never a
// crash, never silent corruption of the receiving filter on rejection.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> BlobSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 6;  // small blob => exhaustive byte coverage is cheap
  return {
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0},
  };
}

class StateBlobFuzzTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(StateBlobFuzzTest, EveryByteFlipIsHandled) {
  auto source = MakeFilter(GetParam());
  const auto keys = UniformKeys(source->SlotCount() / 2, 1201);
  for (const auto k : keys) source->Insert(k);
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();

  // Canary state in the target: must survive every rejected load.
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    std::string corrupted = blob;
    corrupted[byte] ^= 0x20;
    auto target = MakeFilter(GetParam());
    target->Insert(0xCA11AB1E);
    std::stringstream in(corrupted);
    const bool loaded = target->LoadState(in);
    if (!loaded) {
      ASSERT_TRUE(target->Contains(0xCA11AB1E))
          << GetParam().DisplayName() << ": rejected load clobbered state (byte "
          << byte << ")";
    } else {
      // A flip that survives validation must still yield a usable filter
      // (payload checksum makes this effectively impossible for table
      // bytes; header-adjacent no-op flips may slip through).
      ASSERT_NO_FATAL_FAILURE({
        target->Insert(1);
        target->Contains(1);
      });
    }
  }
}

TEST_P(StateBlobFuzzTest, TruncationAtEveryLengthIsRejected) {
  auto source = MakeFilter(GetParam());
  for (const auto k : UniformKeys(100, 1202)) source->Insert(k);
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();

  for (std::size_t len = 0; len < blob.size(); len += 7) {
    auto target = MakeFilter(GetParam());
    std::stringstream in(blob.substr(0, len));
    EXPECT_FALSE(target->LoadState(in))
        << GetParam().DisplayName() << " accepted a " << len << "-byte prefix";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blobs, StateBlobFuzzTest, ::testing::ValuesIn(BlobSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
