// Checkpoint-blob robustness: LoadState consumes untrusted bytes (restart
// recovery reads whatever is on disk), so flipping ANY bit of a valid blob
// must produce a clean rejection or a still-consistent filter — never a
// crash, never silent corruption of the receiving filter on rejection.
// The sweep is exhaustive: all 8 flips of every byte, and truncation at
// every possible length.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "core/elastic_filter.hpp"
#include "harness/filter_factory.hpp"
#include "segment/segment.hpp"
#include "tiered/tiered_filter.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> BlobSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 6;  // small blob => exhaustive bit coverage is cheap
  std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kKVCF, 5, p, 12.0, 0, false},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0, false},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0, false},
      // Resilient wrapper: its own header + stash section + checksum wrap
      // the inner blob, and rejection must leave BOTH layers untouched.
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0, true},
  };
  // Tiered checkpoints concatenate a front blob, a tombstone manifest and
  // per-segment framed blobs; a flip in ANY of those layers must reject
  // all-or-nothing. One spec per segment builder.
  FilterSpec tiered_bfuse{FilterSpec::Kind::kVCF, 0, p, 12.0, 0, false};
  tiered_bfuse.tiered = true;
  specs.push_back(tiered_bfuse);
  FilterSpec tiered_xor{FilterSpec::Kind::kCF, 0, p, 12.0, 0, false};
  tiered_xor.tiered = true;
  tiered_xor.tiered_segment = 1;
  specs.push_back(tiered_xor);
  // Elastic wrapper: its body carries the growth level, the migration
  // cursor, the stash (with its own checksum) and one framed blob per sub —
  // and the harness leaves it mid-migration, so every flip also attacks the
  // resume-a-resize path.
  FilterSpec elastic{FilterSpec::Kind::kVCF, 0, p, 12.0, 0, false};
  elastic.elastic = true;
  specs.push_back(elastic);
  return specs;
}

// Tiered sources would otherwise checkpoint with zero segments (the harness
// inserts only SlotCount()/2 keys, below the freeze watermark). Force a
// freeze, land a few post-freeze keys in the front and tombstone one frozen
// key so the blob exercises every section of the tier format: front blob,
// manifest with tombstones, and segment blobs.
void DeepenIfTiered(Filter& source, std::uint64_t frozen_key) {
  auto* tier = dynamic_cast<TieredFilter*>(&source);
  if (tier == nullptr) return;
  ASSERT_TRUE(tier->Freeze());
  ASSERT_GE(tier->SegmentCount(), 1u);
  for (const auto k : UniformKeys(8, 1203)) tier->Insert(k);
  ASSERT_TRUE(tier->Erase(frozen_key));
  ASSERT_GE(tier->TombstoneCount(), 1u);
}

// Elastic sources would otherwise checkpoint as a boring single sub (the
// harness load sits below the growth watermark). Start a growth step and
// run the cursor a few buckets in, so the blob locks the mid-migration
// checkpoint sections: level, cursor, stash and BOTH sub blobs.
void DeepenIfElastic(Filter& source) {
  auto* elastic = dynamic_cast<ElasticFilter*>(&source);
  if (elastic == nullptr) return;
  ASSERT_TRUE(elastic->BeginGrow());
  elastic->MigrateStep(3);
  ASSERT_TRUE(elastic->Migrating());
}

class StateBlobFuzzTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(StateBlobFuzzTest, EveryBitFlipIsHandled) {
  auto source = MakeFilter(GetParam());
  const auto keys = UniformKeys(source->SlotCount() / 2, 1201);
  for (const auto k : keys) source->Insert(k);
  ASSERT_NO_FATAL_FAILURE(DeepenIfTiered(*source, keys.front()));
  ASSERT_NO_FATAL_FAILURE(DeepenIfElastic(*source));
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();
  ASSERT_FALSE(blob.empty());

  // A fresh target with canary state: on rejection the canary must still be
  // present AND the item count unchanged (all-or-nothing LoadState).
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ (1u << bit));
      auto target = MakeFilter(GetParam());
      target->Insert(0xCA11AB1E);
      const std::size_t count_before = target->ItemCount();
      std::stringstream in(corrupted);
      const bool loaded = target->LoadState(in);
      if (!loaded) {
        ASSERT_EQ(target->ItemCount(), count_before)
            << GetParam().DisplayName() << ": rejected load mutated item count"
            << " (byte " << byte << ", bit " << bit << ")";
        ASSERT_TRUE(target->Contains(0xCA11AB1E))
            << GetParam().DisplayName()
            << ": rejected load clobbered state (byte " << byte << ", bit "
            << bit << ")";
      } else {
        // A flip that survives validation must still yield a usable filter
        // (payload checksum makes this effectively impossible for table
        // bytes; header-adjacent no-op flips may slip through).
        ASSERT_NO_FATAL_FAILURE({
          target->Insert(1);
          target->Contains(1);
        });
      }
    }
  }
}

TEST_P(StateBlobFuzzTest, TruncationAtEveryLengthIsRejected) {
  auto source = MakeFilter(GetParam());
  const auto keys = UniformKeys(100, 1202);
  for (const auto k : keys) source->Insert(k);
  ASSERT_NO_FATAL_FAILURE(DeepenIfTiered(*source, keys.front()));
  ASSERT_NO_FATAL_FAILURE(DeepenIfElastic(*source));
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();

  for (std::size_t len = 0; len < blob.size(); ++len) {
    auto target = MakeFilter(GetParam());
    target->Insert(0xCA11AB1E);
    const std::size_t count_before = target->ItemCount();
    std::stringstream in(blob.substr(0, len));
    ASSERT_FALSE(target->LoadState(in))
        << GetParam().DisplayName() << " accepted a " << len << "-byte prefix";
    ASSERT_EQ(target->ItemCount(), count_before)
        << GetParam().DisplayName() << ": rejected " << len
        << "-byte prefix mutated item count";
    ASSERT_TRUE(target->Contains(0xCA11AB1E))
        << GetParam().DisplayName() << ": rejected " << len
        << "-byte prefix clobbered state";
  }
}

// Raw ImmutableSegment blobs, below the tier wrapper: the segment format
// carries its own meta frame, sidecar and checksums, and LoadState
// re-verifies every sidecar entity against the probe array — so a surviving
// flip must still yield a segment that answers its own enumeration.
class SegmentBlobFuzzTest : public ::testing::TestWithParam<SegmentKind> {
 protected:
  SegmentParams Params() const {
    SegmentParams p;
    p.kind = GetParam();
    p.fingerprint_bits = 8;
    return p;
  }
  static std::string BuildBlob(const SegmentParams& params) {
    std::vector<std::uint64_t> entities;
    for (std::size_t i = 0; i < 40; ++i) {
      entities.push_back(UniformKeyAt(1204, i));
    }
    const auto seg = ImmutableSegment::Build(entities, params);
    EXPECT_TRUE(seg.has_value());
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(seg->SaveState(out));
    return out.str();
  }
};

TEST_P(SegmentBlobFuzzTest, EveryBitFlipIsHandled) {
  const SegmentParams params = Params();
  const std::string blob = BuildBlob(params);
  ASSERT_FALSE(blob.empty());
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ (1u << bit));
      std::istringstream in(corrupted);
      const auto loaded = ImmutableSegment::LoadState(in, params);
      if (loaded.has_value()) {
        for (const std::uint64_t e : loaded->Entities()) {
          ASSERT_TRUE(loaded->Contains(e))
              << "accepted flip broke the no-false-negative guarantee"
              << " (byte " << byte << ", bit " << bit << ")";
        }
      }
    }
  }
}

TEST_P(SegmentBlobFuzzTest, TruncationAtEveryLengthIsRejected) {
  const SegmentParams params = Params();
  const std::string blob = BuildBlob(params);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream in(blob.substr(0, len));
    ASSERT_FALSE(ImmutableSegment::LoadState(in, params).has_value())
        << "accepted a " << len << "-byte prefix";
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SegmentBlobFuzzTest,
                         ::testing::Values(SegmentKind::kXor,
                                           SegmentKind::kBinaryFuse),
                         [](const ::testing::TestParamInfo<SegmentKind>& info) {
                           return info.param == SegmentKind::kXor
                                      ? "Xor"
                                      : "BinaryFuse";
                         });

INSTANTIATE_TEST_SUITE_P(
    Blobs, StateBlobFuzzTest, ::testing::ValuesIn(BlobSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
