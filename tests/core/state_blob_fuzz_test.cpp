// Checkpoint-blob robustness: LoadState consumes untrusted bytes (restart
// recovery reads whatever is on disk), so flipping ANY bit of a valid blob
// must produce a clean rejection or a still-consistent filter — never a
// crash, never silent corruption of the receiving filter on rejection.
// The sweep is exhaustive: all 8 flips of every byte, and truncation at
// every possible length.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> BlobSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 6;  // small blob => exhaustive bit coverage is cheap
  return {
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kKVCF, 5, p, 12.0, 0, false},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0, false},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0, false},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0, false},
      // Resilient wrapper: its own header + stash section + checksum wrap
      // the inner blob, and rejection must leave BOTH layers untouched.
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0, true},
  };
}

class StateBlobFuzzTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(StateBlobFuzzTest, EveryBitFlipIsHandled) {
  auto source = MakeFilter(GetParam());
  const auto keys = UniformKeys(source->SlotCount() / 2, 1201);
  for (const auto k : keys) source->Insert(k);
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();
  ASSERT_FALSE(blob.empty());

  // A fresh target with canary state: on rejection the canary must still be
  // present AND the item count unchanged (all-or-nothing LoadState).
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = blob;
      corrupted[byte] = static_cast<char>(
          static_cast<unsigned char>(corrupted[byte]) ^ (1u << bit));
      auto target = MakeFilter(GetParam());
      target->Insert(0xCA11AB1E);
      const std::size_t count_before = target->ItemCount();
      std::stringstream in(corrupted);
      const bool loaded = target->LoadState(in);
      if (!loaded) {
        ASSERT_EQ(target->ItemCount(), count_before)
            << GetParam().DisplayName() << ": rejected load mutated item count"
            << " (byte " << byte << ", bit " << bit << ")";
        ASSERT_TRUE(target->Contains(0xCA11AB1E))
            << GetParam().DisplayName()
            << ": rejected load clobbered state (byte " << byte << ", bit "
            << bit << ")";
      } else {
        // A flip that survives validation must still yield a usable filter
        // (payload checksum makes this effectively impossible for table
        // bytes; header-adjacent no-op flips may slip through).
        ASSERT_NO_FATAL_FAILURE({
          target->Insert(1);
          target->Contains(1);
        });
      }
    }
  }
}

TEST_P(StateBlobFuzzTest, TruncationAtEveryLengthIsRejected) {
  auto source = MakeFilter(GetParam());
  for (const auto k : UniformKeys(100, 1202)) source->Insert(k);
  std::stringstream blob_stream;
  ASSERT_TRUE(source->SaveState(blob_stream));
  const std::string blob = blob_stream.str();

  for (std::size_t len = 0; len < blob.size(); ++len) {
    auto target = MakeFilter(GetParam());
    target->Insert(0xCA11AB1E);
    const std::size_t count_before = target->ItemCount();
    std::stringstream in(blob.substr(0, len));
    ASSERT_FALSE(target->LoadState(in))
        << GetParam().DisplayName() << " accepted a " << len << "-byte prefix";
    ASSERT_EQ(target->ItemCount(), count_before)
        << GetParam().DisplayName() << ": rejected " << len
        << "-byte prefix mutated item count";
    ASSERT_TRUE(target->Contains(0xCA11AB1E))
        << GetParam().DisplayName() << ": rejected " << len
        << "-byte prefix clobbered state";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blobs, StateBlobFuzzTest, ::testing::ValuesIn(BlobSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
