// Golden-state regression harness for the cuckoo-family kernel refactor.
//
// The checked-in blobs under tests/data/golden/ were serialized by the
// pre-kernel per-filter implementations after a fixed-seed insertion
// workload, and the manifest records the operation counters those runs
// produced. The tests replay the identical workload through today's code
// and require (a) bit-identical serialized state — same RNG draw sequence,
// same eviction paths, same envelope bytes — and (b) identical eviction /
// probe / hash counters. A blob is also restored into a fresh filter and
// re-serialized, which must reproduce the file byte-for-byte.
//
// Regenerating (only legitimate when the on-disk format itself changes, in
// which case the version field must change too):
//   VCF_REGEN_GOLDEN=1 ./blob_golden_test
#include "harness/filter_factory.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace vcf {
namespace {

#ifndef VCF_GOLDEN_DIR
#error "VCF_GOLDEN_DIR must point at tests/data/golden"
#endif

struct GoldenCase {
  const char* tag;     // file stem under tests/data/golden/
  const char* filter;  // factory spelling (ParseFilterKind)
  unsigned variant;
  double load;  // fill target as a fraction of SlotCount()
};

// Every cuckoo-family kind, packed and (where the layout applies)
// cache-aligned. Loads near saturation so eviction chains — including
// failed, rolled-back ones — are part of the locked behaviour.
const GoldenCase kCases[] = {
    {"cf", "cf", 0, 0.95},
    {"vcf", "vcf", 0, 0.95},
    {"ivcf3", "ivcf", 3, 0.95},
    {"dvcf4", "dvcf", 4, 0.95},
    {"kvcf4", "kvcf", 4, 0.95},
    {"kvcf3", "kvcf", 3, 0.95},
    {"dcf4", "dcf", 4, 0.90},
    {"vf", "vf", 0, 0.90},
    {"sscf", "sscf", 0, 0.90},
    {"aligned_cf", "aligned:cf", 0, 0.95},
    {"aligned_vcf", "aligned:vcf", 0, 0.95},
    {"aligned_ivcf3", "aligned:ivcf", 3, 0.95},
    {"aligned_dvcf4", "aligned:dvcf", 4, 0.95},
    {"aligned_kvcf4", "aligned:kvcf", 4, 0.95},
    // Tiered checkpoints: the workload crosses the freeze watermark, so the
    // blob locks the whole tier format — front blob, manifest frame and at
    // least one immutable-segment blob per builder kind.
    {"tiered_vcf", "tiered:vcf", 0, 0.95},
    {"tiered_xor_cf", "tiered:xor:cf", 0, 0.95},
    // Elastic checkpoint: 0.95 of the STARTING capacity crosses the 0.85
    // auto-grow watermark with too few inserts left to finish the paced
    // migration, so the blob deterministically locks the mid-migration
    // sections — growth level, cursor, stash and both framed sub blobs.
    {"elastic_vcf", "elastic:vcf", 0, 0.95},
};

struct RunResult {
  std::size_t accepted = 0;
  std::uint64_t evictions = 0;
  std::uint64_t failures = 0;
  std::uint64_t probes = 0;
  std::uint64_t hashes = 0;
  std::string blob;
};

FilterSpec SpecFor(const GoldenCase& c) {
  FilterSpec spec;
  ParseFilterKind(c.filter, spec);
  spec.variant = c.variant;
  spec.params = CuckooParams::ForSlotsLog2(12);  // 1024 buckets x 4 slots
  return spec;
}

RunResult RunWorkload(const GoldenCase& c) {
  const auto filter = MakeFilter(SpecFor(c));
  const std::size_t n =
      static_cast<std::size_t>(c.load * static_cast<double>(filter->SlotCount()));
  RunResult r;
  for (std::size_t i = 0; i < n; ++i) {
    r.accepted += filter->Insert(0x9E3779B97F4A7C15ULL * (i + 1)) ? 1 : 0;
  }
  const OpCounters& k = filter->counters();
  r.evictions = k.evictions;
  r.failures = k.insert_failures;
  r.probes = k.bucket_probes;
  r.hashes = k.hash_computations;
  std::ostringstream out(std::ios::binary);
  EXPECT_TRUE(filter->SaveState(out)) << c.tag;
  r.blob = out.str();
  return r;
}

std::string GoldenPath(const std::string& name) {
  return std::string(VCF_GOLDEN_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ManifestRow {
  std::size_t accepted;
  std::uint64_t evictions, failures, probes, hashes;
};

std::map<std::string, ManifestRow> ReadManifest(bool* ok) {
  std::map<std::string, ManifestRow> rows;
  std::ifstream in(GoldenPath("manifest.txt"));
  *ok = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    ManifestRow row{};
    if (fields >> tag >> row.accepted >> row.evictions >> row.failures >>
        row.probes >> row.hashes) {
      rows[tag] = row;
    }
  }
  return rows;
}

bool RegenRequested() {
  const char* env = std::getenv("VCF_REGEN_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

TEST(BlobGolden, RegenerateWhenRequested) {
  if (!RegenRequested()) GTEST_SKIP() << "set VCF_REGEN_GOLDEN=1 to regenerate";
  std::ofstream manifest(GoldenPath("manifest.txt"));
  ASSERT_TRUE(manifest) << "cannot write " << GoldenPath("manifest.txt");
  manifest << "# tag accepted evictions failures probes hashes\n";
  for (const GoldenCase& c : kCases) {
    const RunResult r = RunWorkload(c);
    std::ofstream blob(GoldenPath(std::string(c.tag) + ".blob"),
                       std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(blob) << c.tag;
    blob.write(r.blob.data(), static_cast<std::streamsize>(r.blob.size()));
    ASSERT_TRUE(blob) << c.tag;
    manifest << c.tag << ' ' << r.accepted << ' ' << r.evictions << ' '
             << r.failures << ' ' << r.probes << ' ' << r.hashes << '\n';
  }
}

// The fixed-seed workload must reproduce the pre-refactor counters exactly:
// same eviction count means same eviction paths (each kick is one counter
// tick), same probe/hash totals mean no hidden extra work.
TEST(BlobGolden, WorkloadCountersMatchPreRefactor) {
  if (RegenRequested()) GTEST_SKIP();
  bool ok = false;
  const auto manifest = ReadManifest(&ok);
  ASSERT_TRUE(ok) << "missing " << GoldenPath("manifest.txt");
  ASSERT_EQ(manifest.size(), std::size(kCases));
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.tag);
    const auto it = manifest.find(c.tag);
    ASSERT_NE(it, manifest.end());
    const RunResult r = RunWorkload(c);
    EXPECT_EQ(r.accepted, it->second.accepted);
    EXPECT_EQ(r.evictions, it->second.evictions);
    EXPECT_EQ(r.failures, it->second.failures);
    EXPECT_EQ(r.probes, it->second.probes);
    EXPECT_EQ(r.hashes, it->second.hashes);
  }
}

// The serialized state after the workload must be byte-identical to the
// pre-refactor blob: header, digest and payload all unchanged.
TEST(BlobGolden, SerializedStateMatchesPreRefactor) {
  if (RegenRequested()) GTEST_SKIP();
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.tag);
    bool ok = false;
    const std::string golden = ReadFile(GoldenPath(std::string(c.tag) + ".blob"), &ok);
    ASSERT_TRUE(ok) << "missing golden blob for " << c.tag;
    const RunResult r = RunWorkload(c);
    EXPECT_EQ(r.blob, golden);
  }
}

// A golden blob must restore into a freshly built filter and re-serialize
// byte-identically (the satellite's load/re-save round trip).
TEST(BlobGolden, LoadThenResaveIsByteIdentical) {
  if (RegenRequested()) GTEST_SKIP();
  for (const GoldenCase& c : kCases) {
    SCOPED_TRACE(c.tag);
    bool ok = false;
    const std::string golden = ReadFile(GoldenPath(std::string(c.tag) + ".blob"), &ok);
    ASSERT_TRUE(ok) << "missing golden blob for " << c.tag;
    const auto filter = MakeFilter(SpecFor(c));
    std::istringstream in(golden);
    ASSERT_TRUE(filter->LoadState(in)) << c.tag;
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(filter->SaveState(out)) << c.tag;
    EXPECT_EQ(out.str(), golden);
  }
}

// Layout portability: an aligned-layout filter's blob is canonical packed
// bytes, so it must equal its packed twin's blob bit-for-bit.
TEST(BlobGolden, AlignedBlobsAreLayoutCanonical) {
  if (RegenRequested()) GTEST_SKIP();
  const std::pair<const char*, const char*> twins[] = {
      {"aligned_cf", "cf"},         {"aligned_vcf", "vcf"},
      {"aligned_ivcf3", "ivcf3"},   {"aligned_dvcf4", "dvcf4"},
      {"aligned_kvcf4", "kvcf4"},
  };
  for (const auto& [aligned_tag, packed_tag] : twins) {
    SCOPED_TRACE(aligned_tag);
    bool ok_a = false;
    bool ok_p = false;
    const std::string aligned =
        ReadFile(GoldenPath(std::string(aligned_tag) + ".blob"), &ok_a);
    const std::string packed =
        ReadFile(GoldenPath(std::string(packed_tag) + ".blob"), &ok_p);
    ASSERT_TRUE(ok_a && ok_p);
    EXPECT_EQ(aligned, packed);
  }
}

}  // namespace
}  // namespace vcf
