// Concurrent overload stress: the eviction-failure failpoint is armed at
// probability 0.1 while 4 writer threads insert through
// ConcurrentFilter(ResilientFilter(VCF)) and reader threads continuously
// verify that no key whose insert was reported successful ever goes missing
// — the end-to-end guarantee the stash exists to provide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"
#include "core/concurrent_filter.hpp"
#include "core/resilient_filter.hpp"
#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(ResilientStressTest, NoAcceptedKeyLostUnderConcurrentInjectedFailures) {
  auto& evict =
      FailpointRegistry::Instance().Get(failpoints::kEvictionExhausted);
  evict.ResetCounts();
  evict.ArmProbability(0.1, /*seed=*/0xBADF00D);

  CuckooParams params;
  params.bucket_count = 1 << 11;  // 8192 slots
  ResilientOptions options;
  options.stash_capacity = 512;
  ConcurrentFilter filter(std::make_unique<ResilientFilter>(
      std::make_unique<VerticalCuckooFilter>(params), options));

  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  // 4 writers × ~1900 keys ≈ 93% load if everything lands.
  const std::size_t per_writer = filter.SlotCount() * 93 / 100 / kWriters;

  // accepted[w] is written by writer w only; readers take the size snapshot
  // under the mutex, so they only see fully published keys.
  std::vector<std::vector<std::uint64_t>> accepted(kWriters);
  std::mutex accepted_mutex;
  std::atomic<bool> writers_done{false};
  std::atomic<std::size_t> reader_checks{0};
  std::atomic<std::size_t> reader_misses{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const auto keys =
          UniformKeys(per_writer, /*stream=*/1000 + static_cast<std::uint64_t>(w));
      for (const auto key : keys) {
        if (filter.Insert(key)) {
          std::lock_guard lock(accepted_mutex);
          accepted[static_cast<std::size_t>(w)].push_back(key);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::uint64_t cursor = static_cast<std::uint64_t>(r);
      // Keep going until at least one check has landed: on a single-core
      // host the writers can finish before a reader is ever scheduled, and
      // the reader_checks > 0 assertion below wants real coverage.
      while (!writers_done.load(std::memory_order_acquire) ||
             reader_checks.load() == 0) {
        // Sample a published key and verify it is still visible.
        std::uint64_t key = 0;
        bool have_key = false;
        {
          std::lock_guard lock(accepted_mutex);
          const auto& lane = accepted[cursor % kWriters];
          if (!lane.empty()) {
            key = lane[cursor % lane.size()];
            have_key = true;
          }
        }
        ++cursor;
        if (!have_key) continue;
        ++reader_checks;
        if (!filter.Contains(key)) ++reader_misses;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  ASSERT_GT(evict.triggers(), 0u) << "failpoint never exercised";
  EXPECT_GT(reader_checks.load(), 0u);
  EXPECT_EQ(reader_misses.load(), 0u);

  // Final sweep: every accepted key, from every writer, is still present.
  std::size_t total_accepted = 0;
  std::size_t lost = 0;
  for (const auto& lane : accepted) {
    total_accepted += lane.size();
    for (const auto key : lane) lost += filter.Contains(key) ? 0 : 1;
  }
  EXPECT_GT(total_accepted, 0u);
  EXPECT_EQ(lost, 0u) << "of " << total_accepted << " accepted keys";

  // The failure path was genuinely exercised through the wrapper stack.
  const auto& resilient = static_cast<const ResilientFilter&>(filter.inner());
  EXPECT_GT(resilient.counters().stash_inserts.Value(), 0u);

  evict.Disarm();
}

}  // namespace
}  // namespace vcf
