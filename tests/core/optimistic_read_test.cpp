// Lock-free optimistic read path, hammered under real concurrency. For each
// factory spelling — the internally locked sharded wrapper plus
// ConcurrentFilter around the resilient and tiered stacks — reader threads
// run seqlock Contains/ContainsBatch against a resident key set while
// writer threads churn inserts and erases (insert-only on the tiered
// stacks, where the churn drives the front across its freeze watermark so
// Freeze runs concurrently with the optimistic readers — see the in-test
// comment for why erase is excluded there). Run under TSan this is the
// suite that
// proves the relaxed-probe/validate protocol race-free.
//
// Assertions:
//   - zero false negatives: a resident key is visible in every read,
//   - bounded retries: a fallback is taken only after exactly
//     kOptimisticRetries failed validations, so retries >= 8 * fallbacks,
//   - quiesced reads validate first try: no retries with no writers, and
//     optimistic results agree bit-for-bit with the locked read path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/concurrent_filter.hpp"
#include "core/elastic_filter.hpp"
#include "core/resilient_filter.hpp"
#include "core/sharded_filter.hpp"
#include "harness/filter_factory.hpp"
#include "tiered/tiered_filter.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

/// Collects every TieredFilter reachable through the wrapper stack (the
/// concurrent wrapper, shards, and the resilient shim are all transparent).
void CollectTiered(Filter& f, std::vector<TieredFilter*>& out) {
  if (auto* c = dynamic_cast<ConcurrentFilter*>(&f)) {
    CollectTiered(c->inner(), out);
  } else if (auto* s = dynamic_cast<ShardedFilter*>(&f)) {
    for (std::size_t i = 0; i < s->shard_count(); ++i) {
      CollectTiered(s->shard(i), out);
    }
  } else if (auto* r = dynamic_cast<ResilientFilter*>(&f)) {
    CollectTiered(r->inner(), out);
  } else if (auto* t = dynamic_cast<TieredFilter*>(&f)) {
    out.push_back(t);
  }
}

/// A thread-safe filter stack built from a `--filter` spelling, with a
/// uniform handle on the seqlock knobs of whichever wrapper provides them.
struct Rig {
  std::unique_ptr<Filter> filter;
  ShardedFilter* sharded = nullptr;        // internally locked spellings
  ConcurrentFilter* concurrent = nullptr;  // externally wrapped spellings

  Filter& f() { return *filter; }
  void SetOptimistic(bool on) {
    if (sharded != nullptr) sharded->SetOptimisticReads(on);
    if (concurrent != nullptr) concurrent->SetOptimisticReads(on);
  }
  std::uint64_t retries() const {
    return sharded != nullptr ? sharded->seqlock_retries()
                              : concurrent->seqlock_retries();
  }
  std::uint64_t fallbacks() const {
    return sharded != nullptr ? sharded->seqlock_fallbacks()
                              : concurrent->seqlock_fallbacks();
  }
};

Rig MakeRig(const std::string& spelling) {
  FilterSpec spec;
  ParseFilterKind(spelling, spec);
  spec.params = CuckooParams::ForSlotsLog2(14);  // 16k slots
  spec.params.hash = HashKind::kSplitMix;
  spec.params.seed = 0xC0FFEE;
  Rig rig;
  auto built = MakeFilter(spec);
  if (spec.shards > 0) {
    rig.sharded = dynamic_cast<ShardedFilter*>(built.get());
    EXPECT_NE(rig.sharded, nullptr) << spelling;
    rig.filter = std::move(built);
  } else {
    auto wrapper = std::make_unique<ConcurrentFilter>(std::move(built));
    rig.concurrent = wrapper.get();
    rig.filter = std::move(wrapper);
  }
  rig.SetOptimistic(true);
  return rig;
}

class OptimisticReadTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OptimisticReadTest, ConcurrentReadersNeverMissResidentKeys) {
  Rig rig = MakeRig(GetParam());

  // Resident set: inserted up front and never erased (4000 keys overflows
  // a tiered front several times over, so part of the set already lives in
  // frozen segments when the hammer starts). The churn below only ever
  // erases its own accepted keys, so a resident miss through the
  // optimistic path would be a protocol bug, not FP noise.
  std::vector<std::uint64_t> resident;
  for (const auto key : UniformKeys(4000, /*stream=*/600)) {
    if (rig.f().Insert(key)) resident.push_back(key);
  }
  ASSERT_GT(resident.size(), 3000u);

  // For the tiered stacks, seal the residents into immutable segments
  // before the hammer starts, and run the churn insert-only. Erase over a
  // tiered filter is approximate by design, twice over: a churn key frozen
  // between its insert and erase falls through to the mutable front where
  // its fingerprint can alias another key's copy, and the tombstone it
  // leaves shadows a whole canonical (bucket, fingerprint) entity class —
  // either way an unrelated resident can legitimately vanish (reproducible
  // single-threaded; nothing to do with the seqlock protocol this test is
  // after). With residents pre-frozen and no erases, segments are
  // immutable and tombstone-free, so zero-false-negative stays a hard
  // assertion while Freeze still runs concurrently with the optimistic
  // readers. Erase-vs-read interleaving is covered by the non-tiered arms.
  std::vector<TieredFilter*> tiers;
  CollectTiered(rig.f(), tiers);
  std::size_t segments_before = 0;
  for (auto* t : tiers) {
    t->Freeze();
    segments_before += t->SegmentCount();
  }
  const bool tiered_stack = !tiers.empty();

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kChurnOps = 12000;
  std::atomic<int> writers_running{kWriters};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Non-tiered: every 4th accepted key stays resident, the rest are
      // erased back out. Tiered: insert-only (see above) — the retained
      // keys ratchet the front across the freeze watermark repeatedly, so
      // Freeze runs mid-hammer.
      const std::uint64_t stream = 700 + static_cast<std::uint64_t>(w);
      for (std::uint64_t i = 0; i < kChurnOps; ++i) {
        const std::uint64_t key = UniformKeyAt(stream, i);
        if (rig.f().Insert(key) && !tiered_stack && i % 4 != 0) {
          rig.f().Erase(key);
        }
      }
      writers_running.fetch_sub(1, std::memory_order_release);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      const auto batch_results =
          std::make_unique<bool[]>(resident.size());
      std::size_t cursor = static_cast<std::size_t>(r) * 31;
      do {
        // Point reads over a rotating window...
        for (int n = 0; n < 512; ++n) {
          const std::uint64_t key = resident[cursor % resident.size()];
          if (!rig.f().Contains(key)) misses.fetch_add(1);
          ++cursor;
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        // ...and one whole-set batched read.
        rig.f().ContainsBatch(resident, batch_results.get());
        for (std::size_t i = 0; i < resident.size(); ++i) {
          if (!batch_results[i]) misses.fetch_add(1);
        }
        reads.fetch_add(resident.size(), std::memory_order_relaxed);
      } while (writers_running.load(std::memory_order_acquire) > 0);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(misses.load(), 0u)
      << "optimistic read lost a resident key (" << reads.load() << " reads)";
  EXPECT_GT(reads.load(), 0u);
  // Retry budget: the wrappers take the locked fallback only after
  // kOptimisticRetries (8) failed validations, each counted individually.
  EXPECT_GE(rig.retries(), 8 * rig.fallbacks());

  if (!tiers.empty()) {
    std::size_t segments_after = 0;
    for (auto* t : tiers) segments_after += t->SegmentCount();
    EXPECT_GT(segments_after, segments_before)
        << "churn never drove a Freeze; the hammer missed its target";
  }
}

TEST_P(OptimisticReadTest, QuiescedOptimisticAgreesWithLockedPath) {
  Rig rig = MakeRig(GetParam());
  std::vector<std::uint64_t> keys;
  for (const auto key : UniformKeys(rig.f().SlotCount() / 2, /*stream=*/800)) {
    if (rig.f().Insert(key)) keys.push_back(key);
  }
  // Probe set: every stored key plus as many never-inserted ones.
  std::vector<std::uint64_t> probes = keys;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    probes.push_back(UniformKeyAt(801, i));
  }

  const std::uint64_t retries_before = rig.retries();
  std::vector<char> optimistic(probes.size());
  rig.SetOptimistic(true);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    optimistic[i] = rig.f().Contains(probes[i]) ? 1 : 0;
  }
  const auto batch_opt = std::make_unique<bool[]>(probes.size());
  rig.f().ContainsBatch(probes, batch_opt.get());

  rig.SetOptimistic(false);
  const auto batch_locked = std::make_unique<bool[]>(probes.size());
  rig.f().ContainsBatch(probes, batch_locked.get());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const bool locked = rig.f().Contains(probes[i]);
    ASSERT_EQ(optimistic[i] != 0, locked) << "probe " << i;
    ASSERT_EQ(batch_opt[i], locked) << "probe " << i;
    ASSERT_EQ(batch_locked[i], locked) << "probe " << i;
  }
  // With no concurrent writers every optimistic read validates first try.
  EXPECT_EQ(rig.retries(), retries_before);
  EXPECT_EQ(rig.fallbacks(), 0u);
}

// The elastic wrapper under an active resize: readers on the optimistic
// path while the COW directory republishes, the migration cursor moves
// entities between subs (copy-then-clear), and writer churn paces it all.
// Run under TSan this is the elastic half of the seqlock proof: a reader
// that catches a half-moved bucket fails sequence validation and re-probes
// against the fresh view, so a resident key is never reported absent.
TEST(ElasticOptimisticReadTest, ReadersSeeEveryKeyThroughAResizeMigration) {
  Rig rig = MakeRig("elastic:vcf");
  ElasticFilter* elastic = nullptr;
  rig.f().ForEachLeaf([&](Filter& leaf) {
    if (auto* e = dynamic_cast<ElasticFilter*>(&leaf)) elastic = e;
  });
  ASSERT_NE(elastic, nullptr);

  std::vector<std::uint64_t> resident;
  for (const auto key : UniformKeys(6000, /*stream=*/900)) {
    if (rig.f().Insert(key)) resident.push_back(key);
  }
  ASSERT_GT(resident.size(), 5000u);

  // Open the migration through the locked admin path (the exact shape of
  // the server's RESIZE handler) BEFORE the hammer: on a small machine the
  // writers can drain the whole migration inside one scheduler quantum, so
  // starting it first is the only way to guarantee the readers — and the
  // deterministic probe below — observe the dual-table window at all.
  rig.f().ForEachLeaf([](Filter& leaf) {
    if (auto* e = dynamic_cast<ElasticFilter*>(&leaf)) e->BeginGrow();
  });
  ASSERT_TRUE(elastic->Migrating());
  {
    // With no mutations yet, the migration cannot close underneath this
    // read: half the residents route to the fresh table and must be served
    // from the dual-read pair.
    const auto probe = std::make_unique<bool[]>(resident.size());
    rig.f().ContainsBatch(resident, probe.get());
    for (std::size_t i = 0; i < resident.size(); ++i) {
      ASSERT_TRUE(probe[i]) << "resident lost the moment the resize began";
    }
  }
  EXPECT_GT(elastic->DualReads(), 0u)
      << "no read ever consulted the migration pair";

  constexpr int kWriters = 2;
  constexpr std::uint64_t kChurnOps = 12000;
  std::atomic<int> writers_running{kWriters};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      // Every mutation paces the in-flight migration; erase-own-accepted
      // keeps resident fingerprints safe exactly as in the hammer above.
      const std::uint64_t stream = 910 + static_cast<std::uint64_t>(w);
      for (std::uint64_t i = 0; i < kChurnOps; ++i) {
        const std::uint64_t key = UniformKeyAt(stream, i);
        if (rig.f().Insert(key) && i % 4 != 0) rig.f().Erase(key);
      }
      writers_running.fetch_sub(1, std::memory_order_release);
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const auto batch_results = std::make_unique<bool[]>(resident.size());
      std::size_t cursor = static_cast<std::size_t>(r) * 67;
      do {
        for (int n = 0; n < 512; ++n) {
          const std::uint64_t key = resident[cursor % resident.size()];
          if (!rig.f().Contains(key)) misses.fetch_add(1);
          ++cursor;
          reads.fetch_add(1, std::memory_order_relaxed);
        }
        rig.f().ContainsBatch(resident, batch_results.get());
        for (std::size_t i = 0; i < resident.size(); ++i) {
          if (!batch_results[i]) misses.fetch_add(1);
        }
        reads.fetch_add(resident.size(), std::memory_order_relaxed);
      } while (writers_running.load(std::memory_order_acquire) > 0);
    });
  }
  for (auto& t : threads) t.join();
  for (auto& t : readers) t.join();
  // Drain any unfinished tail so the post-hammer sweep runs idle.
  for (int guard = 0; elastic->Migrating() && guard < 100000; ++guard) {
    rig.f().ForEachLeaf([](Filter& leaf) {
      if (auto* e = dynamic_cast<ElasticFilter*>(&leaf)) e->MigrateStep(64);
    });
  }

  EXPECT_EQ(misses.load(), 0u)
      << "optimistic read lost a resident key mid-resize (" << reads.load()
      << " reads)";
  EXPECT_GE(elastic->Resizes(), 1u) << "the hammer never finished a resize";
  EXPECT_GE(rig.retries(), 8 * rig.fallbacks());
  for (const auto key : resident) ASSERT_TRUE(rig.f().Contains(key));
}

INSTANTIATE_TEST_SUITE_P(Spellings, OptimisticReadTest,
                         ::testing::Values("sharded:4:vcf", "resilient:vcf",
                                           "tiered:vcf",
                                           "sharded:2:resilient:tiered:vcf",
                                           "elastic:vcf",
                                           "sharded:2:elastic:vcf"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace vcf
