// ContainsBatch must agree bit-for-bit with per-key Contains for every
// filter (default loop or prefetch-pipelined override alike).
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "core/concurrent_filter.hpp"
#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> BatchSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 9;
  return {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 6, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 7, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0},
  };
}

class BatchLookupTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(BatchLookupTest, BatchMatchesScalarLookups) {
  auto filter = MakeFilter(GetParam());
  const auto members = UniformKeys(filter->SlotCount() * 7 / 10, 611);
  for (const auto k : members) filter->Insert(k);

  // Query stream: members, aliens, and duplicates interleaved, with a size
  // that is not a multiple of the pipeline window.
  std::vector<std::uint64_t> queries;
  for (std::size_t i = 0; i < 1003; ++i) {
    queries.push_back(i % 3 == 0 ? UniformKeyAt(612, i)
                                 : members[i % members.size()]);
  }
  const auto batch = std::make_unique<bool[]>(queries.size());
  filter->ContainsBatch(queries, batch.get());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i], filter->Contains(queries[i]))
        << filter->Name() << " index " << i;
  }
}

TEST_P(BatchLookupTest, EmptyBatchIsANoOp) {
  auto filter = MakeFilter(GetParam());
  filter->ContainsBatch({}, nullptr);  // must not crash
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, BatchLookupTest, ::testing::ValuesIn(BatchSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(BatchLookupTest, VcfBatchCountsLookups) {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  VerticalCuckooFilter f(p);
  const auto keys = UniformKeys(100, 613);
  for (const auto k : keys) f.Insert(k);
  f.ResetCounters();
  const auto out = std::make_unique<bool[]>(keys.size());
  f.ContainsBatch(keys, out.get());
  EXPECT_EQ(f.counters().lookups, keys.size());
  EXPECT_EQ(f.counters().bucket_probes, keys.size() * 4);
}

TEST(BatchLookupTest, ConcurrentWrapperBatches) {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  ConcurrentFilter f(std::make_unique<VerticalCuckooFilter>(p));
  const auto keys = UniformKeys(200, 614);
  for (const auto k : keys) f.Insert(k);
  const auto out = std::make_unique<bool[]>(keys.size());
  f.ContainsBatch(keys, out.get());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_TRUE(out[i]);
}

}  // namespace
}  // namespace vcf
