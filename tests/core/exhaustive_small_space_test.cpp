// Exhaustive verification on small parameter spaces: instead of sampling,
// enumerate EVERY (bucket, fingerprint-hash) pair and every mask shape for
// small widths, proving Theorems 1 and 2 and the Eq. 8 count exactly.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/model.hpp"
#include "common/bitops.hpp"
#include "core/vertical_hashing.hpp"
#include "harness/filter_factory.hpp"
#include "tiered/tiered_filter.hpp"

namespace vcf {
namespace {

TEST(ExhaustiveTest, Theorem1AllPairsAllMasksWidth6) {
  // 6-bit index/offset space: 64 buckets x 64 hashes x 63 mask shapes
  // (every bm1 except 0 and full also get covered via WithOnes elsewhere;
  // here every possible bm1 value, including degenerate ones).
  const unsigned w = 6;
  for (std::uint64_t bm1 = 0; bm1 <= LowMask(w); ++bm1) {
    const VerticalHasher h(w, w, bm1);
    for (std::uint64_t b1 = 0; b1 <= LowMask(w); ++b1) {
      for (std::uint64_t fh = 0; fh <= LowMask(w); ++fh) {
        const Candidates4 c = h.Candidates(b1, fh);
        const std::set<std::uint64_t> full(c.bucket.begin(), c.bucket.end());
        for (std::uint64_t member : c.bucket) {
          const auto alts = h.Alternates(member, fh);
          std::set<std::uint64_t> reached(alts.begin(), alts.end());
          reached.insert(member);
          ASSERT_EQ(reached, full)
              << "bm1=" << bm1 << " b1=" << b1 << " fh=" << fh;
        }
      }
    }
  }
}

TEST(ExhaustiveTest, Eq8ExactCountWidth8) {
  // Count, exactly, the hashes yielding four distinct candidates for every
  // ones-count and compare with the closed form.
  const unsigned w = 8;
  for (unsigned ones = 0; ones <= w; ++ones) {
    const VerticalHasher h = VerticalHasher::WithOnes(w, w, ones);
    std::size_t four = 0;
    for (std::uint64_t fh = 0; fh <= LowMask(w); ++fh) {
      const Candidates4 c = h.Candidates(0, fh);
      const std::set<std::uint64_t> distinct(c.bucket.begin(), c.bucket.end());
      ASSERT_EQ(distinct.size() == 4, h.YieldsFourDistinct(fh));
      four += distinct.size() == 4;
    }
    const double measured = static_cast<double>(four) / 256.0;
    ASSERT_DOUBLE_EQ(measured, h.TheoreticalR()) << "ones=" << ones;
  }
}

TEST(ExhaustiveTest, DegenerateSetSizesAreOneTwoOrFour) {
  // The candidate multiset can only collapse to sizes 1 (fh == 0 effective),
  // 2 (one fragment zero) or 4 — never 3.
  const unsigned w = 6;
  const VerticalHasher h = VerticalHasher::Balanced(w, w);
  for (std::uint64_t b1 = 0; b1 <= LowMask(w); ++b1) {
    for (std::uint64_t fh = 0; fh <= LowMask(w); ++fh) {
      const Candidates4 c = h.Candidates(b1, fh);
      const std::set<std::uint64_t> distinct(c.bucket.begin(), c.bucket.end());
      ASSERT_TRUE(distinct.size() == 1 || distinct.size() == 2 ||
                  distinct.size() == 4)
          << "got " << distinct.size() << " at b1=" << b1 << " fh=" << fh;
    }
  }
}

TEST(ExhaustiveTest, Theorem2AllPairsSmallSpace) {
  // k = 5 over a 5-bit space: every (b1, fh, g, e) combination satisfies
  // Eq. 7 exactly.
  const unsigned w = 5;
  const GeneralizedVerticalHasher gh(w, w, 5, 123);
  for (std::uint64_t b1 = 0; b1 <= LowMask(w); ++b1) {
    for (std::uint64_t fh = 0; fh <= LowMask(w); ++fh) {
      std::vector<std::uint64_t> cand(gh.k());
      for (unsigned e = 0; e < gh.k(); ++e) cand[e] = gh.Candidate(b1, fh, e);
      for (unsigned g = 0; g < gh.k(); ++g) {
        for (unsigned e = 0; e < gh.k(); ++e) {
          ASSERT_EQ(gh.FromSibling(cand[g], fh, g, e), cand[e]);
        }
      }
    }
  }
}

TEST(ExhaustiveTest, SmallSpaceFilterOracleBothEvictionModes) {
  // The filter-level oracle the VCF trio has always run — no false
  // negatives, exact ItemCount bookkeeping, drain-to-empty via Erase — now
  // exercised on a tiny (16-bucket) table across every kernel-ported filter
  // kind, under both the default random walk and the BFS eviction mode.
  struct KindSpec {
    const char* kind;
    unsigned variant;
  };
  const KindSpec kinds[] = {{"cf", 0},   {"vcf", 0},  {"ivcf", 3},
                            {"dvcf", 4}, {"kvcf", 4}, {"dcf", 4},
                            {"vf", 2},   {"sscf", 0}};
  for (const char* prefix : {"", "bfs:"}) {
    for (const auto& ks : kinds) {
      const std::string label = std::string(prefix) + ks.kind;
      FilterSpec spec;
      ParseFilterKind(label, spec);
      spec.variant = ks.variant;
      spec.params.bucket_count = 1 << 4;
      spec.params.slots_per_bucket = 4;
      spec.params.fingerprint_bits = 12;
      auto filter = MakeFilter(spec);
      ASSERT_NE(filter, nullptr) << label;

      std::set<std::uint64_t> accepted;
      for (std::uint64_t key = 1; key <= 60; ++key) {
        if (filter->Insert(key)) accepted.insert(key);
      }
      EXPECT_GE(accepted.size(), 50u) << label;
      EXPECT_EQ(filter->ItemCount(), accepted.size()) << label;
      for (const std::uint64_t key : accepted) {
        ASSERT_TRUE(filter->Contains(key)) << label << " lost key " << key;
      }
      for (const std::uint64_t key : accepted) {
        ASSERT_TRUE(filter->Erase(key)) << label << " erase " << key;
      }
      EXPECT_EQ(filter->ItemCount(), 0u) << label;
      // A drained table must accept fresh keys without eviction pressure.
      for (std::uint64_t key = 100; key < 110; ++key) {
        EXPECT_TRUE(filter->Insert(key)) << label;
      }
    }
  }
}

TEST(ExhaustiveTest, TieredOracleAcrossFreezeCompactBoundaries) {
  // The same filter-level oracle, but driven through the tiered wrapper's
  // full lifecycle: inserts that roll the front through multiple automatic
  // freezes (tiny front => several segments), explicit Freeze/Compact at a
  // checkpoint, tombstoned erases over frozen segments, and a drain back to
  // empty. No false negatives are tolerated at any boundary.
  struct KindSpec {
    const char* kind;
    unsigned variant;
  };
  const KindSpec kinds[] = {{"tiered:vcf", 0},
                            {"tiered:xor:cf", 0},
                            {"tiered:bfuse:kvcf", 4},
                            {"sharded:2:tiered:vcf", 0}};
  for (const auto& ks : kinds) {
    FilterSpec spec;
    ParseFilterKind(ks.kind, spec);
    spec.variant = ks.variant;
    spec.params.bucket_count = 1 << 6;  // front gets 1/8 => 8 buckets
    spec.params.slots_per_bucket = 4;
    spec.params.fingerprint_bits = 14;
    auto filter = MakeFilter(spec);
    ASSERT_NE(filter, nullptr) << ks.kind;

    std::vector<std::uint64_t> accepted;
    for (std::uint64_t key = 1; key <= 120; ++key) {
      if (filter->Insert(key)) accepted.push_back(key);
    }
    // A tiered filter freezes its way out of front pressure, so nothing
    // should have been rejected.
    ASSERT_EQ(accepted.size(), 120u) << ks.kind;
    for (const std::uint64_t key : accepted) {
      ASSERT_TRUE(filter->Contains(key)) << ks.kind << " lost " << key;
    }

    // Erase a third (tombstones over frozen segments): erased keys must go
    // absent (tombstones shadow exactly) and the rest must stay present.
    std::set<std::uint64_t> erased;
    for (std::size_t i = 0; i < accepted.size(); i += 3) {
      filter->Erase(accepted[i]);
      erased.insert(accepted[i]);
    }
    for (const std::uint64_t key : accepted) {
      if (erased.count(key) == 0) {
        ASSERT_TRUE(filter->Contains(key))
            << ks.kind << " erase shadowed live key " << key;
      } else {
        ASSERT_FALSE(filter->Contains(key))
            << ks.kind << " tombstone missed key " << key;
      }
    }
    // Where the tier is directly reachable, compact away the tombstones and
    // re-verify the survivors. (Compacted-away entities lose their exact
    // tombstones, so absence checks for them fall back to the g-bit FPR and
    // are not re-asserted here.)
    bool compacted = false;
    if (auto* tier = dynamic_cast<TieredFilter*>(filter.get())) {
      ASSERT_TRUE(tier->Compact()) << ks.kind;
      EXPECT_LE(tier->SegmentCount(), 1u) << ks.kind;
      EXPECT_EQ(tier->TombstoneCount(), 0u) << ks.kind;
      compacted = true;
      for (const std::uint64_t key : accepted) {
        if (erased.count(key) == 0) {
          ASSERT_TRUE(filter->Contains(key)) << ks.kind;
        }
      }
    }
    for (const std::uint64_t key : accepted) filter->Erase(key);
    for (const std::uint64_t key : accepted) {
      if (compacted && erased.count(key) != 0) continue;
      ASSERT_FALSE(filter->Contains(key))
          << ks.kind << " key survived full drain: " << key;
    }
    // A drained tier must accept fresh keys again.
    for (std::uint64_t key = 200; key < 210; ++key) {
      ASSERT_TRUE(filter->Insert(key)) << ks.kind;
      ASSERT_TRUE(filter->Contains(key)) << ks.kind;
    }
  }
}

TEST(ExhaustiveTest, FragmentFormulaMatchesIvcfFormula) {
  // Eq. 8 written via inclusion-exclusion fragments equals the printed
  // closed form for every (width, ones).
  for (unsigned w = 2; w <= 20; ++w) {
    for (unsigned ones = 1; ones < w; ++ones) {
      ASSERT_NEAR(model::ProbFourCandidatesFragments(ones, w - ones),
                  model::ProbFourCandidatesIvcf(w, ones), 1e-14)
          << w << "/" << ones;
    }
  }
}

}  // namespace
}  // namespace vcf
