// ImmutableSegment unit tests: peeling construction for both kinds, the
// no-false-negative guarantee, measured FPR against the 2^-g design point,
// seed-retry determinism, sidecar enumeration, and canonical save/load.
#include "segment/segment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/random.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<std::uint64_t> Entities(std::size_t n, std::uint64_t stream) {
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(UniformKeyAt(stream, i));
  return out;
}

class SegmentKindTest : public ::testing::TestWithParam<SegmentKind> {
 protected:
  SegmentParams Params() const {
    SegmentParams p;
    p.kind = GetParam();
    p.fingerprint_bits = 10;
    return p;
  }
};

TEST_P(SegmentKindTest, BuildsAndAnswersEveryEntity) {
  const auto entities = Entities(50000, 41);
  const auto seg = ImmutableSegment::Build(entities, Params());
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->EntityCount(), entities.size());
  for (const std::uint64_t e : entities) {
    ASSERT_TRUE(seg->Contains(e)) << "false negative for " << e;
  }
}

TEST_P(SegmentKindTest, FprTracksFingerprintWidth) {
  const auto seg = ImmutableSegment::Build(Entities(50000, 42), Params());
  ASSERT_TRUE(seg.has_value());
  std::size_t fps = 0;
  const std::size_t probes = 200000;
  for (std::size_t i = 0; i < probes; ++i) {
    fps += seg->Contains(UniformKeyAt(43, i)) ? 1 : 0;
  }
  const double fpr = static_cast<double>(fps) / static_cast<double>(probes);
  // Design point 2^-10; allow 3x for sampling noise.
  EXPECT_LT(fpr, 3.0 / 1024.0);
  EXPECT_GT(fpr, 0.0);  // a g-bit structure is not exact
}

TEST_P(SegmentKindTest, SpaceIsNearTheOverProvisioningFactor) {
  const std::size_t n = 100000;
  const auto seg = ImmutableSegment::Build(Entities(n, 44), Params());
  ASSERT_TRUE(seg.has_value());
  const double cells_per_entity =
      static_cast<double>(seg->CellCount()) / static_cast<double>(n);
  // xor sizes at 1.23n, binary fuse tighter; both must stay well under the
  // ~2x a half-full mutable table costs.
  EXPECT_LT(cells_per_entity, 1.30);
  EXPECT_GE(cells_per_entity, 1.05);
  // Bit-packed array, modulo PackedTable's word-granular allocation.
  EXPECT_GE(seg->ProbeBytes(), (seg->CellCount() * 10) / 8);
  EXPECT_LE(seg->ProbeBytes(), (seg->CellCount() * 10 + 7) / 8 + 16);
}

TEST_P(SegmentKindTest, DeduplicatesEntitiesBeforePeeling) {
  // Duplicate edges are never peelable; Build must collapse them instead of
  // burning every seed attempt.
  auto entities = Entities(5000, 45);
  entities.insert(entities.end(), entities.begin(), entities.begin() + 1000);
  const auto seg = ImmutableSegment::Build(entities, Params());
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->EntityCount(), 5000u);
}

TEST_P(SegmentKindTest, EntitiesRoundTripsSortedAndUnique) {
  auto entities = Entities(3000, 46);
  const auto seg = ImmutableSegment::Build(entities, Params());
  ASSERT_TRUE(seg.has_value());
  std::sort(entities.begin(), entities.end());
  EXPECT_EQ(seg->Entities(), entities);
}

TEST_P(SegmentKindTest, EmptySegmentAnswersNothing) {
  const auto seg = ImmutableSegment::Build({}, Params());
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->EntityCount(), 0u);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(seg->Contains(UniformKeyAt(47, i)));
  }
}

TEST_P(SegmentKindTest, SaveLoadSaveIsByteIdentical) {
  const auto seg = ImmutableSegment::Build(Entities(20000, 48), Params());
  ASSERT_TRUE(seg.has_value());
  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(seg->SaveState(first));
  std::istringstream in(first.str());
  const auto restored = ImmutableSegment::LoadState(in, Params());
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(*seg == *restored);
  std::ostringstream second(std::ios::binary);
  ASSERT_TRUE(restored->SaveState(second));
  EXPECT_EQ(first.str(), second.str());
}

TEST_P(SegmentKindTest, LoadRejectsMismatchedParams) {
  const auto seg = ImmutableSegment::Build(Entities(1000, 49), Params());
  ASSERT_TRUE(seg.has_value());
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(seg->SaveState(out));

  SegmentParams other_kind = Params();
  other_kind.kind = GetParam() == SegmentKind::kXor ? SegmentKind::kBinaryFuse
                                                    : SegmentKind::kXor;
  std::istringstream in1(out.str());
  EXPECT_FALSE(ImmutableSegment::LoadState(in1, other_kind).has_value());

  SegmentParams other_bits = Params();
  other_bits.fingerprint_bits = 12;
  std::istringstream in2(out.str());
  EXPECT_FALSE(ImmutableSegment::LoadState(in2, other_bits).has_value());

  SegmentParams other_seed = Params();
  other_seed.seed ^= 1;
  std::istringstream in3(out.str());
  EXPECT_FALSE(ImmutableSegment::LoadState(in3, other_seed).has_value());
}

TEST_P(SegmentKindTest, BuildIsDeterministicForFixedSeed) {
  const auto entities = Entities(10000, 50);
  const auto a = ImmutableSegment::Build(entities, Params());
  const auto b = ImmutableSegment::Build(entities, Params());
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_TRUE(*a == *b);
  std::ostringstream oa(std::ios::binary), ob(std::ios::binary);
  ASSERT_TRUE(a->SaveState(oa) && b->SaveState(ob));
  EXPECT_EQ(oa.str(), ob.str());
}

TEST_P(SegmentKindTest, RetriesSeedsUntilPeelable) {
  // With a single attempt allowed, some (entities, seed) pairs fail; with
  // the default budget the same input must build, on a later attempt.
  SegmentParams one_shot = Params();
  one_shot.max_build_attempts = 1;
  const auto entities = Entities(2000, 51);
  std::uint64_t failing_seed = 0;
  bool found = false;
  for (std::uint64_t s = 0; s < 4000 && !found; ++s) {
    one_shot.seed = s;
    if (!ImmutableSegment::Build(entities, one_shot).has_value()) {
      failing_seed = s;
      found = true;
    }
  }
  if (!found) GTEST_SKIP() << "no failing seed in the scanned range";
  SegmentParams with_retries = Params();
  with_retries.seed = failing_seed;
  const auto seg = ImmutableSegment::Build(entities, with_retries);
  ASSERT_TRUE(seg.has_value());
  EXPECT_GT(seg->build_attempt(), 0u);
  for (const std::uint64_t e : entities) ASSERT_TRUE(seg->Contains(e));
}

TEST_P(SegmentKindTest, RejectsUnsupportedFingerprintWidths) {
  SegmentParams p = Params();
  p.fingerprint_bits = 0;
  EXPECT_THROW(ImmutableSegment::Build({1, 2, 3}, p), std::invalid_argument);
  p.fingerprint_bits = 26;
  EXPECT_THROW(ImmutableSegment::Build({1, 2, 3}, p), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Kinds, SegmentKindTest,
                         ::testing::Values(SegmentKind::kXor,
                                           SegmentKind::kBinaryFuse),
                         [](const ::testing::TestParamInfo<SegmentKind>& info) {
                           return info.param == SegmentKind::kXor
                                      ? "Xor"
                                      : "BinaryFuse";
                         });

TEST(SegmentTest, TinyBuildsWork) {
  for (auto kind : {SegmentKind::kXor, SegmentKind::kBinaryFuse}) {
    SegmentParams p;
    p.kind = kind;
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
      const auto entities = Entities(n, 52);
      const auto seg = ImmutableSegment::Build(entities, p);
      ASSERT_TRUE(seg.has_value()) << static_cast<int>(kind) << "/" << n;
      for (const std::uint64_t e : entities) ASSERT_TRUE(seg->Contains(e));
    }
  }
}

}  // namespace
}  // namespace vcf
