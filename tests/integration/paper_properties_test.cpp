// Cross-filter properties asserted by the paper's analysis (§V) and borne
// out in its evaluation (§VI) — these are the "shape" claims the benchmark
// harness reproduces, checked here at test scale so regressions are caught
// by ctest rather than by eyeballing bench output.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/model.hpp"
#include "baselines/cuckoo_filter.hpp"
#include "baselines/dary_cuckoo_filter.hpp"
#include "core/dvcf.hpp"
#include "core/vcf.hpp"
#include "harness/experiment.hpp"
#include "workload/key_streams.hpp"
#include "workload/synthetic_higgs.hpp"

namespace vcf {
namespace {

CuckooParams TestParams() {
  CuckooParams p;
  p.bucket_count = 1 << 12;  // 2^14 slots: big enough for stable statistics
  p.fingerprint_bits = 14;
  return p;
}

TEST(PaperPropertiesTest, VcfLoadFactorBeatsCF) {
  // Fig. 5 / Table III: VCF (high r) stores more of an n-key stream in an
  // n-slot table than CF.
  const CuckooParams p = TestParams();
  CuckooFilter cf(p);
  VerticalCuckooFilter vcf_filter(p, 6);
  const auto keys = UniformKeys(p.slot_count(), 11);
  const FillResult cf_fill = FillAll(cf, keys);
  const FillResult vcf_fill = FillAll(vcf_filter, keys);
  EXPECT_GT(vcf_fill.load_factor, cf_fill.load_factor);
  EXPECT_GT(vcf_fill.load_factor, 0.99);
  EXPECT_GT(cf_fill.load_factor, 0.93);
}

TEST(PaperPropertiesTest, VcfEvictionsFarBelowCF) {
  // Fig. 8: E0 of VCF ~1.3 vs CF ~12.8 at full fill. At test scale we
  // assert the ordering and a >3x separation.
  const CuckooParams p = TestParams();
  CuckooFilter cf(p);
  VerticalCuckooFilter vcf_filter(p, 6);
  const auto keys = UniformKeys(p.slot_count() * 98 / 100, 13);
  const FillResult cf_fill = FillAll(cf, keys);
  const FillResult vcf_fill = FillAll(vcf_filter, keys);
  EXPECT_LT(vcf_fill.evictions_per_insert * 3.0, cf_fill.evictions_per_insert);
}

TEST(PaperPropertiesTest, EvictionModelTracksMeasurement) {
  // Eq. 14/15 predicted E0 and the measured evictions-per-insert agree
  // within a factor band for CF (r = 0) when filling to ~95%.
  const CuckooParams p = TestParams();
  CuckooFilter cf(p);
  const std::size_t n = p.slot_count() * 95 / 100;
  const FillResult fill = FillAll(cf, UniformKeys(n, 17));
  const double predicted = model::AverageInsertionCost(fill.load_factor, 0.0, 4);
  // Model counts "evicted fingerprints per insertion" including the final
  // successful placement; measured counts pure kicks. Compare loosely.
  EXPECT_GT(fill.evictions_per_insert, predicted * 0.2);
  EXPECT_LT(fill.evictions_per_insert, predicted * 5.0);
}

TEST(PaperPropertiesTest, FprGrowsWithR) {
  // Fig. 9: false positives rise roughly linearly in r.
  const CuckooParams p = TestParams();
  const auto keys = UniformKeys(p.slot_count() * 95 / 100, 19);
  const auto aliens = UniformKeys(1 << 18, 20);
  double prev = -1.0;
  for (unsigned ones : {1u, 3u, 6u}) {
    VerticalCuckooFilter f(p, ones);
    FillAll(f, keys);
    const double fpr = MeasureFpr(f, aliens);
    EXPECT_GT(fpr, prev) << "ones=" << ones;
    prev = fpr;
  }
}

TEST(PaperPropertiesTest, VcfFprStaysWithinEq10Bound) {
  const CuckooParams p = TestParams();
  VerticalCuckooFilter f(p, 6);
  FillAll(f, UniformKeys(p.slot_count() * 95 / 100, 23));
  const double fpr = MeasureFpr(f, UniformKeys(1 << 18, 24));
  const double bound = model::FalsePositiveUpperBound(
      p.fingerprint_bits, f.TheoreticalR(), p.slots_per_bucket, f.LoadFactor());
  EXPECT_LT(fpr, bound * 1.5 + 1e-4);
}

TEST(PaperPropertiesTest, CfFprBelowVcfFpr) {
  // Table III: CF 0.485e-3 vs VCF up to 0.974e-3 — more candidate buckets
  // mean more fingerprint comparisons.
  const CuckooParams p = TestParams();
  CuckooFilter cf(p);
  VerticalCuckooFilter vcf_filter(p, 6);
  const auto keys = UniformKeys(p.slot_count() * 95 / 100, 29);
  FillAll(cf, keys);
  FillAll(vcf_filter, keys);
  const auto aliens = UniformKeys(1 << 18, 30);
  EXPECT_LT(MeasureFpr(cf, aliens), MeasureFpr(vcf_filter, aliens));
}

TEST(PaperPropertiesTest, DcfMatchesVcfLoadButCostsMoreProbesPerLookup) {
  // Table III / Fig. 6: DCF reaches VCF-like load factors but its lookups
  // are the slowest. Probe counts are CPU-independent, so assert on the
  // hash-computation volume instead of wall time at test scale: DCF spends
  // a base-d conversion per probe which we cannot count here, but its probe
  // count should match VCF's 4 while CF uses 2.
  const CuckooParams p = TestParams();
  DaryCuckooFilter dcf(p, 4);
  CuckooFilter cf(p);
  const auto keys = UniformKeys(1000, 31);
  for (const auto k : keys) {
    dcf.Insert(k);
    cf.Insert(k);
  }
  dcf.ResetCounters();
  cf.ResetCounters();
  const auto aliens = UniformKeys(1000, 32);
  for (const auto a : aliens) {
    dcf.Contains(a);
    cf.Contains(a);
  }
  EXPECT_EQ(dcf.counters().bucket_probes, 4u * 1000u);
  EXPECT_EQ(cf.counters().bucket_probes, 2u * 1000u);
}

TEST(PaperPropertiesTest, HiggsWorkloadReproducesLoadOrdering) {
  // Same ordering claim on the (synthetic) HIGGS workload used by §VI.
  const CuckooParams p = TestParams();
  SyntheticHiggs higgs(2026);
  const auto keys = higgs.UniqueKeys(p.slot_count());
  CuckooFilter cf(p);
  VerticalCuckooFilter vcf_filter(p, 6);
  const FillResult cf_fill = FillAll(cf, keys);
  const FillResult vcf_fill = FillAll(vcf_filter, keys);
  EXPECT_GT(vcf_fill.load_factor, cf_fill.load_factor);
}

TEST(PaperPropertiesTest, Fig4ShapeLoadFactorRisesWithFingerprintBits) {
  // Fig. 4: short fingerprints collide, capping the achievable load factor;
  // longer fingerprints approach ~100%.
  CuckooParams p;
  p.bucket_count = 1 << 10;
  double prev = 0.0;
  for (unsigned f_bits : {5u, 7u, 12u, 18u}) {
    p.fingerprint_bits = f_bits;
    VerticalCuckooFilter f(p);
    const FillResult fill = FillAll(f, UniformKeys(p.slot_count(), 33));
    EXPECT_GE(fill.load_factor + 0.02, prev) << "f=" << f_bits;
    prev = fill.load_factor;
  }
  EXPECT_GT(prev, 0.99);
}

TEST(PaperPropertiesTest, BitsPerItemFavorVcfAtEqualFpr) {
  // §V-B worked example: VCF's higher alpha more than pays for its larger
  // effective bucket size at realistic f.
  const double cf_bits = model::BitsPerItem(0.0, 4, 0.95, 1e-3);
  const double vcf_bits = model::BitsPerItem(0.5, 4, 0.98, 1e-3);
  // At xi = 1e-3 both need similar f; VCF amortises over more items.
  EXPECT_LT(vcf_bits, cf_bits * 1.08);
}

}  // namespace
}  // namespace vcf
