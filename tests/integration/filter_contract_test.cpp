// Contract test: every filter the factory can build must satisfy the common
// AMQ contract (no false negatives, exact bookkeeping, clean Clear, counter
// hygiene), regardless of its internal candidate scheme.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> AllSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 1, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 2, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 8, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 9, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kCBF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kVF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kSsCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kMF, 0, p, 12.0, 0},
  };
  return specs;
}

class FilterContractTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(FilterContractTest, NoFalseNegatives) {
  auto filter = MakeFilter(GetParam());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(filter->SlotCount() * 8 / 10, 1)) {
    if (filter->Insert(k)) stored.push_back(k);
  }
  for (const auto k : stored) {
    ASSERT_TRUE(filter->Contains(k)) << filter->Name();
  }
}

TEST_P(FilterContractTest, ItemCountTracksInsertsAndErases) {
  auto filter = MakeFilter(GetParam());
  const auto keys = UniformKeys(100, 2);
  std::size_t stored = 0;
  for (const auto k : keys) stored += filter->Insert(k) ? 1 : 0;
  EXPECT_EQ(filter->ItemCount(), stored);
  if (filter->SupportsDeletion()) {
    std::size_t erased = 0;
    for (const auto k : keys) erased += filter->Erase(k) ? 1 : 0;
    EXPECT_EQ(erased, stored) << filter->Name();
    EXPECT_EQ(filter->ItemCount(), 0u);
  } else {
    EXPECT_FALSE(filter->Erase(keys[0]));
    EXPECT_EQ(filter->ItemCount(), stored);
  }
}

TEST_P(FilterContractTest, ClearRestoresEmptiness) {
  auto filter = MakeFilter(GetParam());
  const auto keys = UniformKeys(200, 3);
  for (const auto k : keys) filter->Insert(k);
  filter->Clear();
  EXPECT_EQ(filter->ItemCount(), 0u);
  EXPECT_EQ(filter->LoadFactor(), 0.0);
  std::size_t survivors = 0;
  for (const auto k : keys) survivors += filter->Contains(k) ? 1 : 0;
  EXPECT_EQ(survivors, 0u) << filter->Name();
}

TEST_P(FilterContractTest, CountersAreMonotoneAndResettable) {
  auto filter = MakeFilter(GetParam());
  filter->Insert(10);
  filter->Contains(10);
  filter->Contains(11);
  EXPECT_EQ(filter->counters().inserts, 1u);
  EXPECT_EQ(filter->counters().lookups, 2u);
  EXPECT_GT(filter->counters().hash_computations, 0u);
  filter->ResetCounters();
  EXPECT_EQ(filter->counters().inserts, 0u);
  EXPECT_EQ(filter->counters().lookups, 0u);
}

TEST_P(FilterContractTest, StringKeyConvenienceIsConsistent) {
  auto filter = MakeFilter(GetParam());
  EXPECT_TRUE(filter->InsertKey("session:alpha"));
  EXPECT_TRUE(filter->ContainsKey("session:alpha"));
  EXPECT_TRUE(filter->Contains(Filter::KeyToU64("session:alpha")));
  if (filter->SupportsDeletion()) {
    EXPECT_TRUE(filter->EraseKey("session:alpha"));
    EXPECT_FALSE(filter->ContainsKey("session:alpha"));
  }
}

TEST_P(FilterContractTest, MemoryAndGeometryReported) {
  auto filter = MakeFilter(GetParam());
  EXPECT_GT(filter->MemoryBytes(), 0u);
  EXPECT_GT(filter->SlotCount(), 0u);
  EXPECT_FALSE(filter->Name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterContractTest, ::testing::ValuesIn(AllSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
