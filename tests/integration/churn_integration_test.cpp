// Replays online-churn traces (the paper's motivating workload) against
// every deletable filter: live keys must always answer true, bookkeeping
// must stay exact, and the filter must survive sustained insert/delete
// cycling at high occupancy without degradation.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <unordered_set>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/churn.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> DeletableSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 9;  // 2048 slots; traces target 60% occupancy
  std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 3, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 6, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kVF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kSsCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kMF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kCBF, 0, p, 16.0, 0},
  };
  return specs;
}

class ChurnIntegrationTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(ChurnIntegrationTest, LiveKeysNeverGoMissing) {
  auto filter = MakeFilter(GetParam());
  ChurnTraceConfig cfg;
  cfg.working_set = filter->SlotCount() * 6 / 10;
  cfg.operations = 20000;
  cfg.seed = 7;
  const auto trace = GenerateChurnTrace(cfg);

  std::unordered_set<std::uint64_t> live;
  for (const auto& op : trace) {
    switch (op.kind) {
      case ChurnOp::Kind::kInsert:
        if (filter->Insert(op.key)) live.insert(op.key);
        break;
      case ChurnOp::Kind::kErase:
        if (live.erase(op.key) == 1) {
          ASSERT_TRUE(filter->Erase(op.key))
              << filter->Name() << ": erase of live key failed";
        }
        break;
      case ChurnOp::Kind::kLookup:
        if (op.expect_present && live.count(op.key)) {
          ASSERT_TRUE(filter->Contains(op.key))
              << filter->Name() << ": false negative under churn";
        }
        break;
    }
  }
  // End state: every live key still answers true.
  for (const auto k : live) {
    ASSERT_TRUE(filter->Contains(k)) << filter->Name();
  }
}

TEST_P(ChurnIntegrationTest, SustainedChurnDoesNotLeakOccupancy) {
  auto filter = MakeFilter(GetParam());
  if (GetParam().kind == FilterSpec::Kind::kCBF) {
    GTEST_SKIP() << "CBF saturated counters intentionally leak occupancy";
  }
  ChurnTraceConfig cfg;
  cfg.working_set = filter->SlotCount() / 2;
  cfg.operations = 30000;
  cfg.lookup_fraction = 0.0;  // pure insert/erase churn
  cfg.seed = 11;
  const auto trace = GenerateChurnTrace(cfg);
  std::size_t live = 0;
  std::unordered_set<std::uint64_t> live_set;
  for (const auto& op : trace) {
    if (op.kind == ChurnOp::Kind::kInsert && filter->Insert(op.key)) {
      live_set.insert(op.key);
      ++live;
    } else if (op.kind == ChurnOp::Kind::kErase && live_set.erase(op.key)) {
      ASSERT_TRUE(filter->Erase(op.key)) << filter->Name();
      --live;
    }
  }
  EXPECT_EQ(filter->ItemCount(), live)
      << filter->Name() << ": occupancy bookkeeping drifted under churn";
}

TEST_P(ChurnIntegrationTest, FalsePositiveRateStaysBoundedUnderChurn) {
  // Churn must not accumulate ghost fingerprints: after the trace, the FPR
  // on fresh alien keys stays in the same ballpark as a fresh fill.
  auto filter = MakeFilter(GetParam());
  ChurnTraceConfig cfg;
  cfg.working_set = filter->SlotCount() / 2;
  cfg.operations = 20000;
  cfg.seed = 13;
  std::unordered_set<std::uint64_t> live;
  for (const auto& op : GenerateChurnTrace(cfg)) {
    if (op.kind == ChurnOp::Kind::kInsert) {
      if (filter->Insert(op.key)) live.insert(op.key);
    } else if (op.kind == ChurnOp::Kind::kErase && live.erase(op.key)) {
      filter->Erase(op.key);
    }
  }
  std::size_t positives = 0;
  const std::size_t probes = 100000;
  for (std::size_t i = 0; i < probes; ++i) {
    positives += filter->Contains(UniformKeyAt(999, i)) ? 1 : 0;
  }
  const double fpr = static_cast<double>(positives) / probes;
  // Cuckoo family at half load with f = 14: well under 1%. CBF (16 bits,
  // 4-bit counters) similar.
  EXPECT_LT(fpr, 0.01) << filter->Name();
}

INSTANTIATE_TEST_SUITE_P(
    DeletableFilters, ChurnIntegrationTest,
    ::testing::ValuesIn(DeletableSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
