// Every filter family must uphold its invariants under EVERY hash function
// the library ships (Table IV runs the evaluation across FNV, Murmur3 and
// DJB2; SplitMix is the library's strong default). This sweep crosses the
// filter kinds with the hash kinds.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>
#include <vector>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

using SweepParam = std::tuple<FilterSpec::Kind, unsigned, HashKind>;

class HashKindSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  FilterSpec Spec() const {
    const auto [kind, variant, hash] = GetParam();
    CuckooParams p;
    p.bucket_count = 1 << 8;
    p.hash = hash;
    return {kind, variant, p, 12.0, 0};
  }
};

TEST_P(HashKindSweepTest, FillAndVerifyNoFalseNegatives) {
  auto filter = MakeFilter(Spec());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(filter->SlotCount() * 85 / 100, 1101)) {
    if (filter->Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()),
            static_cast<double>(filter->SlotCount()) * 0.8)
      << filter->Name();
  for (const auto k : stored) {
    ASSERT_TRUE(filter->Contains(k)) << filter->Name();
  }
}

TEST_P(HashKindSweepTest, EraseAllRestoresEmpty) {
  auto filter = MakeFilter(Spec());
  if (!filter->SupportsDeletion()) GTEST_SKIP();
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(filter->SlotCount() / 2, 1102)) {
    if (filter->Insert(k)) stored.push_back(k);
  }
  for (const auto k : stored) {
    ASSERT_TRUE(filter->Erase(k)) << filter->Name();
  }
  EXPECT_EQ(filter->ItemCount(), 0u) << filter->Name();
}

TEST_P(HashKindSweepTest, FprStaysReasonable) {
  auto filter = MakeFilter(Spec());
  for (const auto k : UniformKeys(filter->SlotCount() * 3 / 4, 1103)) {
    filter->Insert(k);
  }
  std::size_t positives = 0;
  const std::size_t probes = 50000;
  for (std::size_t i = 0; i < probes; ++i) {
    positives += filter->Contains(UniformKeyAt(1104, i)) ? 1 : 0;
  }
  // f = 14 cuckoo family: ~0.1%; Bloom at 12 bits/item: ~0.5%. Anything
  // above 3% indicates a hash function degrading the structure.
  EXPECT_LT(static_cast<double>(positives) / probes, 0.03) << filter->Name();
}

std::vector<SweepParam> AllCombos() {
  const std::vector<std::pair<FilterSpec::Kind, unsigned>> kinds = {
      {FilterSpec::Kind::kCF, 0},   {FilterSpec::Kind::kIVCF, 4},
      {FilterSpec::Kind::kDVCF, 5}, {FilterSpec::Kind::kKVCF, 6},
      {FilterSpec::Kind::kDCF, 4},  {FilterSpec::Kind::kQF, 0},
      {FilterSpec::Kind::kDlCBF, 4}, {FilterSpec::Kind::kVF, 5},
      {FilterSpec::Kind::kSsCF, 0}, {FilterSpec::Kind::kMF, 0},
      {FilterSpec::Kind::kBF, 0},
  };
  std::vector<SweepParam> combos;
  for (const auto& [kind, variant] : kinds) {
    for (HashKind hash : {HashKind::kFnv1a, HashKind::kMurmur3,
                          HashKind::kDjb2, HashKind::kSplitMix}) {
      combos.emplace_back(kind, variant, hash);
    }
  }
  return combos;
}

// NOTE: no structured bindings inside the lambda — the macro's preprocessor
// comma-splitting does not respect square brackets.
std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  FilterSpec spec{std::get<0>(info.param), std::get<1>(info.param),
                  CuckooParams{}, 12.0, 0};
  std::string name = spec.DisplayName() + "_" +
                     std::string(HashKindName(std::get<2>(info.param)));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(KindsTimesHashes, HashKindSweepTest,
                         ::testing::ValuesIn(AllCombos()), SweepName);

}  // namespace
}  // namespace vcf
