// Differential fuzzing: a long random operation sequence runs against every
// deletable filter AND an exact reference (a multiset of keys). The AMQ
// contract under test:
//   - Contains(k) is true for every k in the reference (no false negatives),
//   - Erase(k) succeeds whenever k is in the reference,
//   - ItemCount() equals the reference size exactly,
//   - the false-positive rate over definitely-absent probes stays sane.
// The sequence mixes duplicate inserts, double erases, erases of absent
// keys, and Clear(), at occupancies cycling between near-empty and ~90%.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

std::vector<FilterSpec> FuzzSpecs() {
  CuckooParams p;
  p.bucket_count = 1 << 8;  // small table => plenty of evictions
  return {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 2, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 7, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kQF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kDlCBF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kVF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kSsCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kMF, 0, p, 12.0, 0},
  };
}

class DifferentialFuzzTest : public ::testing::TestWithParam<FilterSpec> {};

TEST_P(DifferentialFuzzTest, TenThousandRandomOpsAgainstExactReference) {
  auto filter = MakeFilter(GetParam());
  // Reference: key -> copy count (filters store duplicates as distinct
  // fingerprint copies).
  std::unordered_map<std::uint64_t, int> reference;
  std::size_t reference_size = 0;

  Xoshiro256 rng(0xF0220 + GetParam().variant);
  const std::size_t key_universe = filter->SlotCount();  // dense key reuse
  std::vector<std::uint64_t> known;
  known.reserve(key_universe);
  for (std::size_t i = 0; i < key_universe; ++i) {
    known.push_back(UniformKeyAt(400, i));
  }

  const std::size_t capacity_soft_cap = filter->SlotCount() * 9 / 10;
  for (int op = 0; op < 10000; ++op) {
    const double roll = rng.NextDouble();
    const std::uint64_t key = known[rng.Below(known.size())];
    if (roll < 0.45 && reference_size < capacity_soft_cap) {
      // Insert (duplicates welcome).
      if (filter->Insert(key)) {
        ++reference[key];
        ++reference_size;
      }
    } else if (roll < 0.75) {
      // Erase; must succeed iff the reference holds a copy.
      const auto it = reference.find(key);
      if (it != reference.end() && it->second > 0) {
        ASSERT_TRUE(filter->Erase(key))
            << filter->Name() << ": erase failed for a present key";
        if (--it->second == 0) reference.erase(it);
        --reference_size;
      }
      // Erasing an absent key may false-positively "succeed" by removing a
      // colliding fingerprint copy of another key — the documented CF-family
      // hazard — so we do not attempt absent-key erases in the differential
      // harness (the churn tests cover the guarded pattern).
    } else if (roll < 0.95) {
      // Lookup of a key with known state.
      if (reference.count(key)) {
        ASSERT_TRUE(filter->Contains(key))
            << filter->Name() << ": false negative at op " << op;
      }
    } else if (roll < 0.96) {
      filter->Clear();
      reference.clear();
      reference_size = 0;
    } else {
      // Definitely-absent probe (disjoint stream); count false positives.
      filter->Contains(UniformKeyAt(401, rng.Below(1 << 20)));
    }
    ASSERT_EQ(filter->ItemCount(), reference_size)
        << filter->Name() << ": bookkeeping diverged at op " << op;
  }

  // Final sweep: every key the reference holds must answer true.
  for (const auto& [key, copies] : reference) {
    ASSERT_GT(copies, 0);
    ASSERT_TRUE(filter->Contains(key)) << filter->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeletableFilters, DifferentialFuzzTest, ::testing::ValuesIn(FuzzSpecs()),
    [](const ::testing::TestParamInfo<FilterSpec>& info) {
      std::string name = info.param.DisplayName();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace vcf
