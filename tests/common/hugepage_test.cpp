// PagedBytes / hugepage-backing tests: allocation and accounting across the
// three PageHints, the silent-fallback chain for MAP_HUGETLB, and the
// contract the serialization layer depends on — checkpoint blobs are
// bit-identical whichever page backing a filter was built with.
#include "common/hugepage.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

constexpr std::size_t kBig = 4u << 20;  // 4 MiB: above the mmap threshold

TEST(PagedBytesTest, NormalHintIsZeroedAndWritable) {
  PagedBytes bytes(4096, PageHint::kNormal);
  ASSERT_EQ(bytes.size(), 4096u);
  for (std::size_t i = 0; i < bytes.size(); ++i) ASSERT_EQ(bytes[i], 0u);
  bytes[0] = 0xAB;
  bytes[4095] = 0xCD;
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[4095], 0xCD);
  EXPECT_EQ(bytes.effective_hint(), PageHint::kNormal);
}

TEST(PagedBytesTest, TransparentHintAllocatesAndAccounts) {
  ResetHugepageStatsForTest();
  PagedBytes bytes(kBig, PageHint::kTransparent);
  ASSERT_EQ(bytes.size(), kBig);
  for (std::size_t i = 0; i < bytes.size(); i += 4096) ASSERT_EQ(bytes[i], 0u);
  bytes.Fill(0x5A);
  EXPECT_EQ(bytes[kBig - 1], 0x5A);
  const HugepageStats stats = GetHugepageStats();
  EXPECT_EQ(stats.requested_bytes, kBig);
  // madvise(MADV_HUGEPAGE) never fails for hugepage reasons: either the
  // region is THP-advised (counted) or the build fell back to the heap.
  EXPECT_EQ(stats.thp_bytes + stats.fallback_bytes, kBig);
}

TEST(PagedBytesTest, ExplicitHintFallsBackSilently) {
  // Most CI hosts have an empty hugetlbfs pool, so kExplicit exercises the
  // fallback chain: the buffer must come back usable either way, and every
  // byte requested must be accounted as hugetlb-backed or fallen-back.
  ResetHugepageStatsForTest();
  PagedBytes bytes(kBig, PageHint::kExplicit);
  ASSERT_EQ(bytes.size(), kBig);
  bytes[0] = 1;
  bytes[kBig - 1] = 2;
  EXPECT_EQ(bytes[0], 1u);
  EXPECT_EQ(bytes[kBig - 1], 2u);
  const HugepageStats stats = GetHugepageStats();
  EXPECT_EQ(stats.requested_bytes, kBig);
  EXPECT_EQ(stats.hugetlb_bytes + stats.fallback_bytes, kBig);
  if (stats.hugetlb_bytes == 0) {
    EXPECT_NE(bytes.effective_hint(), PageHint::kExplicit);
  } else {
    EXPECT_EQ(bytes.effective_hint(), PageHint::kExplicit);
  }
}

TEST(PagedBytesTest, MoveTransfersOwnership) {
  PagedBytes a(kBig, PageHint::kTransparent);
  a.Fill(0x77);
  const std::uint8_t* data = a.data();
  PagedBytes b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), kBig);
  EXPECT_EQ(b[123], 0x77);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  PagedBytes c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(c[kBig - 1], 0x77);
}

TEST(PagedBytesTest, EqualityComparesContents) {
  PagedBytes a(8192, PageHint::kNormal);
  PagedBytes b(8192, PageHint::kTransparent);
  EXPECT_TRUE(a == b) << "hint must not affect equality";
  a[100] = 9;
  EXPECT_FALSE(a == b);
  b[100] = 9;
  EXPECT_TRUE(a == b);
}

// The load-bearing contract for this PR: page placement is runtime-only,
// so checkpoints taken with hugepages on and off are byte-identical, and a
// blob saved by one loads into the other.
TEST(HugepageBlobTest, CheckpointsAreBitIdenticalAcrossPageHints) {
  const auto build = [](const std::string& spelling) {
    FilterSpec spec;
    ParseFilterKind(spelling, spec);
    spec.params = CuckooParams::ForSlotsLog2(12);
    spec.params.seed = 0xFEEDBEEF;
    // ParseFilterKind leaves the k-ary arity to the caller (vcfd takes it
    // from --variant); the generalized hasher needs k >= 2.
    if (spec.kind == FilterSpec::Kind::kKVCF) spec.variant = 4;
    return MakeFilter(spec);
  };
  for (const char* base : {"vcf", "kvcf", "cf", "vf", "tiered:vcf"}) {
    auto normal = build(base);
    auto thp = build(std::string("hugepage:") + base);
    auto hugetlb = build(std::string("hugetlb:") + base);
    for (const auto key : UniformKeys(2000, /*stream=*/77)) {
      const bool a = normal->Insert(key);
      const bool b = thp->Insert(key);
      const bool c = hugetlb->Insert(key);
      ASSERT_EQ(a, b) << base;
      ASSERT_EQ(a, c) << base;
    }
    std::ostringstream blob_normal, blob_thp, blob_hugetlb;
    ASSERT_TRUE(normal->SaveState(blob_normal)) << base;
    ASSERT_TRUE(thp->SaveState(blob_thp)) << base;
    ASSERT_TRUE(hugetlb->SaveState(blob_hugetlb)) << base;
    EXPECT_EQ(blob_normal.str(), blob_thp.str()) << base;
    EXPECT_EQ(blob_normal.str(), blob_hugetlb.str()) << base;

    // Cross-load: a 4 KiB-page blob restores into a THP-backed filter.
    std::istringstream in(blob_normal.str());
    ASSERT_TRUE(thp->LoadState(in)) << base;
    std::ostringstream resaved;
    ASSERT_TRUE(thp->SaveState(resaved)) << base;
    EXPECT_EQ(resaved.str(), blob_normal.str()) << base;
  }
}

TEST(HugepageFactoryTest, PrefixesParse) {
  FilterSpec spec;
  ParseFilterKind("hugepage:vcf", spec);
  EXPECT_EQ(spec.hugepages, 1u);
  EXPECT_EQ(spec.kind, FilterSpec::Kind::kVCF);
  ParseFilterKind("sharded:2:hugetlb:resilient:cf", spec);
  EXPECT_EQ(spec.hugepages, 2u);
  EXPECT_EQ(spec.shards, 2u);
  EXPECT_TRUE(spec.resilient);
  EXPECT_EQ(spec.kind, FilterSpec::Kind::kCF);
  ParseFilterKind("sharded:4:hugepage:tiered:vcf", spec);
  EXPECT_EQ(spec.hugepages, 1u);
  EXPECT_TRUE(spec.tiered);
  EXPECT_EQ(spec.shards, 4u);
  ParseFilterKind("vcf", spec);
  EXPECT_EQ(spec.hugepages, 0u) << "prefix state must reset between parses";
}

}  // namespace
}  // namespace vcf
