// Failpoint registry semantics: mode arithmetic (always/nth/probability),
// deterministic seeded draws, spec-string parsing, and the guarantee the
// whole subsystem rests on — a disarmed failpoint never fires.
#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace vcf {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  auto& fp = FailpointRegistry::Instance().Get("test/disarmed");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fp.ShouldFail());
  EXPECT_EQ(fp.triggers(), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryTime) {
  auto& fp = FailpointRegistry::Instance().Get("test/always");
  fp.ArmAlways();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(fp.ShouldFail());
  EXPECT_EQ(fp.triggers(), 100u);
  fp.Disarm();
  EXPECT_FALSE(fp.ShouldFail());
}

TEST_F(FailpointTest, NthFiresOnEveryNthEvaluation) {
  auto& fp = FailpointRegistry::Instance().Get("test/nth");
  fp.ResetCounts();
  fp.ArmNth(3);
  std::vector<bool> fires;
  for (int i = 0; i < 9; ++i) fires.push_back(fp.ShouldFail());
  EXPECT_EQ(fires, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailpointTest, NthZeroBehavesAsEveryEvaluation) {
  auto& fp = FailpointRegistry::Instance().Get("test/nth0");
  fp.ArmNth(0);
  EXPECT_TRUE(fp.ShouldFail());
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresOneAlwaysFires) {
  auto& never = FailpointRegistry::Instance().Get("test/p0");
  never.ArmProbability(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(never.ShouldFail());

  auto& always = FailpointRegistry::Instance().Get("test/p1");
  always.ArmProbability(1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(always.ShouldFail());
}

TEST_F(FailpointTest, ProbabilityRateIsRoughlyHonoured) {
  auto& fp = FailpointRegistry::Instance().Get("test/p10");
  fp.ResetCounts();
  fp.ArmProbability(0.1, /*seed=*/7);
  int fired = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) fired += fp.ShouldFail() ? 1 : 0;
  EXPECT_NEAR(fired / static_cast<double>(kTrials), 0.1, 0.02);
  EXPECT_EQ(fp.triggers(), static_cast<std::uint64_t>(fired));
}

TEST_F(FailpointTest, ProbabilitySequenceIsDeterministicForSeed) {
  auto& a = FailpointRegistry::Instance().Get("test/det_a");
  auto& b = FailpointRegistry::Instance().Get("test/det_b");
  a.ResetCounts();
  b.ResetCounts();
  a.ArmProbability(0.25, 42);
  b.ArmProbability(0.25, 42);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.ShouldFail(), b.ShouldFail());
}

TEST_F(FailpointTest, RegistryReturnsSameInstanceByName) {
  auto& a = FailpointRegistry::Instance().Get("test/same");
  auto& b = FailpointRegistry::Instance().Get("test/same");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(FailpointRegistry::Instance().Find("test/same"), &a);
  EXPECT_EQ(FailpointRegistry::Instance().Find("test/never_created"), nullptr);
}

TEST_F(FailpointTest, ApplySpecParsesEveryMode) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_TRUE(registry.ApplySpec(
      "spec/a=always, spec/b=nth:4; spec/c=prob:0.5:99,spec/d=off"));
  EXPECT_EQ(registry.Get("spec/a").mode(), Failpoint::Mode::kAlways);
  EXPECT_EQ(registry.Get("spec/b").mode(), Failpoint::Mode::kNth);
  EXPECT_EQ(registry.Get("spec/c").mode(), Failpoint::Mode::kProbability);
  EXPECT_EQ(registry.Get("spec/d").mode(), Failpoint::Mode::kOff);
}

TEST_F(FailpointTest, ApplySpecRejectsMalformedClausesButAppliesGoodOnes) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.ApplySpec("spec/good=always,=always"));
  EXPECT_FALSE(registry.ApplySpec("spec/bad=notamode"));
  EXPECT_FALSE(registry.ApplySpec("spec/bad2=nth:abc"));
  EXPECT_FALSE(registry.ApplySpec("spec/bad3=prob:x"));
  EXPECT_EQ(registry.Get("spec/good").mode(), Failpoint::Mode::kAlways);
  EXPECT_TRUE(registry.ApplySpec(""));
}

TEST_F(FailpointTest, DisarmAllDisarmsEverything) {
  auto& registry = FailpointRegistry::Instance();
  registry.Get("test/da1").ArmAlways();
  registry.Get("test/da2").ArmNth(2);
  registry.DisarmAll();
  EXPECT_FALSE(registry.Get("test/da1").ShouldFail());
  EXPECT_FALSE(registry.Get("test/da2").ShouldFail());
}

TEST_F(FailpointTest, MacroEvaluatesTheNamedFailpoint) {
  FailpointRegistry::Instance().Get("test/macro").ArmAlways();
  EXPECT_TRUE(VCF_FAILPOINT_TRIGGERED("test/macro"));
  FailpointRegistry::Instance().Get("test/macro").Disarm();
  EXPECT_FALSE(VCF_FAILPOINT_TRIGGERED("test/macro"));
}

TEST_F(FailpointTest, ConcurrentEvaluationCountsExactly) {
  auto& fp = FailpointRegistry::Instance().Get("test/mt");
  fp.ResetCounts();
  fp.ArmNth(2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::atomic<std::uint64_t> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t local = 0;
      for (int i = 0; i < kPerThread; ++i) local += fp.ShouldFail() ? 1 : 0;
      fired.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  // Every 2nd of 100k interleaved evaluations fires — exact under atomics.
  EXPECT_EQ(fp.evaluations(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(fired.load(), fp.evaluations() / 2);
  EXPECT_EQ(fp.triggers(), fired.load());
}

}  // namespace
}  // namespace vcf
