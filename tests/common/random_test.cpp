#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vcf {
namespace {

TEST(SplitMixTest, DeterministicAndSeedSensitive) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  SplitMix64 c(2);
  const std::uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
}

TEST(SplitMixTest, Mix64IsInjectiveOnSample) {
  // Mix64 composes invertible steps, so it is a bijection; spot-check a
  // large sample for collisions.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(Mix64(i)).second) << "collision at " << i;
  }
}

TEST(XoshiroTest, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, BelowStaysInRangeAndCoversRange) {
  Xoshiro256 rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.Below(10);
    ASSERT_LT(v, 10u);
    ++hits[static_cast<std::size_t>(v)];
  }
  for (int h : hits) EXPECT_GT(h, 800) << "strongly non-uniform draw";
}

TEST(XoshiroTest, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(XoshiroTest, GaussianMoments) {
  Xoshiro256 rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

}  // namespace
}  // namespace vcf
