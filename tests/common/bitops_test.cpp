#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "common/random.hpp"

namespace vcf {
namespace {

TEST(BitopsTest, IsPowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(std::uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((std::uint64_t{1} << 63) + 1));
}

TEST(BitopsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(BitopsTest, FloorAndCeilLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(9), 4u);
  EXPECT_EQ(CeilLog2(16), 4u);
  EXPECT_EQ(CeilLog2(17), 5u);
}

TEST(BitopsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(64), ~std::uint64_t{0});
  EXPECT_EQ(LowMask(63), ~std::uint64_t{0} >> 1);
}

TEST(BitopsTest, ReadWriteRoundTripAllOffsets) {
  // Every (bit offset mod 8, width) combination round-trips and leaves the
  // neighbouring bits untouched.
  for (unsigned bits = 1; bits <= 57; bits += 7) {
    for (unsigned off = 0; off < 8; ++off) {
      std::array<std::uint8_t, 24> buf;
      buf.fill(0xAA);
      const std::array<std::uint8_t, 24> before = buf;
      const std::uint64_t value = 0x0123456789ABCDEFULL & LowMask(bits);
      WriteBits(buf.data(), off, bits, value);
      EXPECT_EQ(ReadBits(buf.data(), off, bits), value)
          << "bits=" << bits << " off=" << off;
      // Restore and confirm no neighbouring damage.
      const std::uint64_t old = ReadBits(before.data(), off, bits);
      WriteBits(buf.data(), off, bits, old);
      EXPECT_EQ(buf, before) << "bits=" << bits << " off=" << off;
    }
  }
}

TEST(BitopsTest, WriteBitsMasksExcessValueBits) {
  std::array<std::uint8_t, 16> buf{};
  WriteBits(buf.data(), 3, 5, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(ReadBits(buf.data(), 3, 5), LowMask(5));
  // Bits outside [3, 8) stay zero.
  EXPECT_EQ(ReadBits(buf.data(), 0, 3), 0u);
  EXPECT_EQ(ReadBits(buf.data(), 8, 32), 0u);
}

TEST(BitopsTest, DenseRandomizedSlotArray) {
  // Simulates the PackedTable layout: consecutive `bits`-wide slots written
  // in random order must all read back intact.
  Xoshiro256 rng(42);
  for (unsigned bits : {5u, 13u, 14u, 17u, 29u, 57u}) {
    const std::size_t slots = 101;
    std::vector<std::uint8_t> buf((slots * bits + 7) / 8 + 8, 0);
    std::vector<std::uint64_t> expect(slots, 0);
    for (int iter = 0; iter < 2000; ++iter) {
      const std::size_t i = rng.Below(slots);
      const std::uint64_t v = rng.Next() & LowMask(bits);
      WriteBits(buf.data(), i * bits, bits, v);
      expect[i] = v;
    }
    for (std::size_t i = 0; i < slots; ++i) {
      ASSERT_EQ(ReadBits(buf.data(), i * bits, bits), expect[i])
          << "bits=" << bits << " slot=" << i;
    }
  }
}

}  // namespace
}  // namespace vcf
