// SeqLock protocol unit tests: the even/odd discipline readers key off,
// validation failure across writer critical sections, the RAII guard, and a
// two-thread consistency hammer (a reader must never observe a torn pair
// through a validated token). The cross-filter behaviour built on top is
// covered by optimistic_read_test.cpp.
#include "common/seqlock.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

namespace vcf {
namespace {

TEST(SeqLockTest, StartsEvenAndValidates) {
  SeqLock seq;
  EXPECT_EQ(seq.Value() & 1, 0u);
  const std::uint64_t token = seq.ReadBegin();
  EXPECT_EQ(token & 1, 0u);
  EXPECT_TRUE(seq.ReadValidate(token));
}

TEST(SeqLockTest, OddDuringWriteEvenAfter) {
  SeqLock seq;
  const std::uint64_t before = seq.ReadBegin();
  seq.WriteBegin();
  EXPECT_EQ(seq.Value() & 1, 1u) << "writer in progress must read odd";
  // A token taken before the write must no longer validate.
  EXPECT_FALSE(seq.ReadValidate(before));
  // A token taken mid-write is odd: the reader is expected to not even
  // probe, and validation of it must fail too.
  const std::uint64_t mid = seq.ReadBegin();
  EXPECT_EQ(mid & 1, 1u);
  EXPECT_FALSE(seq.ReadValidate(mid));
  seq.WriteEnd();
  EXPECT_EQ(seq.Value() & 1, 0u);
  const std::uint64_t after = seq.ReadBegin();
  EXPECT_TRUE(seq.ReadValidate(after));
  EXPECT_NE(after, before);
}

TEST(SeqLockTest, WriteGuardBumpsBySections) {
  SeqLock seq;
  const std::uint64_t start = seq.Value();
  {
    SeqLockWriteGuard guard(seq);
    EXPECT_EQ(seq.Value(), start + 1);
  }
  EXPECT_EQ(seq.Value(), start + 2);
  {
    SeqLockWriteGuard guard(seq);
  }
  EXPECT_EQ(seq.Value(), start + 4);
}

TEST(SeqLockTest, ValidatedReadsAreNeverTorn) {
  // One writer keeps two copies of a counter equal inside guard sections;
  // a reader that saw unequal copies through a validated token would prove
  // the protocol broken. Run under TSan this also checks the fences.
  SeqLock seq;
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  constexpr std::uint64_t kWrites = 20000;

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kWrites; ++i) {
      SeqLockWriteGuard guard(seq);
      a.store(i, std::memory_order_relaxed);
      b.store(i, std::memory_order_relaxed);
    }
  });

  std::uint64_t validated = 0;
  std::uint64_t torn = 0;
  while (validated < 1000) {
    const std::uint64_t token = seq.ReadBegin();
    if (token & 1) continue;
    const std::uint64_t x = a.load(std::memory_order_relaxed);
    const std::uint64_t y = b.load(std::memory_order_relaxed);
    if (!seq.ReadValidate(token)) continue;
    ++validated;
    if (x != y) ++torn;
    if (x == kWrites) break;  // writer finished; reads stay validated
  }
  writer.join();
  EXPECT_EQ(torn, 0u);
  EXPECT_GT(validated, 0u);
  EXPECT_EQ(a.load(), kWrites);
  EXPECT_EQ(b.load(), kWrites);
}

}  // namespace
}  // namespace vcf
