// End-to-end test of the vcf_tool CLI: build a checkpoint from stdin keys,
// query it, inspect it, and verify flag-mismatch rejection — through real
// process invocations of the installed binary (path injected by CMake).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "harness/filter_factory.hpp"
#include "server/server.hpp"

namespace {

#ifndef VCF_TOOL_PATH
#error "VCF_TOOL_PATH must be defined by the build system"
#endif

const char* kTool = VCF_TOOL_PATH;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

int RunCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return status < 0 ? status : WEXITSTATUS(status);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class VcfToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_path_ = TempPath("vcf_tool_keys.txt");
    state_path_ = TempPath("vcf_tool_state.bin");
    out_path_ = TempPath("vcf_tool_out.txt");
    std::ofstream keys(keys_path_);
    keys << "alpha\nbeta\ngamma\ndelta\n";
  }

  void TearDown() override {
    std::remove(keys_path_.c_str());
    std::remove(state_path_.c_str());
    std::remove(out_path_.c_str());
  }

  std::string Flags() const {
    return " --filter=ivcf --variant=6 --slots_log2=10 --state=" + state_path_;
  }

  std::string keys_path_, state_path_, out_path_;
};

TEST_F(VcfToolTest, NoArgumentsPrintsUsage) {
  EXPECT_EQ(RunCommand(std::string(kTool) + " > /dev/null 2>&1"), 64);
}

TEST_F(VcfToolTest, BuildQueryStatsRoundTrip) {
  ASSERT_EQ(RunCommand(std::string(kTool) + " build" + Flags() + " < " + keys_path_ +
                " 2> /dev/null"),
            0);

  // Query: members answer maybe; a fresh key answers no.
  {
    std::ofstream probes(out_path_ + ".in");
    probes << "alpha\nomega-never-inserted\n";
  }
  ASSERT_EQ(RunCommand(std::string(kTool) + " query" + Flags() + " < " + out_path_ +
                ".in > " + out_path_ + " 2> /dev/null"),
            0);
  const std::string output = ReadAll(out_path_);
  EXPECT_NE(output.find("maybe\talpha"), std::string::npos) << output;
  EXPECT_NE(output.find("no\tomega-never-inserted"), std::string::npos)
      << output;
  std::remove((out_path_ + ".in").c_str());

  // Stats reflect the build.
  ASSERT_EQ(RunCommand(std::string(kTool) + " stats" + Flags() + " > " + out_path_ +
                " 2> /dev/null"),
            0);
  const std::string stats = ReadAll(out_path_);
  EXPECT_NE(stats.find("name:         IVCF_6"), std::string::npos) << stats;
  EXPECT_NE(stats.find("items:        4"), std::string::npos) << stats;
}

TEST_F(VcfToolTest, MismatchedFlagsAreRejected) {
  ASSERT_EQ(RunCommand(std::string(kTool) + " build" + Flags() + " < " + keys_path_ +
                " 2> /dev/null"),
            0);
  // Same blob, different filter kind: load must fail.
  EXPECT_NE(RunCommand(std::string(kTool) + " stats --filter=cf --slots_log2=10 "
                "--state=" + state_path_ + " > /dev/null 2>&1"),
            0);
  // Different seed: also rejected.
  EXPECT_NE(RunCommand(std::string(kTool) + " stats" + Flags() +
                " --seed=1234 > /dev/null 2>&1"),
            0);
}

TEST_F(VcfToolTest, UnknownFilterKindErrors) {
  EXPECT_EQ(RunCommand(std::string(kTool) +
                " build --filter=bogus > /dev/null 2>&1 < " + keys_path_),
            1);
}

TEST_F(VcfToolTest, FreezeAndCompactMaintainATieredCheckpoint) {
  const std::string flags =
      " --filter=tiered:vcf --slots_log2=10 --state=" + state_path_;
  ASSERT_EQ(RunCommand(std::string(kTool) + " build" + flags + " < " +
                keys_path_ + " 2> /dev/null"),
            0);

  // Freeze rolls the front into a segment; membership must survive.
  ASSERT_EQ(RunCommand(std::string(kTool) + " freeze" + flags +
                " 2> /dev/null"),
            0);
  {
    std::ofstream probes(out_path_ + ".in");
    probes << "alpha\nbeta\nomega-never-inserted\n";
  }
  ASSERT_EQ(RunCommand(std::string(kTool) + " query" + flags + " < " +
                out_path_ + ".in > " + out_path_ + " 2> /dev/null"),
            0);
  std::string output = ReadAll(out_path_);
  EXPECT_NE(output.find("maybe\talpha"), std::string::npos) << output;
  EXPECT_NE(output.find("maybe\tbeta"), std::string::npos) << output;
  EXPECT_NE(output.find("no\tomega-never-inserted"), std::string::npos)
      << output;

  // Compact merges segments; membership must still survive.
  ASSERT_EQ(RunCommand(std::string(kTool) + " compact" + flags +
                " 2> /dev/null"),
            0);
  ASSERT_EQ(RunCommand(std::string(kTool) + " query" + flags + " < " +
                out_path_ + ".in > " + out_path_ + " 2> /dev/null"),
            0);
  output = ReadAll(out_path_);
  EXPECT_NE(output.find("maybe\talpha"), std::string::npos) << output;
  EXPECT_NE(output.find("maybe\tbeta"), std::string::npos) << output;
  EXPECT_NE(output.find("no\tomega-never-inserted"), std::string::npos)
      << output;
  std::remove((out_path_ + ".in").c_str());

  // Stats still load the rewritten checkpoint and name the tier.
  ASSERT_EQ(RunCommand(std::string(kTool) + " stats" + flags + " > " +
                out_path_ + " 2> /dev/null"),
            0);
  const std::string stats = ReadAll(out_path_);
  EXPECT_NE(stats.find("Tiered(VCF)"), std::string::npos) << stats;
  EXPECT_NE(stats.find("items:        4"), std::string::npos) << stats;
}

TEST_F(VcfToolTest, FreezeRequiresATieredFilter) {
  ASSERT_EQ(RunCommand(std::string(kTool) + " build" + Flags() + " < " +
                keys_path_ + " 2> /dev/null"),
            0);
  EXPECT_EQ(RunCommand(std::string(kTool) + " freeze" + Flags() +
                " > /dev/null 2>&1"),
            64);
  EXPECT_EQ(RunCommand(std::string(kTool) + " compact" + Flags() +
                " > /dev/null 2>&1"),
            64);
}

TEST_F(VcfToolTest, ServeHelpDocumentsTheDaemon) {
  // `serve --help` must exit 0 (not try to bind) and document the command.
  ASSERT_EQ(RunCommand(std::string(kTool) + " serve --help > /dev/null 2> " +
                out_path_),
            0);
  const std::string usage = ReadAll(out_path_);
  EXPECT_NE(usage.find("serve"), std::string::npos) << usage;
  EXPECT_NE(usage.find("ping"), std::string::npos) << usage;
  EXPECT_NE(usage.find("--filter"), std::string::npos) << usage;
}

TEST_F(VcfToolTest, PingRoundTripsAgainstLoopbackServer) {
  // Host an in-process serving core on an ephemeral port and drive the real
  // `vcf_tool ping` binary against it.
  vcf::FilterSpec spec;
  vcf::ParseFilterKind("vcf", spec);
  spec.params = vcf::CuckooParams::ForSlotsLog2(12);
  vcf::server::VcfServer server(vcf::MakeFilter(spec), {});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_EQ(RunCommand(std::string(kTool) + " ping --port=" +
                std::to_string(server.port()) + " --count=3 > " + out_path_ +
                " 2> /dev/null"),
            0);
  const std::string output = ReadAll(out_path_);
  EXPECT_NE(output.find("pong from 127.0.0.1:"), std::string::npos) << output;
  server.RequestShutdown();
  EXPECT_TRUE(server.Join());

  // Against a dead port, ping must fail with a non-zero exit.
  EXPECT_NE(RunCommand(std::string(kTool) + " ping --port=" +
                std::to_string(server.port()) + " > /dev/null 2>&1"),
            0);
}

}  // namespace
