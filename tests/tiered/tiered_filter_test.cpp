// TieredFilter lifecycle tests: freeze/compact semantics, tombstoned
// erase over immutable segments, watermark auto-freeze, accounting, the
// factory spellings, and the all-or-nothing tier checkpoint.
#include "tiered/tiered_filter.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "baselines/bloom_filter.hpp"
#include "core/vcf.hpp"
#include "harness/filter_factory.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams FrontParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.slots_per_bucket = 4;
  p.fingerprint_bits = 14;
  return p;
}

TieredFilter MakeTiered(SegmentKind kind = SegmentKind::kBinaryFuse,
                        double watermark = 0.85) {
  TieredOptions options;
  options.segment.kind = kind;
  options.segment.fingerprint_bits = 10;
  options.freeze_watermark = watermark;
  return TieredFilter(
      [] { return std::make_unique<VerticalCuckooFilter>(FrontParams()); },
      options);
}

TEST(TieredFilterTest, RejectsFrontsWithoutCanonicalEntities) {
  EXPECT_THROW(TieredFilter([] {
                 return std::make_unique<BloomFilter>(1024, 12.0,
                                                      HashKind::kFnv1a, 0, 1);
               }),
               std::invalid_argument);
}

TEST(TieredFilterTest, FreezeMovesFrontIntoASegmentWithoutFalseNegatives) {
  auto tiered = MakeTiered();
  const auto keys = UniformKeys(3000, 61);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  const std::size_t items_before = tiered.ItemCount();
  ASSERT_TRUE(tiered.Freeze());
  EXPECT_EQ(tiered.front().ItemCount(), 0u);
  EXPECT_GE(tiered.SegmentCount(), 1u);
  EXPECT_EQ(tiered.ItemCount(), items_before);
  for (const auto k : keys) {
    ASSERT_TRUE(tiered.Contains(k)) << "lost key across freeze: " << k;
  }
}

TEST(TieredFilterTest, FreezeOnEmptyFrontIsANoOp) {
  auto tiered = MakeTiered();
  ASSERT_TRUE(tiered.Freeze());
  EXPECT_EQ(tiered.SegmentCount(), 0u);
}

TEST(TieredFilterTest, WatermarkAutoFreezesDuringInserts) {
  auto tiered = MakeTiered(SegmentKind::kBinaryFuse, 0.5);
  const std::size_t front_slots = tiered.front().SlotCount();
  // Three front-fulls of keys must roll through the watermark repeatedly.
  const auto keys = UniformKeys(front_slots * 3, 62);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  EXPECT_GE(tiered.SegmentCount(), 3u);
  EXPECT_LT(tiered.front().LoadFactor(), 0.5 + 1e-9);
  for (const auto k : keys) ASSERT_TRUE(tiered.Contains(k));
}

TEST(TieredFilterTest, EraseShadowsFrozenEntitiesAndReinsertClears) {
  auto tiered = MakeTiered();
  const auto keys = UniformKeys(2000, 63);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());

  const std::uint64_t victim = keys[123];
  ASSERT_TRUE(tiered.Erase(victim));
  EXPECT_FALSE(tiered.Contains(victim));
  EXPECT_EQ(tiered.TombstoneCount(), 1u);
  // Double erase of an already-shadowed key reports nothing to erase.
  EXPECT_FALSE(tiered.Erase(victim));

  ASSERT_TRUE(tiered.Insert(victim));
  EXPECT_TRUE(tiered.Contains(victim));
  EXPECT_EQ(tiered.TombstoneCount(), 0u);
}

TEST(TieredFilterTest, CompactMergesSegmentsAndDropsTombstones) {
  auto tiered = MakeTiered();
  const auto batch1 = UniformKeys(1500, 64);
  const auto batch2 = UniformKeys(1500, 65);
  for (const auto k : batch1) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  for (const auto k : batch2) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  ASSERT_EQ(tiered.SegmentCount(), 2u);

  ASSERT_TRUE(tiered.Erase(batch1[7]));
  ASSERT_TRUE(tiered.Erase(batch2[9]));
  const std::size_t items_before = tiered.ItemCount();
  ASSERT_TRUE(tiered.Compact());
  EXPECT_EQ(tiered.SegmentCount(), 1u);
  EXPECT_EQ(tiered.TombstoneCount(), 0u);
  EXPECT_EQ(tiered.ItemCount(), items_before);
  EXPECT_FALSE(tiered.Contains(batch1[7]));
  EXPECT_FALSE(tiered.Contains(batch2[9]));
  for (const auto k : batch1) {
    if (k != batch1[7]) ASSERT_TRUE(tiered.Contains(k));
  }
  for (const auto k : batch2) {
    if (k != batch2[9]) ASSERT_TRUE(tiered.Contains(k));
  }
}

TEST(TieredFilterTest, CompactOfFullyErasedTierClearsEverything) {
  auto tiered = MakeTiered();
  const auto keys = UniformKeys(500, 66);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  // Two keys may canonicalise to one entity; the first erase of the pair
  // shadows both, so not every call reports an erase — but membership must
  // be gone for all of them.
  for (const auto k : keys) tiered.Erase(k);
  for (const auto k : keys) ASSERT_FALSE(tiered.Contains(k));
  ASSERT_TRUE(tiered.Compact());
  EXPECT_EQ(tiered.SegmentCount(), 0u);
  EXPECT_EQ(tiered.ItemCount(), 0u);
}

TEST(TieredFilterTest, FrozenTierCostsFewerBitsPerKey) {
  auto tiered = MakeTiered();
  const std::size_t mutable_bytes_empty = tiered.front().MemoryBytes();
  const auto keys = UniformKeys(3000, 67);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  // 10-bit fuse cells at ~1.13 cells/entity ≈ 11.3 bits/key frozen vs the
  // front's 14-bit slots at whatever its load leaves unused.
  const double frozen_bits_per_key =
      8.0 * static_cast<double>(tiered.MemoryBytes() - mutable_bytes_empty) /
      static_cast<double>(tiered.ItemCount());
  EXPECT_LT(frozen_bits_per_key, 14.0);
}

TEST(TieredFilterTest, SaveLoadSaveIsByteIdenticalAcrossTheWholeTier) {
  auto tiered = MakeTiered();
  const auto keys = UniformKeys(2500, 68);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  const auto more = UniformKeys(300, 69);
  for (const auto k : more) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Erase(keys[3]));
  ASSERT_TRUE(tiered.Erase(keys[14]));

  std::ostringstream first(std::ios::binary);
  ASSERT_TRUE(tiered.SaveState(first));
  auto restored = MakeTiered();
  std::istringstream in(first.str());
  ASSERT_TRUE(restored.LoadState(in));
  EXPECT_EQ(restored.ItemCount(), tiered.ItemCount());
  EXPECT_EQ(restored.SegmentCount(), tiered.SegmentCount());
  EXPECT_EQ(restored.TombstoneCount(), tiered.TombstoneCount());
  std::ostringstream second(std::ios::binary);
  ASSERT_TRUE(restored.SaveState(second));
  EXPECT_EQ(first.str(), second.str());
  for (const auto k : keys) {
    if (k == keys[3] || k == keys[14]) {
      EXPECT_FALSE(restored.Contains(k));
    } else {
      ASSERT_TRUE(restored.Contains(k));
    }
  }
  for (const auto k : more) ASSERT_TRUE(restored.Contains(k));
}

TEST(TieredFilterTest, LoadRejectsMismatchedTierConfig) {
  auto tiered = MakeTiered(SegmentKind::kBinaryFuse);
  for (const auto k : UniformKeys(500, 70)) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(tiered.SaveState(out));

  auto other = MakeTiered(SegmentKind::kXor);
  std::istringstream in(out.str());
  EXPECT_FALSE(other.LoadState(in));
  EXPECT_EQ(other.ItemCount(), 0u);
}

TEST(TieredFilterTest, ContainsBatchMatchesScalarAcrossTheTier) {
  auto tiered = MakeTiered();
  const auto keys = UniformKeys(2000, 71);
  for (const auto k : keys) ASSERT_TRUE(tiered.Insert(k));
  ASSERT_TRUE(tiered.Freeze());
  const auto hot = UniformKeys(200, 72);
  for (const auto k : hot) ASSERT_TRUE(tiered.Insert(k));

  std::vector<std::uint64_t> queries;
  for (std::size_t i = 0; i < 300; ++i) queries.push_back(keys[i]);
  for (std::size_t i = 0; i < 100; ++i) queries.push_back(hot[i]);
  for (std::size_t i = 0; i < 300; ++i) {
    queries.push_back(UniformKeyAt(73, i));
  }
  std::vector<unsigned char> batch(queries.size());
  tiered.ContainsBatch(queries, reinterpret_cast<bool*>(batch.data()));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(static_cast<bool>(batch[i]), tiered.Contains(queries[i])) << i;
  }
}

TEST(TieredFilterTest, FactorySpellingsCompose) {
  for (const char* spelling :
       {"tiered:vcf", "tiered:xor:cf", "tiered:bfuse:ivcf",
        "sharded:2:tiered:vcf", "resilient:tiered:kvcf"}) {
    FilterSpec spec;
    ParseFilterKind(spelling, spec);
    spec.variant = 4;
    spec.params.bucket_count = 1 << 8;
    spec.params.slots_per_bucket = 4;
    spec.params.fingerprint_bits = 14;
    auto filter = MakeFilter(spec);
    ASSERT_NE(filter, nullptr) << spelling;
    const auto keys = UniformKeys(200, 74);
    for (const auto k : keys) ASSERT_TRUE(filter->Insert(k)) << spelling;
    for (const auto k : keys) ASSERT_TRUE(filter->Contains(k)) << spelling;
  }
}

TEST(TieredFilterTest, FactoryRejectsNonEnumerableLeaves) {
  FilterSpec spec;
  ParseFilterKind("tiered:bf", spec);
  EXPECT_THROW(MakeFilter(spec), std::invalid_argument);
  ParseFilterKind("tiered:qf", spec);
  EXPECT_THROW(MakeFilter(spec), std::invalid_argument);
}

TEST(TieredFilterTest, FrontBudgetIsAnEighthOfTheSpec) {
  FilterSpec spec;
  ParseFilterKind("tiered:vcf", spec);
  spec.params.bucket_count = 1 << 12;
  auto filter = MakeFilter(spec);
  auto* tiered = dynamic_cast<TieredFilter*>(filter.get());
  ASSERT_NE(tiered, nullptr);
  EXPECT_EQ(tiered->front().SlotCount(),
            (spec.params.bucket_count / 8) * spec.params.slots_per_bucket);
  EXPECT_EQ(filter->Name(), "Tiered(VCF)");
}

}  // namespace
}  // namespace vcf
