#include "baselines/semisorted_cuckoo_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "baselines/cuckoo_filter.hpp"
#include "common/random.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 14;
  return p;
}

TEST(SsCfTest, ConstructionValidation) {
  CuckooParams p = SmallParams();
  p.fingerprint_bits = 4;
  EXPECT_THROW(SemiSortedCuckooFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.fingerprint_bits = 16;
  EXPECT_THROW(SemiSortedCuckooFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.slots_per_bucket = 2;
  EXPECT_THROW(SemiSortedCuckooFilter{p}, std::invalid_argument);
  EXPECT_NO_THROW(SemiSortedCuckooFilter{SmallParams()});
}

TEST(SsCfTest, BucketCodecRoundTripsEveryMultiset) {
  // Randomized multisets of 4 fingerprints (including empties and
  // duplicates) must survive encode/decode as multisets.
  SemiSortedCuckooFilter f(SmallParams());
  Xoshiro256 rng(1001);
  for (int trial = 0; trial < 20000; ++trial) {
    SemiSortedCuckooFilter::Bucket in;
    for (auto& fp : in) {
      fp = rng.Below(4) == 0 ? 0 : (rng.Next() & 0x3FFF);
    }
    f.EncodeBucket(3, in);
    SemiSortedCuckooFilter::Bucket out = f.DecodeBucket(3);
    std::sort(in.begin(), in.end());
    std::sort(out.begin(), out.end());
    ASSERT_EQ(in, out);
  }
}

TEST(SsCfTest, SavesOneBitPerSlotVersusPlainCF) {
  const CuckooParams p = SmallParams();
  SemiSortedCuckooFilter compact(p);
  CuckooFilter plain(p);
  // 13 vs 14 bits per slot at f = 14 (modulo the shared 8-byte slack).
  EXPECT_EQ(compact.BitsPerSlot(), 13.0);
  const double compact_bits =
      static_cast<double>(compact.MemoryBytes() - 8) * 8.0 /
      static_cast<double>(compact.SlotCount());
  const double plain_bits = static_cast<double>(plain.MemoryBytes() - 8) * 8.0 /
                            static_cast<double>(plain.SlotCount());
  EXPECT_NEAR(compact_bits, 13.0, 0.01);
  EXPECT_NEAR(plain_bits, 14.0, 0.01);
}

TEST(SsCfTest, InsertContainsErase) {
  SemiSortedCuckooFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(5));
  EXPECT_TRUE(f.Insert(5));
  EXPECT_TRUE(f.Contains(5));
  EXPECT_TRUE(f.Erase(5));
  EXPECT_FALSE(f.Contains(5));
  EXPECT_EQ(f.Name(), "ssCF");
}

TEST(SsCfTest, NoFalseNegativesAtHighLoad) {
  SemiSortedCuckooFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 95 / 100, 1011)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / (f.SlotCount() * 95 / 100),
            0.99);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(SsCfTest, AnswersMatchPlainCFBitForBit) {
  // Same params, same keys: semi-sorting is a pure storage optimization, so
  // positive answers must be identical and alien answers identical too
  // (the candidate derivation and fingerprints are shared).
  const CuckooParams p = SmallParams();
  SemiSortedCuckooFilter compact(p);
  CuckooFilter plain(p);
  const auto keys = UniformKeys(p.slot_count() / 2, 1021);
  for (const auto k : keys) {
    ASSERT_TRUE(compact.Insert(k));
    ASSERT_TRUE(plain.Insert(k));
  }
  for (const auto a : UniformKeys(50000, 1022)) {
    ASSERT_EQ(compact.Contains(a), plain.Contains(a)) << a;
  }
}

TEST(SsCfTest, DuplicatesAndPartialErase) {
  SemiSortedCuckooFilter f(SmallParams());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(f.Insert(77));
  EXPECT_EQ(f.ItemCount(), 4u);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(f.Erase(77));
  EXPECT_TRUE(f.Contains(77));
  ASSERT_TRUE(f.Erase(77));
  EXPECT_FALSE(f.Contains(77));
}

TEST(SsCfTest, FailedInsertRollsBack) {
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  p.max_kicks = 16;
  SemiSortedCuckooFilter f(p);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 1031)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(SsCfTest, StateRoundTrip) {
  SemiSortedCuckooFilter a(SmallParams());
  const auto keys = UniformKeys(2000, 1041);
  for (const auto k : keys) ASSERT_TRUE(a.Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(a.SaveState(blob));
  SemiSortedCuckooFilter b(SmallParams());
  ASSERT_TRUE(b.LoadState(blob));
  EXPECT_EQ(b.ItemCount(), a.ItemCount());
  for (const auto k : keys) ASSERT_TRUE(b.Contains(k));
}

TEST(SsCfTest, ChurnKeepsBookkeepingExact) {
  SemiSortedCuckooFilter f(SmallParams());
  std::vector<std::uint64_t> live;
  std::size_t next = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 150; ++i) {
      const std::uint64_t k = UniformKeyAt(1051, next++);
      if (f.Insert(k)) live.push_back(k);
    }
    for (int i = 0; i < 75 && !live.empty(); ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    ASSERT_EQ(f.ItemCount(), live.size());
  }
  for (const auto k : live) ASSERT_TRUE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
