#include "baselines/cuckoo_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 14;
  return p;
}

TEST(CuckooFilterTest, ConstructionValidation) {
  CuckooParams p = SmallParams();
  p.fingerprint_bits = 0;
  EXPECT_THROW(CuckooFilter{p}, std::invalid_argument);
  p.fingerprint_bits = 26;
  EXPECT_THROW(CuckooFilter{p}, std::invalid_argument);
}

TEST(CuckooFilterTest, InsertLookupErase) {
  CuckooFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(123));
  EXPECT_TRUE(f.Insert(123));
  EXPECT_TRUE(f.Contains(123));
  EXPECT_TRUE(f.Erase(123));
  EXPECT_FALSE(f.Contains(123));
  EXPECT_EQ(f.Name(), "CF");
  EXPECT_TRUE(f.SupportsDeletion());
}

TEST(CuckooFilterTest, NoFalseNegativesAtHighLoad) {
  CuckooFilter f(SmallParams());
  const auto keys = UniformKeys(f.SlotCount() * 9 / 10, 21);
  std::vector<std::uint64_t> stored;
  for (const auto k : keys) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / keys.size(), 0.99);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(CuckooFilterTest, PartialKeyAlternationIsInvolutive) {
  // B1 = B2 xor hash(fp): inserting and evicting must cycle between exactly
  // two buckets. Verified indirectly: items survive heavy eviction churn.
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 6;
  CuckooFilter f(p);
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount(), 31)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(f.counters().evictions, 0u) << "load was too low to test eviction";
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(CuckooFilterTest, DuplicateInsertsAndPartialErase) {
  CuckooFilter f(SmallParams());
  ASSERT_TRUE(f.Insert(99));
  ASSERT_TRUE(f.Insert(99));
  ASSERT_TRUE(f.Insert(99));
  EXPECT_EQ(f.ItemCount(), 3u);
  EXPECT_TRUE(f.Erase(99));
  EXPECT_TRUE(f.Erase(99));
  EXPECT_TRUE(f.Contains(99));
  EXPECT_TRUE(f.Erase(99));
  EXPECT_FALSE(f.Contains(99));
}

TEST(CuckooFilterTest, FailedInsertRollsBack) {
  CuckooParams p = SmallParams();
  p.bucket_count = 1 << 4;
  p.max_kicks = 16;
  CuckooFilter f(p);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 41)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(CuckooFilterTest, BucketFullWithoutKicksFails) {
  CuckooParams p = SmallParams();
  p.max_kicks = 0;
  CuckooFilter f(p);
  // Offer far more keys than slots; with zero kicks some must fail.
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 2, 51)) {
    failures += f.Insert(k) ? 0 : 1;
  }
  EXPECT_GT(failures, 0u);
  EXPECT_EQ(f.counters().evictions, 0u);
}

TEST(CuckooFilterTest, ClearResets) {
  CuckooFilter f(SmallParams());
  for (const auto k : UniformKeys(64, 61)) ASSERT_TRUE(f.Insert(k));
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  for (const auto k : UniformKeys(64, 61)) EXPECT_FALSE(f.Contains(k));
}

class CuckooFprTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CuckooFprTest, EmpiricalFprNearTheory) {
  // xi ~= 2b/2^f at full load; we fill to ~95% and allow generous slack.
  const unsigned f_bits = GetParam();
  CuckooParams p;
  p.bucket_count = 1 << 12;
  p.fingerprint_bits = f_bits;
  CuckooFilter f(p);
  for (const auto k : UniformKeys(f.SlotCount() * 95 / 100, 71)) f.Insert(k);
  const auto aliens = UniformKeys(200000, 72);
  std::size_t fp_count = 0;
  for (const auto a : aliens) fp_count += f.Contains(a) ? 1 : 0;
  const double measured = static_cast<double>(fp_count) / aliens.size();
  const double theory =
      2.0 * p.slots_per_bucket * 0.95 / std::exp2(static_cast<double>(f_bits));
  EXPECT_LT(measured, theory * 2.0 + 1e-4) << "f=" << f_bits;
  if (f_bits <= 12) {
    EXPECT_GT(measured, theory * 0.3) << "f=" << f_bits;
  }
}

INSTANTIATE_TEST_SUITE_P(FingerprintWidths, CuckooFprTest,
                         ::testing::Values(8u, 10u, 12u, 14u));

}  // namespace
}  // namespace vcf
