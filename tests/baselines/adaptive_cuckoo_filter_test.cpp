#include "baselines/adaptive_cuckoo_filter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 10;
  p.fingerprint_bits = 10;  // short fingerprints: plenty of FPs to adapt away
  return p;
}

TEST(AcfTest, ConstructionValidation) {
  CuckooParams p = SmallParams();
  p.bucket_count = 100;
  EXPECT_THROW(AdaptiveCuckooFilter{p}, std::invalid_argument);
  EXPECT_NO_THROW(AdaptiveCuckooFilter{SmallParams()});
}

TEST(AcfTest, InsertContainsErase) {
  AdaptiveCuckooFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(5));
  EXPECT_TRUE(f.Insert(5));
  EXPECT_TRUE(f.Contains(5));
  EXPECT_TRUE(f.Erase(5));
  EXPECT_FALSE(f.Contains(5));
  EXPECT_EQ(f.Name(), "ACF");
}

TEST(AcfTest, NoFalseNegativesAtHighLoad) {
  AdaptiveCuckooFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 9 / 10, 1301)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()), f.SlotCount() * 0.85);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(AcfTest, AdaptationRemovesARecurringFalsePositive) {
  AdaptiveCuckooFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 3 / 4, 1302)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  // Find an alien key that currently false-positives.
  std::uint64_t fp_key = 0;
  for (std::size_t i = 0; i < (1u << 22); ++i) {
    const std::uint64_t candidate = UniformKeyAt(1303, i);
    if (f.Contains(candidate)) {
      fp_key = candidate;
      break;
    }
  }
  ASSERT_NE(fp_key, 0u) << "no false positive found to adapt away";

  EXPECT_TRUE(f.AdaptFalsePositive(fp_key));
  EXPECT_GE(f.adaptations(), 1u);
  // The re-fingerprinted bucket can (rarely) collide again under the new
  // function; a couple of extra adaptation rounds make the FP vanish.
  for (int i = 0; i < 5 && f.Contains(fp_key); ++i) {
    f.AdaptFalsePositive(fp_key);
  }
  EXPECT_FALSE(f.Contains(fp_key))
      << "the adapted bucket must stop matching this key";
  // Adaptation must not lose any stored item.
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(AcfTest, RepeatedNegativeWorkloadFprDecays) {
  // The ACF's headline behaviour: a FIXED set of negative queries, probed
  // repeatedly with adaptation feedback, converges to ~zero false
  // positives; a plain CF would repeat the same mistakes forever.
  AdaptiveCuckooFilter f(SmallParams());
  for (const auto k : UniformKeys(f.SlotCount() * 3 / 4, 1304)) f.Insert(k);
  const auto aliens = UniformKeys(20000, 1305);

  std::size_t first_pass_fps = 0;
  for (const auto a : aliens) {
    if (f.Contains(a)) {
      ++first_pass_fps;
      f.AdaptFalsePositive(a);  // backing store disproves it; filter adapts
    }
  }
  // A few adaptation rounds to wash out cross-bucket interactions.
  for (int round = 0; round < 3; ++round) {
    for (const auto a : aliens) {
      if (f.Contains(a)) f.AdaptFalsePositive(a);
    }
  }
  std::size_t final_pass_fps = 0;
  for (const auto a : aliens) final_pass_fps += f.Contains(a) ? 1 : 0;

  EXPECT_GT(first_pass_fps, 0u) << "f=10 at 75% load must produce FPs";
  EXPECT_LT(final_pass_fps * 10, first_pass_fps)
      << "adaptation failed to suppress recurring false positives";
}

TEST(AcfTest, AdaptationPreservesMembershipUnderChurn) {
  AdaptiveCuckooFilter f(SmallParams());
  std::vector<std::uint64_t> live;
  std::size_t next = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 150; ++i) {
      const std::uint64_t k = UniformKeyAt(1306, next++);
      if (f.Insert(k)) live.push_back(k);
    }
    // Adversarial negatives trigger adaptations mid-churn.
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t a = UniformKeyAt(1307, next * 7 + i);
      if (f.Contains(a)) f.AdaptFalsePositive(a);
    }
    for (int i = 0; i < 75 && !live.empty(); ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    for (const auto k : live) ASSERT_TRUE(f.Contains(k));
    ASSERT_EQ(f.ItemCount(), live.size());
  }
}

TEST(AcfTest, MemoryExcludesShadowStore) {
  AdaptiveCuckooFilter f(SmallParams());
  // f-bit table + 2 bits per bucket; far below 8 bytes/slot of shadow keys.
  EXPECT_LT(f.MemoryBytes(),
            f.SlotCount() * sizeof(std::uint64_t) / 2);
}

}  // namespace
}  // namespace vcf
