#include "baselines/dleft_cbf.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

DleftCountingBloomFilter::Params SmallParams() {
  DleftCountingBloomFilter::Params p;
  p.subtables = 4;
  p.buckets_per_subtable = 1 << 7;
  p.cells_per_bucket = 8;
  p.fingerprint_bits = 14;
  return p;
}

TEST(DlcbfTest, ConstructionValidation) {
  auto p = SmallParams();
  p.subtables = 0;
  EXPECT_THROW(DleftCountingBloomFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.buckets_per_subtable = 100;  // not pow2
  EXPECT_THROW(DleftCountingBloomFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.cells_per_bucket = 0;
  EXPECT_THROW(DleftCountingBloomFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.fingerprint_bits = 31;
  EXPECT_THROW(DleftCountingBloomFilter{p}, std::invalid_argument);
  EXPECT_NO_THROW(DleftCountingBloomFilter{SmallParams()});
}

TEST(DlcbfTest, InsertContainsErase) {
  DleftCountingBloomFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(11));
  EXPECT_TRUE(f.Insert(11));
  EXPECT_TRUE(f.Contains(11));
  EXPECT_TRUE(f.Erase(11));
  EXPECT_FALSE(f.Contains(11));
  EXPECT_EQ(f.Name(), "dlCBF");
}

TEST(DlcbfTest, DuplicatesShareACellUpToSaturation) {
  DleftCountingBloomFilter f(SmallParams());
  // Three duplicates fit one cell's 2-bit counter; the fourth opens a new
  // cell. All erases must balance.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.Insert(99));
  EXPECT_EQ(f.ItemCount(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(f.Contains(99));
    ASSERT_TRUE(f.Erase(99));
  }
  EXPECT_FALSE(f.Contains(99));
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(DlcbfTest, NoFalseNegativesAtHighLoad) {
  DleftCountingBloomFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  // d-left placement sustains ~80-90%+ without relocation; fill to 75%.
  for (const auto k : UniformKeys(f.SlotCount() * 3 / 4, 951)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()), f.SlotCount() * 0.7);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(DlcbfTest, DleftBalancesLoad) {
  // The least-loaded rule keeps bucket overflow rare well past the point a
  // single-choice table would overflow (power of two choices).
  DleftCountingBloomFilter f(SmallParams());
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 8 / 10, 952)) {
    failures += f.Insert(k) ? 0 : 1;
  }
  EXPECT_EQ(failures, 0u) << "d-left should absorb 80% load without overflow";
}

TEST(DlcbfTest, EraseOfAbsentKeyFails) {
  DleftCountingBloomFilter f(SmallParams());
  EXPECT_FALSE(f.Erase(123456789));
}

TEST(DlcbfTest, ChurnKeepsBookkeepingExact) {
  DleftCountingBloomFilter f(SmallParams());
  std::vector<std::uint64_t> live;
  std::size_t next = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t k = UniformKeyAt(953, next++);
      if (f.Insert(k)) live.push_back(k);
    }
    for (int i = 0; i < 50 && !live.empty(); ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    ASSERT_EQ(f.ItemCount(), live.size());
  }
  for (const auto k : live) ASSERT_TRUE(f.Contains(k));
}

TEST(DlcbfTest, StateRoundTrip) {
  DleftCountingBloomFilter a(SmallParams());
  const auto keys = UniformKeys(1000, 954);
  for (const auto k : keys) ASSERT_TRUE(a.Insert(k));
  ASSERT_TRUE(a.Insert(keys[0]));  // duplicate: items != occupied cells
  std::stringstream blob;
  ASSERT_TRUE(a.SaveState(blob));
  DleftCountingBloomFilter b(SmallParams());
  ASSERT_TRUE(b.LoadState(blob));
  EXPECT_EQ(b.ItemCount(), a.ItemCount());
  for (const auto k : keys) ASSERT_TRUE(b.Contains(k));
}

TEST(DlcbfTest, ClearResets) {
  DleftCountingBloomFilter f(SmallParams());
  for (const auto k : UniformKeys(100, 955)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  for (const auto k : UniformKeys(100, 955)) EXPECT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
