#include "baselines/bloom_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/model.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(BloomTest, ConstructionValidation) {
  EXPECT_THROW(BloomFilter(0, 10.0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(100, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(BloomFilter(100, 10.0));
}

TEST(BloomTest, OptimalKChosen) {
  // k = round(bits_per_item * ln 2).
  EXPECT_EQ(BloomFilter(1000, 10.0).num_hashes(), 7u);
  EXPECT_EQ(BloomFilter(1000, 12.0).num_hashes(), 8u);
  EXPECT_EQ(BloomFilter(1000, 12.0, HashKind::kFnv1a, 3).num_hashes(), 3u);
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f(10000, 12.0);
  const auto keys = UniformKeys(10000, 201);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(BloomTest, DeletionUnsupported) {
  BloomFilter f(100, 10.0);
  f.Insert(5);
  EXPECT_FALSE(f.SupportsDeletion());
  EXPECT_FALSE(f.Erase(5));
  EXPECT_TRUE(f.Contains(5)) << "failed Erase must not mutate";
}

TEST(BloomTest, FprNearTheory) {
  const std::size_t n = 20000;
  BloomFilter f(n, 12.0);
  for (const auto k : UniformKeys(n, 211)) f.Insert(k);
  const auto aliens = UniformKeys(200000, 212);
  std::size_t positives = 0;
  for (const auto a : aliens) positives += f.Contains(a) ? 1 : 0;
  const double measured = static_cast<double>(positives) / aliens.size();
  const double theory = model::BloomFalsePositiveRate(
      f.num_hashes(), static_cast<double>(n), 12.0 * n);
  EXPECT_LT(measured, theory * 2.5 + 1e-4);
  EXPECT_GT(measured, theory * 0.4 - 1e-6);
}

TEST(BloomTest, ClearResets) {
  BloomFilter f(1000, 10.0);
  for (const auto k : UniformKeys(100, 221)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  std::size_t positives = 0;
  for (const auto k : UniformKeys(100, 221)) positives += f.Contains(k) ? 1 : 0;
  EXPECT_EQ(positives, 0u);
}

TEST(BloomTest, ClassicModeCountsKHashesPerInsert) {
  // The paper's comparison framework charges the BF k hash computations per
  // operation — verify the default (classic) mode really pays them.
  BloomFilter f(1000, 12.0);  // k = 8
  ASSERT_EQ(f.hashing_mode(), BloomHashing::kClassic);
  f.ResetCounters();
  f.Insert(1);
  EXPECT_EQ(f.counters().hash_computations, f.num_hashes());
}

TEST(BloomTest, DoubleHashingModeCountsTwoHashes) {
  BloomFilter f(1000, 12.0, HashKind::kFnv1a, 0, 0x5EED,
                BloomHashing::kDoubleHashing);
  f.ResetCounters();
  f.Insert(1);
  EXPECT_EQ(f.counters().hash_computations, 2u);
}

TEST(BloomTest, BothModesHaveNoFalseNegativesAndSimilarFpr) {
  const std::size_t n = 20000;
  for (BloomHashing mode :
       {BloomHashing::kClassic, BloomHashing::kDoubleHashing}) {
    BloomFilter f(n, 12.0, HashKind::kFnv1a, 0, 0x5EED, mode);
    const auto keys = UniformKeys(n, 231);
    for (const auto k : keys) f.Insert(k);
    for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
    const auto aliens = UniformKeys(100000, 232);
    std::size_t positives = 0;
    for (const auto a : aliens) positives += f.Contains(a) ? 1 : 0;
    const double fpr = static_cast<double>(positives) / aliens.size();
    // Both modes target the same asymptotic FPR (~2^-k = 0.4% at k = 8).
    EXPECT_LT(fpr, 0.012) << static_cast<int>(mode);
    EXPECT_GT(fpr, 0.0005) << static_cast<int>(mode);
  }
}

TEST(BloomTest, MemoryMatchesBudget) {
  BloomFilter f(1000, 16.0);
  EXPECT_NEAR(static_cast<double>(f.MemoryBytes()) * 8.0, 16.0 * 1000, 64.0);
}

}  // namespace
}  // namespace vcf
