#include "baselines/quotient_filter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(QuotientFilterTest, ConstructionValidation) {
  EXPECT_THROW(QuotientFilter(0, 8), std::invalid_argument);
  EXPECT_THROW(QuotientFilter(33, 8), std::invalid_argument);
  EXPECT_THROW(QuotientFilter(10, 0), std::invalid_argument);
  EXPECT_THROW(QuotientFilter(10, 31), std::invalid_argument);
  EXPECT_NO_THROW(QuotientFilter(10, 9));
}

TEST(QuotientFilterTest, InsertContainsErase) {
  QuotientFilter f(10, 9);
  EXPECT_FALSE(f.Contains(42));
  EXPECT_TRUE(f.Insert(42));
  EXPECT_TRUE(f.Contains(42));
  EXPECT_TRUE(f.CheckInvariants());
  EXPECT_TRUE(f.Erase(42));
  EXPECT_FALSE(f.Contains(42));
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(QuotientFilterTest, NoFalseNegativesAt85PercentLoad) {
  QuotientFilter f(12, 10);
  const auto keys = UniformKeys(f.SlotCount() * 85 / 100, 901);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  ASSERT_TRUE(f.CheckInvariants());
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(QuotientFilterTest, InvariantsHoldDuringFill) {
  QuotientFilter f(8, 8);
  const auto keys = UniformKeys(f.SlotCount() - 2, 902);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(f.Insert(keys[i])) << i;
    if (i % 16 == 0) {
      ASSERT_TRUE(f.CheckInvariants()) << "after insert " << i;
    }
  }
  ASSERT_TRUE(f.CheckInvariants());
}

TEST(QuotientFilterTest, RejectsWhenNearlyFull) {
  QuotientFilter f(6, 8);  // 64 slots
  std::size_t stored = 0;
  for (const auto k : UniformKeys(200, 903)) {
    stored += f.Insert(k) ? 1 : 0;
  }
  EXPECT_EQ(stored, f.SlotCount() - 1) << "must keep one structural empty slot";
  EXPECT_GT(f.counters().insert_failures, 0u);
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(QuotientFilterTest, DuplicatesAndPartialErase) {
  QuotientFilter f(10, 9);
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));
  EXPECT_EQ(f.ItemCount(), 3u);
  EXPECT_TRUE(f.Erase(7));
  EXPECT_TRUE(f.Contains(7));
  EXPECT_TRUE(f.Erase(7));
  EXPECT_TRUE(f.Erase(7));
  EXPECT_FALSE(f.Contains(7));
  EXPECT_FALSE(f.Erase(7));
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(QuotientFilterTest, DifferentialAgainstExactReference) {
  // Random insert/erase/lookup against an exact multiset; invariants are
  // re-validated throughout. Small table => constant cluster merging,
  // splitting and wrap-around.
  QuotientFilter f(7, 10);  // 128 slots
  std::map<std::uint64_t, int> reference;
  std::size_t live = 0;
  Xoshiro256 rng(904);
  std::vector<std::uint64_t> universe = UniformKeys(96, 905);
  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t key = universe[rng.Below(universe.size())];
    const double roll = rng.NextDouble();
    if (roll < 0.5 && live + 1 < f.SlotCount()) {
      if (f.Insert(key)) {
        ++reference[key];
        ++live;
      }
    } else if (roll < 0.8) {
      const auto it = reference.find(key);
      if (it != reference.end() && it->second > 0) {
        ASSERT_TRUE(f.Erase(key)) << "op " << op;
        if (--it->second == 0) reference.erase(it);
        --live;
      }
    } else {
      if (reference.count(key)) {
        ASSERT_TRUE(f.Contains(key)) << "false negative at op " << op;
      }
    }
    ASSERT_EQ(f.ItemCount(), live);
    if (op % 200 == 0) {
      ASSERT_TRUE(f.CheckInvariants()) << "op " << op;
    }
  }
  ASSERT_TRUE(f.CheckInvariants());
}

TEST(QuotientFilterTest, FprScalesWithRemainderBits) {
  double prev = 1.0;
  for (unsigned r : {6u, 10u, 14u}) {
    QuotientFilter f(12, r);
    for (const auto k : UniformKeys(f.SlotCount() * 3 / 4, 906)) f.Insert(k);
    std::size_t fp = 0;
    const auto aliens = UniformKeys(200000, 907);
    for (const auto a : aliens) fp += f.Contains(a) ? 1 : 0;
    const double rate = static_cast<double>(fp) / aliens.size();
    EXPECT_LT(rate, prev) << "r=" << r;
    prev = rate;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(QuotientFilterTest, WrapAroundClustersSurviveChurn) {
  // Force clusters across the index-wrap boundary: tiny table, many ops.
  QuotientFilter f(4, 12);  // 16 slots
  std::vector<std::uint64_t> live;
  Xoshiro256 rng(908);
  std::size_t next = 0;
  for (int round = 0; round < 300; ++round) {
    while (live.size() + 2 < f.SlotCount()) {
      const std::uint64_t k = UniformKeyAt(909, next++);
      if (!f.Insert(k)) break;
      live.push_back(k);
    }
    ASSERT_TRUE(f.CheckInvariants()) << "round " << round;
    for (const auto k : live) ASSERT_TRUE(f.Contains(k));
    const std::size_t drop = 1 + rng.Below(live.size());
    for (std::size_t i = 0; i < drop; ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    ASSERT_TRUE(f.CheckInvariants());
  }
}

TEST(QuotientFilterTest, StateRoundTrip) {
  QuotientFilter a(10, 9);
  const auto keys = UniformKeys(600, 910);
  for (const auto k : keys) ASSERT_TRUE(a.Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(a.SaveState(blob));
  QuotientFilter b(10, 9);
  ASSERT_TRUE(b.LoadState(blob));
  EXPECT_EQ(b.ItemCount(), a.ItemCount());
  for (const auto k : keys) ASSERT_TRUE(b.Contains(k));
  EXPECT_TRUE(b.CheckInvariants());
  // Mismatched geometry rejected.
  std::stringstream blob2;
  ASSERT_TRUE(a.SaveState(blob2));
  QuotientFilter c(10, 10);
  EXPECT_FALSE(c.LoadState(blob2));
}

TEST(QuotientFilterTest, ClearResets) {
  QuotientFilter f(8, 8);
  for (const auto k : UniformKeys(100, 911)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
  for (const auto k : UniformKeys(100, 911)) EXPECT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
