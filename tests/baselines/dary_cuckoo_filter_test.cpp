#include "baselines/dary_cuckoo_filter.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams(unsigned index_log2 = 10) {
  CuckooParams p;
  p.bucket_count = std::size_t{1} << index_log2;
  p.fingerprint_bits = 14;
  return p;
}

TEST(DaryTest, ConstructionValidation) {
  EXPECT_THROW(DaryCuckooFilter(SmallParams(), 3), std::invalid_argument);
  EXPECT_THROW(DaryCuckooFilter(SmallParams(), 0), std::invalid_argument);
  EXPECT_NO_THROW(DaryCuckooFilter(SmallParams(), 2));
  EXPECT_NO_THROW(DaryCuckooFilter(SmallParams(), 8));
  EXPECT_EQ(DaryCuckooFilter(SmallParams(), 4).Name(), "DCF(d=4)");
}

TEST(DaryTest, Eq2CyclicPropertyEvenWidth) {
  // Base-4 digit-wise addition applied d times returns to the start (Eq. 2).
  const DaryCuckooFilter f(SmallParams(10), 4);
  Xoshiro256 rng(5);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t x = rng.Next() & LowMask(10);
    const std::uint64_t y = rng.Next() & LowMask(10);
    std::uint64_t cur = x;
    for (int i = 0; i < 4; ++i) cur = f.DigitAdd(cur, y);
    ASSERT_EQ(cur, x) << "x=" << x << " y=" << y;
  }
}

TEST(DaryTest, Eq2CyclicPropertyOddWidth) {
  // Odd index width => mixed radix with a radix-2 top digit; the period must
  // still divide 4.
  const DaryCuckooFilter f(SmallParams(9), 4);
  Xoshiro256 rng(6);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t x = rng.Next() & LowMask(9);
    const std::uint64_t y = rng.Next() & LowMask(9);
    std::uint64_t cur = x;
    for (int i = 0; i < 4; ++i) cur = f.DigitAdd(cur, y);
    ASSERT_EQ(cur, x);
  }
}

TEST(DaryTest, DigitAddStaysInRange) {
  const DaryCuckooFilter f(SmallParams(9), 4);
  Xoshiro256 rng(7);
  for (int t = 0; t < 1000; ++t) {
    const std::uint64_t v =
        f.DigitAdd(rng.Next() & LowMask(9), rng.Next() & LowMask(9));
    ASSERT_LT(v, std::uint64_t{1} << 9);
  }
}

TEST(DaryTest, CandidatesAreUsuallyDistinct) {
  const DaryCuckooFilter f(SmallParams(10), 4);
  Xoshiro256 rng(8);
  int distinct4 = 0;
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t b = rng.Next() & LowMask(10);
    const std::uint64_t h = rng.Next() & LowMask(10);
    std::set<std::uint64_t> cands = {b};
    std::uint64_t cur = b;
    for (int i = 0; i < 3; ++i) {
      cur = f.DigitAdd(cur, h);
      cands.insert(cur);
    }
    distinct4 += cands.size() == 4 ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(distinct4) / trials, 0.95);
}

TEST(DaryTest, NoFalseNegativesAtHighLoad) {
  DaryCuckooFilter f(SmallParams(), 4);
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 95 / 100, 81)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / (f.SlotCount() * 95 / 100),
            0.99);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(DaryTest, EraseWorks) {
  DaryCuckooFilter f(SmallParams(), 4);
  const auto keys = UniformKeys(500, 91);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(DaryTest, FailedInsertRollsBack) {
  CuckooParams p = SmallParams(4);
  p.max_kicks = 16;
  DaryCuckooFilter f(p, 4);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 101)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(DaryTest, HigherLoadThanCFEquivalent) {
  // DCF's 4 candidates should sustain a (near-)higher fill than 2-candidate
  // CF would at the same geometry — here we just require > 99% like VCF.
  DaryCuckooFilter f(SmallParams(), 4);
  std::size_t stored = 0;
  for (const auto k : UniformKeys(f.SlotCount(), 111)) {
    stored += f.Insert(k) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(stored) / f.SlotCount(), 0.99);
}

class DarySweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DarySweepTest, InvariantsAcrossD) {
  const unsigned d = GetParam();
  CuckooParams p = SmallParams(8);
  DaryCuckooFilter f(p, d);
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 9 / 10, 121 + d)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
  for (const auto k : stored) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(DValues, DarySweepTest, ::testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace vcf
