#include "baselines/morton_filter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

MortonFilter::Params SmallParams() {
  MortonFilter::Params p;
  p.bucket_count = 1 << 10;  // 16 blocks, 736 physical slots
  return p;
}

TEST(MortonTest, ConstructionValidation) {
  MortonFilter::Params p = SmallParams();
  p.bucket_count = 100;  // not pow2
  EXPECT_THROW(MortonFilter{p}, std::invalid_argument);
  p.bucket_count = 32;  // below one block
  EXPECT_THROW(MortonFilter{p}, std::invalid_argument);
  EXPECT_NO_THROW(MortonFilter{SmallParams()});
}

TEST(MortonTest, BlockIsOneCacheLine) {
  // The compressed-block premise: 64 buckets' worth of state in 64 bytes.
  MortonFilter f(SmallParams());
  EXPECT_EQ(f.MemoryBytes(), (SmallParams().bucket_count / 64) * 64);
  EXPECT_EQ(f.SlotCount(), (SmallParams().bucket_count / 64) * 46);
}

TEST(MortonTest, InsertContainsErase) {
  MortonFilter f(SmallParams());
  EXPECT_FALSE(f.Contains(9));
  EXPECT_TRUE(f.Insert(9));
  EXPECT_TRUE(f.Contains(9));
  EXPECT_TRUE(f.CheckInvariants());
  EXPECT_TRUE(f.Erase(9));
  EXPECT_FALSE(f.Contains(9));
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(MortonTest, NoFalseNegativesAtHighLoad) {
  MortonFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 9 / 10, 1401)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()), f.SlotCount() * 0.85);
  ASSERT_TRUE(f.CheckInvariants());
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(MortonTest, InvariantsHoldThroughFillAndDrain) {
  MortonFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 8 / 10, 1402)) {
    if (f.Insert(k)) stored.push_back(k);
    if (stored.size() % 64 == 0) {
      ASSERT_TRUE(f.CheckInvariants());
    }
  }
  for (std::size_t i = 0; i < stored.size(); ++i) {
    ASSERT_TRUE(f.Erase(stored[i])) << i;
    if (i % 64 == 0) {
      ASSERT_TRUE(f.CheckInvariants());
    }
  }
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(MortonTest, OtaSkipsSecondProbeForMostNegatives) {
  // The MF headline: at moderate load, most negative lookups touch only one
  // block because the OTA proves nothing relevant overflowed.
  MortonFilter f(SmallParams());
  for (const auto k : UniformKeys(f.SlotCount() / 2, 1403)) f.Insert(k);
  f.ResetCounters();
  std::size_t negatives = 0;
  for (const auto a : UniformKeys(20000, 1404)) {
    negatives += f.Contains(a) ? 0 : 1;
  }
  EXPECT_GT(negatives, 19000u);  // f = 8 at half load: FPR well under 5%
  EXPECT_GT(f.OtaSkipRate(), 0.5)
      << "OTA failed to suppress second-bucket probes";
}

TEST(MortonTest, DuplicatesAndPartialErase) {
  MortonFilter f(SmallParams());
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));
  EXPECT_EQ(f.ItemCount(), 3u);
  // A single logical bucket caps at 3; the 4th copy spills to the alternate
  // or is rejected — either way bookkeeping stays exact.
  const bool fourth = f.Insert(7);
  EXPECT_EQ(f.ItemCount(), fourth ? 4u : 3u);
  while (f.Erase(7)) {
  }
  EXPECT_FALSE(f.Contains(7));
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
}

TEST(MortonTest, FailedInsertRollsBack) {
  MortonFilter::Params p;
  p.bucket_count = 64;  // a single block: fills quickly
  p.max_kicks = 16;
  MortonFilter f(p);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 1405)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      ASSERT_TRUE(f.CheckInvariants());
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(MortonTest, ChurnKeepsBookkeepingExact) {
  MortonFilter f(SmallParams());
  std::vector<std::uint64_t> live;
  std::size_t next = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t k = UniformKeyAt(1406, next++);
      if (f.Insert(k)) live.push_back(k);
    }
    for (int i = 0; i < 50 && !live.empty(); ++i) {
      ASSERT_TRUE(f.Erase(live.back()));
      live.pop_back();
    }
    ASSERT_EQ(f.ItemCount(), live.size());
    ASSERT_TRUE(f.CheckInvariants());
  }
  for (const auto k : live) ASSERT_TRUE(f.Contains(k));
}

TEST(MortonTest, ClearResets) {
  MortonFilter f(SmallParams());
  for (const auto k : UniformKeys(200, 1407)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  EXPECT_TRUE(f.CheckInvariants());
  for (const auto k : UniformKeys(200, 1407)) EXPECT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
