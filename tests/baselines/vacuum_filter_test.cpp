#include "baselines/vacuum_filter.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

VacuumFilter::Params SmallParams() {
  VacuumFilter::Params p;
  p.bucket_count = 3 << 8;  // 768 buckets — NOT a power of two
  p.chunk_buckets = 1 << 7;
  p.fingerprint_bits = 14;
  return p;
}

TEST(VacuumTest, ConstructionValidation) {
  auto p = SmallParams();
  p.chunk_buckets = 100;  // not pow2
  EXPECT_THROW(VacuumFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.bucket_count = 1000;  // not a multiple of 128
  EXPECT_THROW(VacuumFilter{p}, std::invalid_argument);
  p = SmallParams();
  p.fingerprint_bits = 5;  // chunk 128 needs f >= 7
  EXPECT_THROW(VacuumFilter{p}, std::invalid_argument);
  EXPECT_NO_THROW(VacuumFilter{SmallParams()});
}

TEST(VacuumTest, SupportsNonPowerOfTwoTables) {
  // The VF's raison d'etre (§II-B): CF wastes up to 2x memory on rounding;
  // VF sizes exactly. 768-bucket table = 3072 slots.
  VacuumFilter f(SmallParams());
  EXPECT_EQ(f.SlotCount(), (std::size_t{3} << 8) * 4);
  EXPECT_TRUE(f.Insert(5));
  EXPECT_TRUE(f.Contains(5));
}

TEST(VacuumTest, CandidatesStayInChunkAndInRange) {
  // Indirect check: fill a non-power-of-two table hard; any out-of-range
  // bucket index would crash/corrupt long before this load.
  VacuumFilter f(SmallParams());
  std::vector<std::uint64_t> stored;
  for (const auto k : UniformKeys(f.SlotCount() * 95 / 100, 961)) {
    if (f.Insert(k)) stored.push_back(k);
  }
  EXPECT_GT(static_cast<double>(stored.size()) / (f.SlotCount() * 95 / 100),
            0.99);
  for (const auto k : stored) ASSERT_TRUE(f.Contains(k));
}

TEST(VacuumTest, EraseWorks) {
  VacuumFilter f(SmallParams());
  const auto keys = UniformKeys(1000, 962);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.ItemCount(), 0u);
}

TEST(VacuumTest, FailedInsertRollsBack) {
  auto p = SmallParams();
  p.bucket_count = 1 << 5;  // tiny, power of two is fine too
  p.chunk_buckets = 1 << 5;
  p.max_kicks = 16;
  VacuumFilter f(p);
  std::vector<std::uint64_t> stored;
  std::size_t failures = 0;
  for (const auto k : UniformKeys(f.SlotCount() * 4, 963)) {
    if (f.Insert(k)) {
      stored.push_back(k);
    } else {
      ++failures;
      for (const auto s : stored) ASSERT_TRUE(f.Contains(s));
      if (failures > 3) break;
    }
  }
  EXPECT_GT(failures, 0u);
}

TEST(VacuumTest, LoadFactorComparableToCFAtEqualSlots) {
  // §II-B: VF's space-utilization improvement over CF is slight; just
  // require the same ~98% regime on the chunked layout.
  VacuumFilter f(SmallParams());
  std::size_t stored = 0;
  for (const auto k : UniformKeys(f.SlotCount(), 964)) {
    stored += f.Insert(k) ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(stored) / f.SlotCount(), 0.95);
}

TEST(VacuumTest, StateRoundTrip) {
  VacuumFilter a(SmallParams());
  const auto keys = UniformKeys(1500, 965);
  for (const auto k : keys) ASSERT_TRUE(a.Insert(k));
  std::stringstream blob;
  ASSERT_TRUE(a.SaveState(blob));
  VacuumFilter b(SmallParams());
  ASSERT_TRUE(b.LoadState(blob));
  for (const auto k : keys) ASSERT_TRUE(b.Contains(k));
  // Mismatched chunk size rejected.
  auto p = SmallParams();
  p.chunk_buckets = 1 << 6;
  std::stringstream blob2;
  ASSERT_TRUE(a.SaveState(blob2));
  VacuumFilter c(p);
  EXPECT_FALSE(c.LoadState(blob2));
}

TEST(VacuumTest, ClearResets) {
  VacuumFilter f(SmallParams());
  for (const auto k : UniformKeys(100, 966)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  for (const auto k : UniformKeys(100, 966)) EXPECT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
