#include "baselines/counting_bloom_filter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(CbfTest, ConstructionValidation) {
  EXPECT_THROW(CountingBloomFilter(0, 10.0), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(100, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(CountingBloomFilter(100, 10.0));
}

TEST(CbfTest, InsertContainsErase) {
  CountingBloomFilter f(1000, 12.0);
  EXPECT_FALSE(f.Contains(9));
  EXPECT_TRUE(f.Insert(9));
  EXPECT_TRUE(f.Contains(9));
  EXPECT_TRUE(f.SupportsDeletion());
  EXPECT_TRUE(f.Erase(9));
  EXPECT_FALSE(f.Contains(9));
}

TEST(CbfTest, EraseOfAbsentKeyIsRejected) {
  CountingBloomFilter f(1000, 12.0);
  EXPECT_FALSE(f.Erase(123456));
}

TEST(CbfTest, DeletionDoesNotDisturbOtherItems) {
  CountingBloomFilter f(5000, 12.0);
  const auto keys = UniformKeys(2000, 301);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (std::size_t i = 0; i < keys.size(); i += 2) ASSERT_TRUE(f.Erase(keys[i]));
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_TRUE(f.Contains(keys[i])) << "deletion created a false negative";
  }
}

TEST(CbfTest, DuplicateInsertsNeedMatchingErases) {
  CountingBloomFilter f(1000, 12.0);
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Insert(7));
  ASSERT_TRUE(f.Erase(7));
  EXPECT_TRUE(f.Contains(7));
  ASSERT_TRUE(f.Erase(7));
  EXPECT_FALSE(f.Contains(7));
}

TEST(CbfTest, SaturatedCountersStaySafe) {
  // Insert the same key more times than a 4-bit counter can hold; counters
  // saturate and the key keeps answering true after 15 erases.
  CountingBloomFilter f(100, 12.0);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(f.Insert(77));
  for (int i = 0; i < 15; ++i) f.Erase(77);
  EXPECT_TRUE(f.Contains(77)) << "saturated counters must never be zeroed";
}

TEST(CbfTest, MemoryIsFourTimesEquivalentBloom) {
  // 4-bit counters: a 12 bits/item CBF stores 12k counters = 6k bytes per
  // 1000 items (the Table I "4x" accounting).
  CountingBloomFilter f(1000, 12.0);
  EXPECT_NEAR(static_cast<double>(f.MemoryBytes()), 12.0 * 1000 * 4 / 8, 16.0);
}

TEST(CbfTest, ClearResets) {
  CountingBloomFilter f(1000, 12.0);
  for (const auto k : UniformKeys(100, 311)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  for (const auto k : UniformKeys(100, 311)) EXPECT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace vcf
