#include "sketches/vbloom.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/bloom_filter.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(VBloomTest, ConstructionValidation) {
  EXPECT_THROW(VerticalBloomFilter(0, 10.0), std::invalid_argument);
  EXPECT_THROW(VerticalBloomFilter(100, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(VerticalBloomFilter(1000, 12.0));
}

TEST(VBloomTest, NoFalseNegatives) {
  VerticalBloomFilter f(20000, 12.0);
  const auto keys = UniformKeys(20000, 801);
  for (const auto k : keys) ASSERT_TRUE(f.Insert(k));
  for (const auto k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(VBloomTest, OneHashPerOperation) {
  VerticalBloomFilter f(1000, 12.0);
  f.Insert(5);
  EXPECT_EQ(f.counters().hash_computations, 1u);
  f.Contains(5);
  EXPECT_EQ(f.counters().hash_computations, 2u);
  EXPECT_GE(f.num_hashes(), 2u);
}

TEST(VBloomTest, NoDeletionSupport) {
  VerticalBloomFilter f(1000, 12.0);
  f.Insert(7);
  EXPECT_FALSE(f.SupportsDeletion());
  EXPECT_FALSE(f.Erase(7));
  EXPECT_TRUE(f.Contains(7));
}

TEST(VBloomTest, FprWithinSmallFactorOfIndependentBloom) {
  // The §III-C trade: correlated probe positions from one hash must not
  // blow up the false positive rate. Compare against the classic BF at the
  // SAME bit count and k (the VBF rounds its array to a power of two, so
  // feed the BF the rounded size).
  const std::size_t n = 40000;
  VerticalBloomFilter vbf(n, 12.0);
  const double equal_bits =
      static_cast<double>(vbf.bit_count()) / static_cast<double>(n);
  BloomFilter bf(n, equal_bits, HashKind::kFnv1a, vbf.num_hashes());

  const auto keys = UniformKeys(n, 811);
  for (const auto k : keys) {
    vbf.Insert(k);
    bf.Insert(k);
  }
  const auto aliens = UniformKeys(400000, 812);
  std::size_t vbf_fp = 0;
  std::size_t bf_fp = 0;
  for (const auto a : aliens) {
    vbf_fp += vbf.Contains(a) ? 1 : 0;
    bf_fp += bf.Contains(a) ? 1 : 0;
  }
  const double vbf_rate = static_cast<double>(vbf_fp) / aliens.size();
  const double bf_rate = static_cast<double>(bf_fp) / aliens.size();
  EXPECT_LT(vbf_rate, bf_rate * 3.0 + 1e-4)
      << "vertical hashing destroyed the FPR";
  EXPECT_GT(vbf_rate, 0.0) << "suspiciously perfect";
}

TEST(VBloomTest, ClearResets) {
  VerticalBloomFilter f(1000, 12.0);
  for (const auto k : UniformKeys(100, 821)) f.Insert(k);
  f.Clear();
  EXPECT_EQ(f.ItemCount(), 0u);
  for (const auto k : UniformKeys(100, 821)) EXPECT_FALSE(f.Contains(k));
}

TEST(VBloomTest, BatchDefaultWorks) {
  VerticalBloomFilter f(1000, 12.0);
  const auto keys = UniformKeys(100, 831);
  for (const auto k : keys) f.Insert(k);
  const auto out = std::make_unique<bool[]>(keys.size());
  f.ContainsBatch(keys, out.get());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_TRUE(out[i]);
}

}  // namespace
}  // namespace vcf
