#include "sketches/count_min.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

TEST(CountMinTest, ConstructionValidation) {
  EXPECT_THROW(CountMinSketch(0, 4), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(1024, 0), std::invalid_argument);
  EXPECT_THROW(VerticalCountMin(1024, 0), std::invalid_argument);
  EXPECT_THROW(VerticalCountMin(1024, 1), std::invalid_argument);  // needs >= 2 masks
  EXPECT_NO_THROW(CountMinSketch(1000, 4));  // width rounds up to 1024
  EXPECT_EQ(CountMinSketch(1000, 4).width(), 1024u);
  EXPECT_NO_THROW(VerticalCountMin(1024, 4));
}

template <typename Sketch>
void ExpectOneSidedError() {
  Sketch sketch(1 << 12, 4);
  std::map<std::uint64_t, std::uint64_t> truth;
  Xoshiro256 rng(77);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = UniformKeyAt(700, rng.Below(500));
    const std::uint64_t count = 1 + rng.Below(5);
    sketch.Update(key, count);
    truth[key] += count;
  }
  for (const auto& [key, count] : truth) {
    ASSERT_GE(sketch.Estimate(key), count) << "underestimate (must never happen)";
  }
}

TEST(CountMinTest, StandardNeverUnderestimates) {
  ExpectOneSidedError<CountMinSketch>();
}

TEST(CountMinTest, VerticalNeverUnderestimates) {
  ExpectOneSidedError<VerticalCountMin>();
}

template <typename Sketch>
double MeanOverestimate() {
  // Zipf stream: heavy hitters plus a long tail; measure the mean absolute
  // overestimate across the tracked keys.
  Sketch sketch(1 << 12, 4);
  std::map<std::uint64_t, std::uint64_t> truth;
  ZipfGenerator zipf(20000, 1.0, 31);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = zipf.Next();
    sketch.Update(key, 1);
    ++truth[key];
  }
  double total_error = 0.0;
  for (const auto& [key, count] : truth) {
    total_error += static_cast<double>(sketch.Estimate(key) - count);
  }
  return total_error / static_cast<double>(truth.size());
}

TEST(CountMinTest, VerticalAccuracyComparableToStandard) {
  // §III-C's claim: one hash + masks instead of d hashes, without giving up
  // estimate quality. Allow the vertical variant 2x the standard's mean
  // overestimate (in practice they are near-identical).
  const double standard = MeanOverestimate<CountMinSketch>();
  const double vertical = MeanOverestimate<VerticalCountMin>();
  EXPECT_LT(vertical, standard * 2.0 + 2.0);
  // And the classic Count-Min bound holds loosely for both: expected
  // overestimate <= 2 * N / width per row pair.
  EXPECT_LT(standard, 2.0 * 200000 / (1 << 12) + 2.0);
}

TEST(CountMinTest, HashComputationCounts) {
  CountMinSketch standard(1 << 10, 6);
  VerticalCountMin vertical(1 << 10, 6);
  standard.Update(1, 1);
  vertical.Update(1, 1);
  EXPECT_EQ(standard.counters().hash_computations, 6u);
  EXPECT_EQ(vertical.counters().hash_computations, 1u);
  standard.Estimate(1);
  vertical.Estimate(1);
  EXPECT_EQ(standard.counters().hash_computations, 12u);
  EXPECT_EQ(vertical.counters().hash_computations, 2u);
}

TEST(CountMinTest, EstimateOfUnseenKeyIsUsuallyTiny) {
  VerticalCountMin sketch(1 << 12, 4);
  for (int i = 0; i < 1000; ++i) sketch.Update(UniformKeyAt(701, i), 1);
  std::uint64_t total = 0;
  const int probes = 1000;
  for (int i = 0; i < probes; ++i) {
    total += sketch.Estimate(UniformKeyAt(702, i));
  }
  // Expected collision mass per row ~ N/width = 0.24; min over 4 rows ~ 0.
  EXPECT_LT(static_cast<double>(total) / probes, 0.5);
}

TEST(CountMinTest, MemoryAccounting) {
  CountMinSketch s(1 << 10, 4);
  EXPECT_EQ(s.MemoryBytes(), (1u << 10) * 4 * sizeof(std::uint64_t));
  VerticalCountMin v(1 << 10, 4);
  EXPECT_EQ(v.MemoryBytes(), (1u << 10) * 4 * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace vcf
