#include "table/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {
namespace {

PackedTable MakePopulatedTable() {
  PackedTable t(32, 4, 13);
  Xoshiro256 rng(99);
  for (int i = 0; i < 60; ++i) {
    t.Set(rng.Below(32), static_cast<unsigned>(rng.Below(4)),
          rng.Next() & LowMask(13));
  }
  return t;
}

TEST(TableCodecTest, RoundTripPreservesEverything) {
  const PackedTable original = MakePopulatedTable();
  std::stringstream stream;
  ASSERT_TRUE(TableCodec::Save(original, stream));
  const auto loaded = TableCodec::Load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == original);
  EXPECT_EQ(loaded->OccupiedSlots(), original.OccupiedSlots());
}

TEST(TableCodecTest, EmptyTableRoundTrips) {
  const PackedTable original(8, 4, 7);
  std::stringstream stream;
  ASSERT_TRUE(TableCodec::Save(original, stream));
  const auto loaded = TableCodec::Load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == original);
}

TEST(TableCodecTest, RejectsBadMagic) {
  std::stringstream stream;
  stream << "NOPEjunkjunkjunkjunkjunkjunk";
  EXPECT_FALSE(TableCodec::Load(stream).has_value());
}

TEST(TableCodecTest, RejectsTruncatedPayload) {
  const PackedTable original = MakePopulatedTable();
  std::stringstream stream;
  ASSERT_TRUE(TableCodec::Save(original, stream));
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_FALSE(TableCodec::Load(truncated).has_value());
}

TEST(TableCodecTest, RejectsCorruptedPayload) {
  const PackedTable original = MakePopulatedTable();
  std::stringstream stream;
  ASSERT_TRUE(TableCodec::Save(original, stream));
  std::string bytes = stream.str();
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit => checksum mismatch
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(TableCodec::Load(corrupted).has_value());
}

TEST(TableCodecTest, RejectsAbsurdGeometry) {
  // Header claiming a non-power-of-two bucket count must be rejected before
  // any allocation is attempted.
  std::stringstream stream;
  const PackedTable original(4, 2, 5);
  ASSERT_TRUE(TableCodec::Save(original, stream));
  std::string bytes = stream.str();
  // bucket_count field starts right after magic(4) + version(4).
  bytes[8] = 3;
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(TableCodec::Load(corrupted).has_value());
}

TEST(TableCodecTest, RejectsEmptyStream) {
  std::stringstream stream;
  EXPECT_FALSE(TableCodec::Load(stream).has_value());
}

}  // namespace
}  // namespace vcf
