// Differential test for the word-at-a-time SWAR probe path: every probe
// operation must agree bit-for-bit with the scalar reference loop across
// the full geometry space — slot widths 1..57 x bucket sizes {1,2,4,8},
// including the single-load (<= 57 bucket bits), two-load (58..64) and
// scalar-fallback (> 64) regimes, non-power-of-two bucket counts and the
// last bucket of the table (whose word read leans on the +8 byte slack).
//
// Runs in the regular test suite and therefore in the ASan+UBSan CI matrix,
// which is where a mis-sized unaligned load would trip.
#include "table/packed_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {
namespace {

/// RAII guard so a failing test cannot leak the forced-scalar global into
/// later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { PackedTable::ForceScalarProbes(force); }
  ~ScopedForceScalar() { PackedTable::ForceScalarProbes(false); }
};

/// Drives `ops` random operations through both tables, checking every
/// return value and the final table equality, and cross-checks the SWAR
/// table's fast path against its own scalar reference methods.
void RunDifferential(std::size_t buckets, unsigned spb, unsigned slot_bits,
                     int ops, std::uint64_t seed) {
  SCOPED_TRACE("buckets=" + std::to_string(buckets) +
               " spb=" + std::to_string(spb) +
               " slot_bits=" + std::to_string(slot_bits));
  PackedTable a(buckets, spb, slot_bits);
  ScopedForceScalar guard(true);
  PackedTable b(buckets, spb, slot_bits);
  PackedTable::ForceScalarProbes(false);

  const bool swar_expected = spb >= 2 && spb * slot_bits <= 64;
  EXPECT_EQ(a.UsesSwarProbes(), swar_expected);
  EXPECT_FALSE(b.UsesSwarProbes());

  const std::uint64_t vmask = LowMask(slot_bits);
  Xoshiro256 rng(seed);
  for (int op = 0; op < ops; ++op) {
    // Bias towards the last bucket so the slack-byte reads get exercised.
    const std::size_t bucket =
        rng.Below(8) == 0 ? buckets - 1 : rng.Below(buckets);
    const std::uint64_t value = rng.Below(vmask) + 1;  // in [1, 2^sb - 1]
    const std::uint64_t probe = rng.Next() & vmask;  // may be 0
    const std::uint64_t mask = rng.Next() & vmask;   // may be 0
    switch (rng.Below(6)) {
      case 0: {
        EXPECT_EQ(a.InsertValue(bucket, value), b.InsertValue(bucket, value));
        break;
      }
      case 1: {
        EXPECT_EQ(a.FindEmptySlot(bucket), b.FindEmptySlot(bucket));
        EXPECT_EQ(a.FindEmptySlot(bucket), a.FindEmptySlotScalar(bucket));
        break;
      }
      case 2: {
        EXPECT_EQ(a.ContainsValue(bucket, probe), b.ContainsValue(bucket, probe));
        EXPECT_EQ(a.ContainsValue(bucket, probe),
                  a.ContainsValueScalar(bucket, probe));
        break;
      }
      case 3: {
        EXPECT_EQ(a.ContainsMasked(bucket, probe, mask),
                  b.ContainsMasked(bucket, probe, mask));
        EXPECT_EQ(a.ContainsMasked(bucket, probe, mask),
                  a.ContainsMaskedScalar(bucket, probe, mask));
        break;
      }
      case 4: {
        EXPECT_EQ(a.EraseValue(bucket, probe), b.EraseValue(bucket, probe));
        break;
      }
      default: {
        EXPECT_EQ(a.EraseMasked(bucket, probe, mask),
                  b.EraseMasked(bucket, probe, mask));
        break;
      }
    }
  }
  EXPECT_EQ(a.OccupiedSlots(), b.OccupiedSlots());
  EXPECT_TRUE(a == b);
}

TEST(PackedTableSwarTest, FullGeometrySweepAgainstScalarReference) {
  // Non-power-of-two bucket count: exercises the tail of the bit array and
  // proves the probes make no power-of-two assumptions.
  for (unsigned spb : {1u, 2u, 4u, 8u}) {
    for (unsigned sb = 1; sb <= 57; ++sb) {
      RunDifferential(/*buckets=*/37, spb, sb, /*ops=*/300,
                      /*seed=*/0x5EED0000ULL + spb * 100 + sb);
    }
  }
}

TEST(PackedTableSwarTest, TwoLoadRegimeDeepDive) {
  // bucket_bits in (57, 64]: the word spans 9 bytes for odd bit offsets, so
  // the second load path runs. Hit it harder than the broad sweep does.
  struct Geometry { unsigned spb, sb; };
  for (const auto [spb, sb] : {Geometry{2, 29}, Geometry{2, 31}, Geometry{2, 32},
                               Geometry{4, 15}, Geometry{4, 16}, Geometry{8, 8}}) {
    ASSERT_GT(spb * sb, 57u);
    ASSERT_LE(spb * sb, 64u);
    RunDifferential(/*buckets=*/129, spb, sb, /*ops=*/2000,
                    /*seed=*/0xD00DULL + spb * 1000 + sb);
  }
}

TEST(PackedTableSwarTest, SingleSlotBucketsStayScalar) {
  // spb == 1 has nothing to vectorise; the constructor must not take the
  // SWAR path even though one slot always fits a word.
  PackedTable t(64, 1, 16);
  EXPECT_FALSE(t.UsesSwarProbes());
  EXPECT_TRUE(t.InsertValue(63, 0xBEEF));
  EXPECT_TRUE(t.ContainsValue(63, 0xBEEF));
  EXPECT_FALSE(t.InsertValue(63, 0xF00D));  // bucket full
}

TEST(PackedTableSwarTest, ForcedScalarTablesMatchSwarTables) {
  // End-to-end: identical op streams through a SWAR table and a
  // construction-time-forced scalar table leave identical bits.
  PackedTable a(64, 4, 13);
  ScopedForceScalar guard(true);
  PackedTable b(64, 4, 13);
  PackedTable::ForceScalarProbes(false);
  ASSERT_TRUE(a.UsesSwarProbes());
  ASSERT_FALSE(b.UsesSwarProbes());
  Xoshiro256 rng(77);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t bucket = rng.Below(64);
    const std::uint64_t v = rng.Below(LowMask(13)) + 1;
    switch (rng.Below(3)) {
      case 0:
        ASSERT_EQ(a.InsertValue(bucket, v), b.InsertValue(bucket, v));
        break;
      case 1:
        ASSERT_EQ(a.EraseValue(bucket, v), b.EraseValue(bucket, v));
        break;
      default:
        ASSERT_EQ(a.ContainsValue(bucket, v), b.ContainsValue(bucket, v));
        break;
    }
  }
  EXPECT_TRUE(a == b);
}

TEST(PackedTableSwarTest, MaskedProbesIgnoreEmptySlots) {
  // want == 0 under the mask must not match empty slots: a lane holding 0
  // means "empty", not "stored zero" (filters never store 0).
  PackedTable t(8, 4, 8);
  ASSERT_TRUE(t.UsesSwarProbes());
  // mask 0x0F, value 0x10: value & mask == 0, same as an empty lane's bits.
  EXPECT_FALSE(t.ContainsMasked(3, 0x10, 0x0F));
  EXPECT_EQ(t.EraseMasked(3, 0x10, 0x0F), 0u);
  ASSERT_TRUE(t.InsertValue(3, 0x30));  // 0x30 & 0x0F == 0
  EXPECT_TRUE(t.ContainsMasked(3, 0x10, 0x0F));
  EXPECT_EQ(t.EraseMasked(3, 0x10, 0x0F), 0x30u);
  EXPECT_EQ(t.OccupiedSlots(), 0u);
}

}  // namespace
}  // namespace vcf
