// Differential test for the fast probe paths — the word-at-a-time SWAR path
// and the wide-bucket probe engine (every dispatch arm) — against the scalar
// reference loop, across the full geometry space: slot widths 1..57 x bucket
// sizes {1,2,4,8}, including the single-load (<= 57 bucket bits), two-load
// (58..64), wide (65..256) and scalar-fallback regimes, both bucket layouts
// (packed and cache-aligned), non-power-of-two bucket counts and the last
// bucket of the table (whose reads lean on the trailing slack).
//
// Each run also proves serialization is canonical: the fast-path table and
// the forced-scalar oracle must produce byte-identical TableCodec blobs,
// regardless of probe arm or in-memory layout.
//
// Runs in the regular test suite and therefore in the ASan+UBSan CI matrix,
// which is where a mis-sized unaligned load would trip.
#include "table/packed_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"
#include "table/probe_engine.hpp"
#include "table/serialization.hpp"

namespace vcf {
namespace {

/// RAII guard so a failing test cannot leak the forced-scalar global into
/// later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { PackedTable::ForceScalarProbes(force); }
  ~ScopedForceScalar() { PackedTable::ForceScalarProbes(false); }
};

/// RAII guard pinning the wide-engine dispatch arm for tables constructed
/// in scope; restores the startup arm on exit.
class ScopedProbeArm {
 public:
  explicit ScopedProbeArm(ProbeArm arm) : prev_(ActiveProbeArm()) {
    EXPECT_TRUE(SetWideProbeArm(arm)) << "arm " << ProbeArmName(arm);
  }
  ~ScopedProbeArm() { SetWideProbeArm(prev_); }

 private:
  ProbeArm prev_;
};

std::string CodecBlob(const PackedTable& t) {
  std::ostringstream out;
  EXPECT_TRUE(TableCodec::Save(t, out));
  return std::move(out).str();
}

/// Drives `ops` random operations through both tables, checking every
/// return value and the final table equality, and cross-checks the fast
/// table's probe path (SWAR or wide engine) against its own scalar
/// reference methods plus the fused multi-candidate probes.
void RunDifferential(std::size_t buckets, unsigned spb, unsigned slot_bits,
                     int ops, std::uint64_t seed,
                     TableLayout layout = TableLayout::kPacked) {
  SCOPED_TRACE("buckets=" + std::to_string(buckets) +
               " spb=" + std::to_string(spb) +
               " slot_bits=" + std::to_string(slot_bits) + " layout=" +
               (layout == TableLayout::kPacked ? "packed" : "aligned") +
               " arm=" + ProbeArmName(ActiveProbeArm()));
  PackedTable a(buckets, spb, slot_bits, layout);
  ScopedForceScalar guard(true);
  PackedTable b(buckets, spb, slot_bits);
  PackedTable::ForceScalarProbes(false);

  const unsigned bucket_bits = spb * slot_bits;
  const bool swar_expected = spb >= 2 && bucket_bits <= 64;
  const bool wide_expected =
      spb >= 2 && spb <= kWideMaxSlots && bucket_bits > 64 &&
      bucket_bits <= kWideMaxBits;
  EXPECT_EQ(a.UsesSwarProbes(), swar_expected);
  EXPECT_EQ(a.UsesWideProbes(), wide_expected);
  EXPECT_FALSE(b.UsesSwarProbes());
  EXPECT_FALSE(b.UsesWideProbes());

  const std::uint64_t vmask = LowMask(slot_bits);
  Xoshiro256 rng(seed);
  std::uint64_t cand[4];
  for (int op = 0; op < ops; ++op) {
    // Bias towards the last bucket so the slack-byte reads get exercised.
    const std::size_t bucket =
        rng.Below(8) == 0 ? buckets - 1 : rng.Below(buckets);
    const std::uint64_t value = rng.Below(vmask) + 1;  // in [1, 2^sb - 1]
    const std::uint64_t probe = rng.Next() & vmask;  // may be 0
    const std::uint64_t mask = rng.Next() & vmask;   // may be 0
    switch (rng.Below(8)) {
      case 0: {
        EXPECT_EQ(a.InsertValue(bucket, value), b.InsertValue(bucket, value));
        break;
      }
      case 1: {
        EXPECT_EQ(a.FindEmptySlot(bucket), b.FindEmptySlot(bucket));
        EXPECT_EQ(a.FindEmptySlot(bucket), a.FindEmptySlotScalar(bucket));
        break;
      }
      case 2: {
        EXPECT_EQ(a.ContainsValue(bucket, probe), b.ContainsValue(bucket, probe));
        EXPECT_EQ(a.ContainsValue(bucket, probe),
                  a.ContainsValueScalar(bucket, probe));
        break;
      }
      case 3: {
        EXPECT_EQ(a.ContainsMasked(bucket, probe, mask),
                  b.ContainsMasked(bucket, probe, mask));
        EXPECT_EQ(a.ContainsMasked(bucket, probe, mask),
                  a.ContainsMaskedScalar(bucket, probe, mask));
        break;
      }
      case 4: {
        EXPECT_EQ(a.EraseValue(bucket, probe), b.EraseValue(bucket, probe));
        break;
      }
      case 5: {
        EXPECT_EQ(a.EraseMasked(bucket, probe, mask),
                  b.EraseMasked(bucket, probe, mask));
        break;
      }
      default: {
        // Fused multi-candidate probes (possibly with duplicate buckets,
        // as degenerate VCF candidate sets produce) against the sequential
        // scalar equivalents.
        const std::size_t n = rng.Below(4) + 1;
        bool any_value = false;
        bool any_masked = false;
        for (std::size_t i = 0; i < n; ++i) {
          cand[i] = rng.Below(8) == 0 ? buckets - 1 : rng.Below(buckets);
          any_value = any_value || a.ContainsValueScalar(cand[i], probe);
          any_masked = any_masked || a.ContainsMaskedScalar(cand[i], probe, mask);
        }
        EXPECT_EQ(a.ContainsValueAny(cand, n, probe), any_value);
        EXPECT_EQ(a.ContainsMaskedAny(cand, n, probe, mask), any_masked);
        EXPECT_EQ(b.ContainsValueAny(cand, n, probe), any_value);
        EXPECT_EQ(b.ContainsMaskedAny(cand, n, probe, mask), any_masked);
        break;
      }
    }
  }
  EXPECT_EQ(a.OccupiedSlots(), b.OccupiedSlots());
  EXPECT_TRUE(a == b);
  // Serialization is canonical: identical blobs regardless of the probe
  // path taken and of the in-memory bucket layout.
  EXPECT_EQ(CodecBlob(a), CodecBlob(b));
}

TEST(PackedTableSwarTest, FullGeometrySweepAgainstScalarReference) {
  // Non-power-of-two bucket count: exercises the tail of the bit array and
  // proves the probes make no power-of-two assumptions.
  for (unsigned spb : {1u, 2u, 4u, 8u}) {
    for (unsigned sb = 1; sb <= 57; ++sb) {
      RunDifferential(/*buckets=*/37, spb, sb, /*ops=*/300,
                      /*seed=*/0x5EED0000ULL + spb * 100 + sb);
    }
  }
}

TEST(PackedTableSwarTest, FullGeometrySweepEveryProbeArm) {
  // The wide engine's dispatch arms must be interchangeable: re-run the
  // full geometry sweep under every arm this host can execute, on both
  // layouts. (Sub-64-bit geometries don't consult the arm; they ride along
  // as regression ballast at low cost.)
  for (ProbeArm arm : {ProbeArm::kScalar, ProbeArm::kSwar, ProbeArm::kSse2,
                       ProbeArm::kAvx2, ProbeArm::kNeon}) {
    if (!ProbeArmSupported(arm)) continue;
    ScopedProbeArm pin(arm);
    for (TableLayout layout : {TableLayout::kPacked, TableLayout::kCacheAligned}) {
      for (unsigned spb : {1u, 2u, 4u, 8u}) {
        for (unsigned sb = 1; sb <= 57; ++sb) {
          RunDifferential(/*buckets=*/37, spb, sb, /*ops=*/120,
                          /*seed=*/0xA2100000ULL + spb * 100 + sb, layout);
        }
      }
    }
  }
}

TEST(PackedTableSwarTest, WideGeometryDeepDive) {
  // The widest supported buckets and the boundary cases around them, under
  // the startup arm: 65 bits (just past SWAR), 256 bits (engine limit),
  // straddler-heavy odd widths.
  struct Geometry { unsigned spb, sb; };
  for (const auto [spb, sb] :
       {Geometry{2, 33}, Geometry{2, 57}, Geometry{4, 17}, Geometry{4, 33},
        Geometry{4, 57}, Geometry{8, 9}, Geometry{8, 13}, Geometry{8, 17},
        Geometry{8, 32}}) {
    ASSERT_GT(spb * sb, 64u);
    ASSERT_LE(spb * sb, kWideMaxBits);
    RunDifferential(/*buckets=*/129, spb, sb, /*ops=*/2000,
                    /*seed=*/0x51DEULL + spb * 1000 + sb);
    RunDifferential(/*buckets=*/129, spb, sb, /*ops=*/2000,
                    /*seed=*/0x51DFULL + spb * 1000 + sb,
                    TableLayout::kCacheAligned);
  }
}

TEST(PackedTableSwarTest, TwoLoadRegimeDeepDive) {
  // bucket_bits in (57, 64]: the word spans 9 bytes for odd bit offsets, so
  // the second load path runs. Hit it harder than the broad sweep does.
  struct Geometry { unsigned spb, sb; };
  for (const auto [spb, sb] : {Geometry{2, 29}, Geometry{2, 31}, Geometry{2, 32},
                               Geometry{4, 15}, Geometry{4, 16}, Geometry{8, 8}}) {
    ASSERT_GT(spb * sb, 57u);
    ASSERT_LE(spb * sb, 64u);
    RunDifferential(/*buckets=*/129, spb, sb, /*ops=*/2000,
                    /*seed=*/0xD00DULL + spb * 1000 + sb);
  }
}

TEST(PackedTableSwarTest, SingleSlotBucketsStayScalar) {
  // spb == 1 has nothing to vectorise; the constructor must not take the
  // SWAR path even though one slot always fits a word.
  PackedTable t(64, 1, 16);
  EXPECT_FALSE(t.UsesSwarProbes());
  EXPECT_TRUE(t.InsertValue(63, 0xBEEF));
  EXPECT_TRUE(t.ContainsValue(63, 0xBEEF));
  EXPECT_FALSE(t.InsertValue(63, 0xF00D));  // bucket full
}

TEST(PackedTableSwarTest, ForcedScalarTablesMatchSwarTables) {
  // End-to-end: identical op streams through a SWAR table and a
  // construction-time-forced scalar table leave identical bits.
  PackedTable a(64, 4, 13);
  ScopedForceScalar guard(true);
  PackedTable b(64, 4, 13);
  PackedTable::ForceScalarProbes(false);
  ASSERT_TRUE(a.UsesSwarProbes());
  ASSERT_FALSE(b.UsesSwarProbes());
  Xoshiro256 rng(77);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t bucket = rng.Below(64);
    const std::uint64_t v = rng.Below(LowMask(13)) + 1;
    switch (rng.Below(3)) {
      case 0:
        ASSERT_EQ(a.InsertValue(bucket, v), b.InsertValue(bucket, v));
        break;
      case 1:
        ASSERT_EQ(a.EraseValue(bucket, v), b.EraseValue(bucket, v));
        break;
      default:
        ASSERT_EQ(a.ContainsValue(bucket, v), b.ContainsValue(bucket, v));
        break;
    }
  }
  EXPECT_TRUE(a == b);
}

TEST(PackedTableSwarTest, MaskedProbesIgnoreEmptySlots) {
  // want == 0 under the mask must not match empty slots: a lane holding 0
  // means "empty", not "stored zero" (filters never store 0).
  PackedTable t(8, 4, 8);
  ASSERT_TRUE(t.UsesSwarProbes());
  // mask 0x0F, value 0x10: value & mask == 0, same as an empty lane's bits.
  EXPECT_FALSE(t.ContainsMasked(3, 0x10, 0x0F));
  EXPECT_EQ(t.EraseMasked(3, 0x10, 0x0F), 0u);
  ASSERT_TRUE(t.InsertValue(3, 0x30));  // 0x30 & 0x0F == 0
  EXPECT_TRUE(t.ContainsMasked(3, 0x10, 0x0F));
  EXPECT_EQ(t.EraseMasked(3, 0x10, 0x0F), 0x30u);
  EXPECT_EQ(t.OccupiedSlots(), 0u);
}

TEST(PackedTableSwarTest, WideMaskedProbesIgnoreEmptySlots) {
  // Same empty-slot semantics on the wide path (17-bit slots, 68-bit
  // bucket — the k-VCF default geometry).
  PackedTable t(8, 4, 17);
  ASSERT_TRUE(t.UsesWideProbes());
  // Mask selects the low-16 "fingerprint" field; a slot holding only the
  // mark bit (0x10000) has a zero fp field — the same bits under the mask
  // as an empty lane.
  EXPECT_FALSE(t.ContainsMasked(3, 0x20000, 0xFFFF));  // want == 0, empty
  EXPECT_EQ(t.EraseMasked(3, 0x20000, 0xFFFF), 0u);
  ASSERT_TRUE(t.InsertValue(3, 0x10000));  // mark bit only, fp field == 0
  EXPECT_TRUE(t.ContainsMasked(3, 0x20000, 0xFFFF));
  EXPECT_EQ(t.EraseMasked(3, 0x20000, 0xFFFF), 0x10000u);
  EXPECT_EQ(t.OccupiedSlots(), 0u);
}

TEST(PackedTableSwarTest, ProbeArmReporting) {
  // probe_arm() reflects the path actually taken: the dispatch arm for wide
  // tables (captured at construction), kSwar/kScalar otherwise.
  PackedTable narrow(8, 4, 14);
  EXPECT_EQ(narrow.probe_arm(), ProbeArm::kSwar);
  PackedTable single(8, 1, 14);
  EXPECT_EQ(single.probe_arm(), ProbeArm::kScalar);
  PackedTable wide(8, 4, 17);
  EXPECT_EQ(wide.probe_arm(), ActiveProbeArm());
  const ProbeArm construction_arm = wide.probe_arm();
  {
    ScopedProbeArm pin(ProbeArm::kSwar);
    PackedTable pinned(8, 4, 17);
    EXPECT_EQ(pinned.probe_arm(), ProbeArm::kSwar);
    // The arm is captured per table: `wide` keeps its construction arm.
    EXPECT_EQ(wide.probe_arm(), construction_arm);
  }
  // Unsupported arms are rejected without changing the active arm.
#if !defined(__aarch64__)
  const ProbeArm before = ActiveProbeArm();
  EXPECT_FALSE(SetWideProbeArm(ProbeArm::kNeon));
  EXPECT_EQ(ActiveProbeArm(), before);
#endif
}

TEST(PackedTableSwarTest, AlignedLayoutGeometry) {
  // Stride is the next power of two and buckets never straddle a 64-byte
  // cache line; storage grows accordingly and contents stay equal.
  PackedTable packed(37, 4, 14);
  PackedTable aligned(37, 4, 14, TableLayout::kCacheAligned);
  EXPECT_EQ(packed.stride_bits(), 56u);
  EXPECT_EQ(aligned.stride_bits(), 64u);
  EXPECT_EQ(aligned.layout(), TableLayout::kCacheAligned);
  EXPECT_GT(aligned.StorageBytes(), packed.StorageBytes());
  for (std::uint64_t v = 1; v <= 37; ++v) {
    ASSERT_EQ(packed.InsertValue(v % 37, v), aligned.InsertValue(v % 37, v));
  }
  EXPECT_TRUE(packed == aligned);  // layout-agnostic content equality
  EXPECT_EQ(CodecBlob(packed), CodecBlob(aligned));
}

}  // namespace
}  // namespace vcf
