#include "table/packed_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/bitops.hpp"
#include "common/random.hpp"

namespace vcf {
namespace {

TEST(PackedTableTest, ConstructionValidation) {
  EXPECT_THROW(PackedTable(0, 4, 8), std::invalid_argument);   // no buckets
  EXPECT_THROW(PackedTable(8, 0, 8), std::invalid_argument);   // no slots
  EXPECT_THROW(PackedTable(8, 4, 0), std::invalid_argument);   // no bits
  EXPECT_THROW(PackedTable(8, 4, 58), std::invalid_argument);  // too wide
  EXPECT_NO_THROW(PackedTable(8, 4, 57));
  EXPECT_NO_THROW(PackedTable(3, 4, 8));  // Vacuum filter: non-pow2 tables
  EXPECT_NO_THROW(PackedTable(1, 1, 1));
}

TEST(PackedTableTest, StartsEmpty) {
  PackedTable t(16, 4, 9);
  EXPECT_EQ(t.OccupiedSlots(), 0u);
  EXPECT_EQ(t.LoadFactor(), 0.0);
  for (std::size_t b = 0; b < t.bucket_count(); ++b) {
    for (unsigned s = 0; s < t.slots_per_bucket(); ++s) {
      EXPECT_EQ(t.Get(b, s), 0u);
    }
    EXPECT_EQ(t.FindEmptySlot(b), 0);
  }
}

TEST(PackedTableTest, SetGetTracksOccupancy) {
  PackedTable t(8, 4, 12);
  t.Set(3, 2, 0xABC);
  EXPECT_EQ(t.Get(3, 2), 0xABCu);
  EXPECT_EQ(t.OccupiedSlots(), 1u);
  t.Set(3, 2, 0xDEF);  // overwrite occupied: count unchanged
  EXPECT_EQ(t.OccupiedSlots(), 1u);
  t.Set(3, 2, 0);  // clear
  EXPECT_EQ(t.OccupiedSlots(), 0u);
}

TEST(PackedTableTest, InsertFillsBucketThenFails) {
  PackedTable t(4, 4, 8);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_TRUE(t.InsertValue(1, i + 1));
  }
  EXPECT_EQ(t.FindEmptySlot(1), -1);
  EXPECT_FALSE(t.InsertValue(1, 99));
  EXPECT_EQ(t.OccupiedSlots(), 4u);
}

TEST(PackedTableTest, ContainsAndErase) {
  PackedTable t(4, 4, 8);
  ASSERT_TRUE(t.InsertValue(2, 7));
  ASSERT_TRUE(t.InsertValue(2, 7));  // duplicate fingerprints are legal
  ASSERT_TRUE(t.InsertValue(2, 9));
  EXPECT_TRUE(t.ContainsValue(2, 7));
  EXPECT_TRUE(t.ContainsValue(2, 9));
  EXPECT_FALSE(t.ContainsValue(2, 8));
  EXPECT_FALSE(t.ContainsValue(3, 7));

  EXPECT_TRUE(t.EraseValue(2, 7));  // removes exactly one copy
  EXPECT_TRUE(t.ContainsValue(2, 7));
  EXPECT_TRUE(t.EraseValue(2, 7));
  EXPECT_FALSE(t.ContainsValue(2, 7));
  EXPECT_FALSE(t.EraseValue(2, 7));
  EXPECT_EQ(t.OccupiedSlots(), 1u);
}

TEST(PackedTableTest, MaskedMatchIgnoresHighField) {
  // k-VCF layout: low 8 bits fingerprint, high bits mark.
  PackedTable t(4, 4, 11);
  const std::uint64_t fp_mask = LowMask(8);
  ASSERT_TRUE(t.InsertValue(0, (5ull << 8) | 0x3C));  // mark 5, fp 0x3C
  EXPECT_TRUE(t.ContainsMasked(0, 0x3C, fp_mask));
  EXPECT_TRUE(t.ContainsMasked(0, (7ull << 8) | 0x3C, fp_mask));  // mark ignored
  EXPECT_FALSE(t.ContainsMasked(0, 0x3D, fp_mask));

  const std::uint64_t erased = t.EraseMasked(0, 0x3C, fp_mask);
  EXPECT_EQ(erased, (5ull << 8) | 0x3C);
  EXPECT_EQ(t.EraseMasked(0, 0x3C, fp_mask), 0u);
}

TEST(PackedTableTest, ContainsMaskedNeverMatchesEmptySlots) {
  PackedTable t(4, 4, 11);
  // A zero fingerprint query must not match the empty sentinel.
  EXPECT_FALSE(t.ContainsMasked(0, 0, LowMask(8)));
  ASSERT_TRUE(t.InsertValue(0, (3ull << 8) | 0x01));
  EXPECT_FALSE(t.ContainsMasked(0, 0, LowMask(8)));
}

TEST(PackedTableTest, ClearResets) {
  PackedTable t(8, 2, 6);
  for (std::size_t b = 0; b < 8; ++b) t.InsertValue(b, 1 + b % 63);
  EXPECT_EQ(t.OccupiedSlots(), 8u);
  t.Clear();
  EXPECT_EQ(t.OccupiedSlots(), 0u);
  for (std::size_t b = 0; b < 8; ++b) EXPECT_EQ(t.Get(b, 0), 0u);
}

TEST(PackedTableTest, EqualityComparesContents) {
  PackedTable a(8, 4, 10);
  PackedTable b(8, 4, 10);
  EXPECT_TRUE(a == b);
  a.Set(1, 1, 5);
  EXPECT_FALSE(a == b);
  b.Set(1, 1, 5);
  EXPECT_TRUE(a == b);
}

// Parameterized sweep over geometries: (bucket_count, slots, bits).
class PackedTableGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned, unsigned>> {};

TEST_P(PackedTableGeometry, RandomizedMirrorCheck) {
  const auto [buckets, slots, bits] = GetParam();
  PackedTable t(buckets, slots, bits);
  std::map<std::pair<std::size_t, unsigned>, std::uint64_t> mirror;
  Xoshiro256 rng(buckets * 131 + slots * 17 + bits);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t b = rng.Below(buckets);
    const unsigned s = static_cast<unsigned>(rng.Below(slots));
    const std::uint64_t v = rng.Next() & LowMask(bits);
    t.Set(b, s, v);
    mirror[{b, s}] = v;
  }
  std::size_t occupied = 0;
  for (const auto& [pos, v] : mirror) {
    ASSERT_EQ(t.Get(pos.first, pos.second), v);
    occupied += v != 0;
  }
  EXPECT_EQ(t.OccupiedSlots(), occupied);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PackedTableGeometry,
    ::testing::Values(std::make_tuple(std::size_t{4}, 1u, 1u),
                      std::make_tuple(std::size_t{16}, 4u, 7u),
                      std::make_tuple(std::size_t{16}, 4u, 14u),
                      std::make_tuple(std::size_t{64}, 4u, 18u),
                      std::make_tuple(std::size_t{32}, 3u, 13u),
                      std::make_tuple(std::size_t{8}, 8u, 25u),
                      std::make_tuple(std::size_t{4}, 2u, 57u)));

}  // namespace
}  // namespace vcf
