#include "workload/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace vcf {
namespace {

ChurnTraceConfig SmallConfig() {
  ChurnTraceConfig c;
  c.working_set = 1000;
  c.operations = 10000;
  c.seed = 99;
  return c;
}

TEST(ChurnTest, WarmupIsPureInserts) {
  const auto trace = GenerateChurnTrace(SmallConfig());
  ASSERT_GE(trace.size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(trace[i].kind, ChurnOp::Kind::kInsert);
  }
}

TEST(ChurnTest, TraceIsInternallyConsistent) {
  // Replaying against an exact set: every erase targets a live key, every
  // lookup's expect_present matches reality.
  const auto trace = GenerateChurnTrace(SmallConfig());
  std::unordered_set<std::uint64_t> live;
  for (const auto& op : trace) {
    switch (op.kind) {
      case ChurnOp::Kind::kInsert:
        ASSERT_TRUE(live.insert(op.key).second) << "duplicate insert";
        break;
      case ChurnOp::Kind::kErase:
        ASSERT_EQ(live.erase(op.key), 1u) << "erase of dead key";
        break;
      case ChurnOp::Kind::kLookup:
        ASSERT_EQ(live.count(op.key) == 1, op.expect_present);
        break;
    }
  }
}

TEST(ChurnTest, LiveCountStaysNearWorkingSet) {
  const auto trace = GenerateChurnTrace(SmallConfig());
  std::unordered_set<std::uint64_t> live;
  std::size_t max_live = 0;
  for (const auto& op : trace) {
    if (op.kind == ChurnOp::Kind::kInsert) live.insert(op.key);
    if (op.kind == ChurnOp::Kind::kErase) live.erase(op.key);
    max_live = std::max(max_live, live.size());
  }
  EXPECT_GE(live.size(), 500u);
  EXPECT_LE(max_live, 2500u) << "live set drifted far above the target";
}

TEST(ChurnTest, ContainsErasesAndAlienLookups) {
  const auto trace = GenerateChurnTrace(SmallConfig());
  std::size_t erases = 0;
  std::size_t alien_lookups = 0;
  std::size_t member_lookups = 0;
  for (const auto& op : trace) {
    erases += op.kind == ChurnOp::Kind::kErase;
    if (op.kind == ChurnOp::Kind::kLookup) {
      (op.expect_present ? member_lookups : alien_lookups) += 1;
    }
  }
  EXPECT_GT(erases, 100u);
  EXPECT_GT(alien_lookups, 100u);
  EXPECT_GT(member_lookups, 100u);
}

TEST(ChurnTest, DeterministicPerSeed) {
  const auto a = GenerateChurnTrace(SmallConfig());
  const auto b = GenerateChurnTrace(SmallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key);
    ASSERT_EQ(a[i].kind, b[i].kind);
  }
  ChurnTraceConfig other = SmallConfig();
  other.seed = 100;
  const auto c = GenerateChurnTrace(other);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].key != c[i].key || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnTest, LookupFractionRespected) {
  ChurnTraceConfig c = SmallConfig();
  c.lookup_fraction = 0.8;
  const auto trace = GenerateChurnTrace(c);
  std::size_t lookups = 0;
  for (std::size_t i = c.working_set; i < trace.size(); ++i) {
    lookups += trace[i].kind == ChurnOp::Kind::kLookup;
  }
  const double frac =
      static_cast<double>(lookups) / static_cast<double>(c.operations);
  EXPECT_NEAR(frac, 0.8, 0.05);
}

}  // namespace
}  // namespace vcf
