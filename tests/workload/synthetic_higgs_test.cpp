#include "workload/synthetic_higgs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace vcf {
namespace {

TEST(SyntheticHiggsTest, RecordsHave28Features) {
  SyntheticHiggs gen(1);
  const HiggsRecord rec = gen.NextRecord();
  for (double v : rec.features) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SyntheticHiggsTest, DeterministicPerSeed) {
  SyntheticHiggs a(42);
  SyntheticHiggs b(42);
  SyntheticHiggs c(43);
  const auto ka = a.UniqueKeys(100);
  const auto kb = b.UniqueKeys(100);
  const auto kc = c.UniqueKeys(100);
  EXPECT_EQ(ka, kb);
  EXPECT_NE(ka, kc);
}

TEST(SyntheticHiggsTest, KeysAreUnique) {
  SyntheticHiggs gen(7);
  const auto keys = gen.UniqueKeys(50000);
  std::unordered_set<std::uint64_t> set(keys.begin(), keys.end());
  EXPECT_EQ(set.size(), keys.size());
}

TEST(SyntheticHiggsTest, MergeAffectsKey) {
  // Changing feature 3 or 4 must change the key unless the merge sum is
  // preserved — the preprocessing really does merge them.
  SyntheticHiggs gen(9);
  HiggsRecord rec = gen.NextRecord();
  rec.features[2] = 2.0;
  rec.features[3] = 3.0;
  const std::uint64_t base = SyntheticHiggs::RecordKey(rec);
  HiggsRecord swapped = rec;
  // Swapping features 3 and 4 preserves their (exact) sum: key unchanged.
  swapped.features[2] = 3.0;
  swapped.features[3] = 2.0;
  EXPECT_EQ(SyntheticHiggs::RecordKey(swapped), base);
  // Changing the sum must change the key.
  swapped.features[2] = 4.0;
  EXPECT_NE(SyntheticHiggs::RecordKey(swapped), base);
}

TEST(SyntheticHiggsTest, DisjointKeySetsAreDisjoint) {
  SyntheticHiggs gen(11);
  std::vector<std::uint64_t> members;
  std::vector<std::uint64_t> aliens;
  gen.DisjointKeySets(5000, 5000, &members, &aliens);
  EXPECT_EQ(members.size(), 5000u);
  EXPECT_EQ(aliens.size(), 5000u);
  std::unordered_set<std::uint64_t> member_set(members.begin(), members.end());
  for (const auto a : aliens) {
    ASSERT_EQ(member_set.count(a), 0u);
  }
}

TEST(SyntheticHiggsTest, KeysAreWellMixed) {
  // Keys must spread across bucket-index bits: coarse chi-square on low 6 bits.
  SyntheticHiggs gen(13);
  const auto keys = gen.UniqueKeys(64000);
  std::vector<int> hits(64, 0);
  for (const auto k : keys) ++hits[k & 63];
  const double expect = static_cast<double>(keys.size()) / 64;
  double chi2 = 0.0;
  for (int h : hits) {
    const double d = h - expect;
    chi2 += d * d / expect;
  }
  EXPECT_LT(chi2, 150.0);
}

}  // namespace
}  // namespace vcf
