#include "workload/key_streams.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace vcf {
namespace {

TEST(UniformKeysTest, DistinctWithinStream) {
  const auto keys = UniformKeys(100000, 1);
  std::unordered_set<std::uint64_t> set(keys.begin(), keys.end());
  EXPECT_EQ(set.size(), keys.size());
}

TEST(UniformKeysTest, DisjointAcrossStreams) {
  const auto a = UniformKeys(50000, 1);
  const auto b = UniformKeys(50000, 2);
  std::unordered_set<std::uint64_t> set(a.begin(), a.end());
  for (const auto k : b) ASSERT_EQ(set.count(k), 0u);
}

TEST(UniformKeysTest, IndexedAccessorMatchesVector) {
  const auto keys = UniformKeys(100, 7);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], UniformKeyAt(7, i));
  }
}

TEST(UniformKeysTest, RejectsOversizedRequest) {
  EXPECT_THROW(UniformKeys(std::size_t{1} << 40, 1), std::invalid_argument);
}

TEST(ZipfTest, ValidatesUniverse) {
  EXPECT_THROW(ZipfGenerator(0, 1.0, 1), std::invalid_argument);
}

TEST(ZipfTest, RankZeroDominates) {
  ZipfGenerator gen(10000, 1.0, 5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[gen.Next()];
  // The hottest key must be sampled far more often than a mid-rank key.
  const int hot = counts[gen.KeyForRank(0)];
  const int mid = counts[gen.KeyForRank(100)];
  EXPECT_GT(hot, 50 * std::max(1, mid) / 10);
  EXPECT_GT(hot, 1000);
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  ZipfGenerator gen(1000, 1.0, 9);
  std::map<std::uint64_t, int> counts;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[gen.Next()];
  // Under Zipf(1.0) with U=1000, rank r has probability ~ 1/(r+1)/H_U,
  // H_1000 ~= 7.485. Check ranks 0 and 9 within loose multiplicative bounds.
  const double h = 7.485;
  const double expect0 = draws / (1.0 * h);
  const double expect9 = draws / (10.0 * h);
  EXPECT_NEAR(counts[gen.KeyForRank(0)], expect0, expect0 * 0.15);
  EXPECT_NEAR(counts[gen.KeyForRank(9)], expect9, expect9 * 0.25);
}

TEST(ZipfTest, KeysStayInUniverse) {
  ZipfGenerator gen(64, 1.2, 13);
  std::unordered_set<std::uint64_t> universe;
  for (std::size_t r = 0; r < 64; ++r) universe.insert(gen.KeyForRank(r));
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(universe.count(gen.Next()), 1u);
  }
}

}  // namespace
}  // namespace vcf
