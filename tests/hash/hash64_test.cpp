#include "hash/hash64.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/bitops.hpp"

namespace vcf {
namespace {

TEST(HashHostTest, LittleEndianHost) {
  // The byte loaders assume a little-endian host (documented in hash64.cpp).
  ASSERT_EQ(std::endian::native, std::endian::little);
}

TEST(Fnv1aTest, KnownVectors) {
  // Unseeded FNV-1a 64 test vectors from the reference page.
  EXPECT_EQ(Fnv1a64("", 0, 0), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a", 1, 0), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar", 6, 0), 0x85944171F73967E8ULL);
}

TEST(Djb2Test, MatchesReferenceRecurrence) {
  // djb2 (xor variant): h = h*33 ^ c starting from 5381.
  const std::string s = "hello";
  std::uint64_t expect = 5381;
  for (char c : s) expect = ((expect << 5) + expect) ^ static_cast<std::uint8_t>(c);
  EXPECT_EQ(Djb2_64(s.data(), s.size(), 0), expect);
}

TEST(HashFamilyTest, SeedChangesOutput) {
  const std::uint64_t key = 0xDEADBEEFCAFEULL;
  for (HashKind kind : {HashKind::kFnv1a, HashKind::kMurmur3, HashKind::kDjb2,
                        HashKind::kSplitMix}) {
    EXPECT_NE(Hash64(kind, key, 1), Hash64(kind, key, 2))
        << HashKindName(kind);
  }
}

TEST(HashFamilyTest, DeterministicAcrossCalls) {
  for (HashKind kind : {HashKind::kFnv1a, HashKind::kMurmur3, HashKind::kDjb2,
                        HashKind::kSplitMix}) {
    EXPECT_EQ(Hash64(kind, std::uint64_t{42}, 7), Hash64(kind, std::uint64_t{42}, 7));
  }
}

TEST(HashFamilyTest, IntegerOverloadMatchesByteOverload) {
  const std::uint64_t key = 0x0123456789ABCDEFULL;
  std::uint8_t bytes[8];
  std::memcpy(bytes, &key, 8);
  for (HashKind kind : {HashKind::kFnv1a, HashKind::kMurmur3, HashKind::kDjb2,
                        HashKind::kSplitMix}) {
    EXPECT_EQ(Hash64(kind, key, 3), Hash64(kind, bytes, 8, 3))
        << HashKindName(kind);
  }
}

TEST(Murmur3Test, AllTailLengthsDiffer) {
  // Exercise every switch arm of the tail handler: inputs of length 0..16
  // must hash to pairwise distinct values.
  std::vector<std::uint64_t> hashes;
  std::string data = "0123456789abcdef";
  for (std::size_t len = 0; len <= data.size(); ++len) {
    hashes.push_back(Murmur3_64(data.data(), len, 0));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
    }
  }
}

class HashDistributionTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashDistributionTest, LowBitsRoughlyUniform) {
  // The filters index buckets with the low bits; a catastrophically skewed
  // low-bit distribution would invalidate every load-factor experiment.
  // (DJB2 is known-weak but still passes this coarse bound on counters.)
  const HashKind kind = GetParam();
  constexpr unsigned kBuckets = 64;
  std::vector<int> hits(kBuckets, 0);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[Hash64(kind, static_cast<std::uint64_t>(i), 0x5EED) % kBuckets];
  }
  const double expect = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int h : hits) {
    const double d = h - expect;
    chi2 += d * d / expect;
  }
  // 63 dof; 99.999-th percentile is ~134. Allow generous slack — this guards
  // against broken bucketing, not statistical perfection.
  EXPECT_LT(chi2, 200.0) << HashKindName(kind);
}

TEST_P(HashDistributionTest, FingerprintBitsRoughlyUniform) {
  // Fingerprints come from bits 32+; same coarse uniformity requirement.
  const HashKind kind = GetParam();
  constexpr unsigned kBins = 64;
  std::vector<int> hits(kBins, 0);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    ++hits[(Hash64(kind, static_cast<std::uint64_t>(i), 0x5EED) >> 32) % kBins];
  }
  const double expect = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int h : hits) {
    const double d = h - expect;
    chi2 += d * d / expect;
  }
  EXPECT_LT(chi2, 200.0) << HashKindName(kind);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashDistributionTest,
                         ::testing::Values(HashKind::kFnv1a, HashKind::kMurmur3,
                                           HashKind::kDjb2, HashKind::kSplitMix),
                         [](const auto& info) {
                           return std::string(HashKindName(info.param));
                         });

TEST(HashKindTest, NamesRoundTrip) {
  for (HashKind kind : {HashKind::kFnv1a, HashKind::kMurmur3, HashKind::kDjb2,
                        HashKind::kSplitMix}) {
    EXPECT_EQ(ParseHashKind(HashKindName(kind)), kind);
  }
  EXPECT_EQ(ParseHashKind("murmur"), HashKind::kMurmur3);
  EXPECT_EQ(ParseHashKind("djb"), HashKind::kDjb2);
  EXPECT_EQ(ParseHashKind("bogus"), HashKind::kFnv1a);
}

}  // namespace
}  // namespace vcf
