// Runs the loopback smoke suite under every forced poller backend so a
// regression in one readiness implementation cannot hide behind the `auto`
// selection order. io_uring legs self-skip on kernels without the opcodes
// (mirroring CI's `vcfd --check-backend` gate); epoll and poll always run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "client/vcf_client.hpp"
#include "harness/filter_factory.hpp"
#include "server/poller.hpp"
#include "server/server.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

FilterSpec ShardedVcfSpec() {
  FilterSpec spec;
  ParseFilterKind("sharded:4:vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  return spec;
}

std::unique_ptr<VcfServer> StartServer(const FilterSpec& spec,
                                       VcfServer::Options options) {
  options.filter_internally_locked = spec.shards > 0;
  auto server = std::make_unique<VcfServer>(MakeFilter(spec), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  EXPECT_NE(server->port(), 0);
  return server;
}

class BackendMatrix : public ::testing::TestWithParam<Poller::Backend> {};

TEST_P(BackendMatrix, FullOpSmoke) {
  const Poller::Backend backend = GetParam();
  if (!Poller::BackendAvailable(backend)) {
    GTEST_SKIP() << Poller::BackendName(backend)
                 << " unavailable on this kernel";
  }
  VcfServer::Options options;
  options.backend = backend;
  options.threads = 2;
  auto server = StartServer(ShardedVcfSpec(), options);
  ASSERT_EQ(server->resolved_backend(), backend);

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  EXPECT_TRUE(c.Ping()) << c.last_error();

  const auto keys = UniformKeys(4096, /*stream=*/11);
  bool ok = false;
  EXPECT_EQ(c.InsertBatch(keys, nullptr, &ok), keys.size());
  EXPECT_TRUE(ok) << c.last_error();

  auto results = std::make_unique<bool[]>(keys.size());
  ASSERT_TRUE(c.LookupBatch(keys, results.get())) << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << "key " << i << " lost";
  }
  ASSERT_TRUE(c.PipelineLookups(keys, results.get(), 32)) << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << "pipelined key " << i << " lost";
  }

  EXPECT_TRUE(c.Insert(777, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(c.Lookup(777, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(c.Erase(777, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(c.Lookup(777, &ok));
  EXPECT_TRUE(ok);

  client::VcfClient::ServerStats stats;
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  EXPECT_EQ(stats.items, keys.size());

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendMatrix,
    ::testing::Values(Poller::Backend::kEpoll, Poller::Backend::kPoll,
                      Poller::Backend::kIoUring),
    [](const ::testing::TestParamInfo<Poller::Backend>& info) {
      return std::string(Poller::BackendName(info.param));
    });

TEST(BackendEnv, VcfdBackendForcesAutoSelection) {
  // VCFD_BACKEND only steers `auto`; an explicit Options::backend wins.
  ASSERT_EQ(::setenv("VCFD_BACKEND", "poll", 1), 0);
  {
    VcfServer::Options options;  // backend = kAuto
    auto server = StartServer(ShardedVcfSpec(), options);
    EXPECT_EQ(server->resolved_backend(), Poller::Backend::kPoll);
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  {
    VcfServer::Options options;
    options.backend = Poller::Backend::kEpoll;
    auto server = StartServer(ShardedVcfSpec(), options);
    EXPECT_EQ(server->resolved_backend(), Poller::Backend::kEpoll);
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  ASSERT_EQ(::unsetenv("VCFD_BACKEND"), 0);
}

}  // namespace
}  // namespace vcf::server
