// Full-process durability test against the real vcfd binary (VCFD_PATH):
// fork/exec vcfd on an ephemeral port, insert keys over the wire, deliver
// SIGTERM mid-service, verify a clean exit, restart from the checkpoint and
// assert that no client-ACKed key was lost. This is the deployment story —
// handshake line, signal handling and the atomic checkpoint — exercised
// exactly the way an init system would.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "client/vcf_client.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

struct VcfdProcess {
  pid_t pid = -1;
  std::uint16_t port = 0;
  int stdout_fd = -1;

  ~VcfdProcess() { Kill(); }

  void Kill() {
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      pid = -1;
    }
  }
};

/// Spawns vcfd with the given extra args and blocks until it prints the
/// "vcfd listening on 127.0.0.1:<port>" handshake line on stdout.
bool SpawnVcfd(const std::vector<std::string>& extra_args, VcfdProcess& out) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    return false;
  }
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<std::string> args = {VCFD_PATH, "--port=0", "--threads=2"};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(VCFD_PATH, argv.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);
  out.pid = pid;
  out.stdout_fd = pipefd[0];
  // Read the handshake line byte-wise (it is short and flushed).
  std::string line;
  char ch = 0;
  while (line.size() < 256) {
    const ssize_t n = ::read(pipefd[0], &ch, 1);
    if (n <= 0) return false;
    if (ch == '\n') break;
    line.push_back(ch);
  }
  const char prefix[] = "vcfd listening on 127.0.0.1:";
  const std::size_t at = line.find(prefix);
  if (at == std::string::npos) {
    ADD_FAILURE() << "unexpected handshake line: " << line;
    return false;
  }
  out.port = static_cast<std::uint16_t>(
      std::stoi(line.substr(at + sizeof(prefix) - 1)));
  return out.port != 0;
}

/// SIGTERM + wait, asserting a clean (0) exit.
void TerminateGracefully(VcfdProcess& p) {
  ASSERT_GT(p.pid, 0);
  ASSERT_EQ(::kill(p.pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(p.pid, &status, 0), p.pid);
  p.pid = -1;
  ASSERT_TRUE(WIFEXITED(status)) << "vcfd did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(VcfdRestart, NoAckedKeyLostAcrossSigterm) {
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("vcfd_restart_" + std::to_string(::getpid()) + ".state"))
          .string();
  std::remove(state.c_str());
  const std::vector<std::string> args = {"--filter=sharded:4:vcf",
                                         "--slots_log2=16",
                                         "--state=" + state};

  std::vector<std::uint64_t> acked;
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    ASSERT_TRUE(c.Ping()) << c.last_error();

    std::vector<std::uint64_t> batch;
    for (std::uint64_t i = 0; i < 20000; ++i) {
      batch.push_back(UniformKeyAt(21, i));
    }
    std::vector<char> results(batch.size());
    bool ok = false;
    c.InsertBatch(batch, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i]) acked.push_back(batch[i]);
    }
    ASSERT_GT(acked.size(), 10000u);

    // SIGTERM while the connection is still open: vcfd drains, checkpoints,
    // exits 0.
    TerminateGracefully(daemon);
  }

  ASSERT_TRUE(std::filesystem::exists(state));
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<char> results(acked.size());
    ASSERT_TRUE(c.LookupBatch(acked, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    std::size_t lost = 0;
    for (std::size_t i = 0; i < acked.size(); ++i) {
      if (!results[i]) ++lost;
    }
    EXPECT_EQ(lost, 0u) << lost << " of " << acked.size()
                        << " ACKed keys lost across restart";
    TerminateGracefully(daemon);
  }
  std::remove(state.c_str());
}

TEST(VcfdRestart, AlignedCheckpointRestoresIntoPackedLayout) {
  // The SNAPSHOT/state path is layout-portable: a checkpoint written by an
  // aligned-layout server restores into a packed-layout server (and back),
  // because TableCodec emits canonical packed bytes for either layout.
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("vcfd_aligned_" + std::to_string(::getpid()) + ".state"))
          .string();
  std::remove(state.c_str());

  std::vector<std::uint64_t> acked;
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd({"--filter=aligned:vcf", "--slots_log2=14",
                           "--state=" + state},
                          daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<std::uint64_t> batch;
    for (std::uint64_t i = 0; i < 5000; ++i) {
      batch.push_back(UniformKeyAt(31, i));
    }
    std::vector<char> results(batch.size());
    bool ok = false;
    c.InsertBatch(batch, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i]) acked.push_back(batch[i]);
    }
    ASSERT_GT(acked.size(), 3000u);
    TerminateGracefully(daemon);
  }

  ASSERT_TRUE(std::filesystem::exists(state));
  // Restart with the PACKED layout over the aligned checkpoint.
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(
        {"--filter=vcf", "--slots_log2=14", "--state=" + state}, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<char> results(acked.size());
    ASSERT_TRUE(c.LookupBatch(acked, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    for (std::size_t i = 0; i < acked.size(); ++i) {
      ASSERT_TRUE(results[i]) << "key " << i << " lost in aligned->packed";
    }
    TerminateGracefully(daemon);
  }
  // And back: the packed server rewrote the checkpoint on shutdown; an
  // aligned server picks it up.
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd({"--filter=aligned:vcf", "--slots_log2=14",
                           "--state=" + state},
                          daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<char> results(acked.size());
    ASSERT_TRUE(c.LookupBatch(acked, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    for (std::size_t i = 0; i < acked.size(); ++i) {
      ASSERT_TRUE(results[i]) << "key " << i << " lost in packed->aligned";
    }
    TerminateGracefully(daemon);
  }
  std::remove(state.c_str());
}

TEST(VcfdRestart, TieredCheckpointRoundTripsSegmentsAndFront) {
  // A tiered filter's SNAPSHOT carries a front blob, a tombstone manifest
  // and one framed blob per immutable segment; far more inserts than the
  // front can hold force several watermark freezes, so the restart restores
  // a genuinely multi-segment tier — and must lose nothing.
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("vcfd_tiered_" + std::to_string(::getpid()) + ".state"))
          .string();
  std::remove(state.c_str());
  const std::vector<std::string> args = {"--filter=tiered:vcf",
                                         "--slots_log2=14",
                                         "--state=" + state};

  std::vector<std::uint64_t> acked;
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<std::uint64_t> batch;
    for (std::uint64_t i = 0; i < 20000; ++i) {
      batch.push_back(UniformKeyAt(41, i));
    }
    std::vector<char> results(batch.size());
    bool ok = false;
    c.InsertBatch(batch, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i]) acked.push_back(batch[i]);
    }
    // The tier freezes its way out of front pressure: everything is ACKed
    // even though the front alone holds a fraction of the keys.
    ASSERT_EQ(acked.size(), batch.size());
    TerminateGracefully(daemon);
  }

  ASSERT_TRUE(std::filesystem::exists(state));
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<char> results(acked.size());
    ASSERT_TRUE(c.LookupBatch(acked, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    std::size_t lost = 0;
    for (std::size_t i = 0; i < acked.size(); ++i) {
      if (!results[i]) ++lost;
    }
    EXPECT_EQ(lost, 0u) << lost << " of " << acked.size()
                        << " ACKed keys lost across tiered restart";
    TerminateGracefully(daemon);
  }
  std::remove(state.c_str());
}

TEST(VcfdRestart, SigkillNeverTearsTheCheckpoint) {
  // SIGKILL gives vcfd no chance to clean up: whatever --state holds
  // afterwards must be either the last completed checkpoint or nothing —
  // the tmp+rename discipline means a restart never sees a torn file, and
  // every key ACKed before the last successful SNAPSHOT is still there.
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("vcfd_sigkill_" + std::to_string(::getpid()) + ".state"))
          .string();
  std::remove(state.c_str());
  const std::vector<std::string> args = {"--filter=sharded:4:vcf",
                                         "--slots_log2=16",
                                         "--state=" + state};

  std::vector<std::uint64_t> durable;  // ACKed before the last checkpoint
  for (int round = 0; round < 3; ++round) {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon)) << "round " << round;
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();

    // Everything durable so far must have survived the previous SIGKILL.
    if (!durable.empty()) {
      std::vector<char> results(durable.size());
      ASSERT_TRUE(
          c.LookupBatch(durable, reinterpret_cast<bool*>(results.data())))
          << c.last_error();
      for (std::size_t i = 0; i < durable.size(); ++i) {
        ASSERT_TRUE(results[i])
            << "round " << round << ": durable key " << i << " lost";
      }
    }

    std::vector<std::uint64_t> batch;
    for (std::uint64_t i = 0; i < 3000; ++i) {
      batch.push_back(UniformKeyAt(100 + static_cast<std::uint64_t>(round), i));
    }
    std::vector<char> results(batch.size());
    bool ok = false;
    c.InsertBatch(batch, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    // An explicit checkpoint makes this round's ACKs durable...
    ASSERT_TRUE(c.Snapshot()) << c.last_error();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i]) durable.push_back(batch[i]);
    }
    // ...then more un-checkpointed inserts keep the daemon dirty right up
    // to the kill (these may legitimately be lost — never the state file).
    std::vector<std::uint64_t> dirty;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      dirty.push_back(UniformKeyAt(200 + static_cast<std::uint64_t>(round), i));
    }
    c.InsertBatch(dirty, nullptr, &ok);
    ASSERT_TRUE(ok) << c.last_error();

    daemon.Kill();  // SIGKILL, no grace
  }

  // Final restart: the checkpoint loads cleanly (a torn file would abort
  // startup) and every durable key is present.
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(args, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    std::vector<char> results(durable.size());
    ASSERT_TRUE(
        c.LookupBatch(durable, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    std::size_t lost = 0;
    for (std::size_t i = 0; i < durable.size(); ++i) {
      if (!results[i]) ++lost;
    }
    EXPECT_EQ(lost, 0u) << lost << " of " << durable.size()
                        << " checkpointed keys lost across SIGKILL";
    TerminateGracefully(daemon);
  }
  std::remove(state.c_str());
}

TEST(VcfdRestart, RefusesCorruptStateUnlessOverridden) {
  const std::string state =
      (std::filesystem::temp_directory_path() /
       ("vcfd_corrupt_" + std::to_string(::getpid()) + ".state"))
          .string();
  {
    std::FILE* f = std::fopen(state.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage, not a checkpoint", f);
    std::fclose(f);
  }
  // Without the override vcfd must exit non-zero (no handshake line).
  {
    VcfdProcess daemon;
    EXPECT_FALSE(SpawnVcfd({"--filter=vcf", "--state=" + state}, daemon));
    if (daemon.pid > 0) {
      int status = 0;
      ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
      daemon.pid = -1;
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) != 0);
    }
  }
  // With --ignore_bad_state it cold-starts and serves.
  {
    VcfdProcess daemon;
    ASSERT_TRUE(SpawnVcfd(
        {"--filter=vcf", "--state=" + state, "--ignore_bad_state"}, daemon));
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", daemon.port)) << c.last_error();
    EXPECT_TRUE(c.Ping()) << c.last_error();
    TerminateGracefully(daemon);
  }
  std::remove(state.c_str());
}

}  // namespace
}  // namespace vcf
