// Backend-parameterized contract tests for the Poller readiness abstraction.
// Every backend (epoll, poll, io_uring where the kernel supports it) must
// honor the same level-triggered contract the connection state machine
// depends on: readiness persists until drained, Update changes the interest
// set, Remove silences the fd, and timeouts fire without events.
#include "server/poller.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <fcntl.h>
#include <string>
#include <unistd.h>
#include <vector>

namespace vcf::server {
namespace {

class PipePair {
 public:
  PipePair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    ::fcntl(read_fd_, F_SETFL, O_NONBLOCK);
    ::fcntl(write_fd_, F_SETFL, O_NONBLOCK);
  }
  ~PipePair() {
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0) ::close(write_fd_);
  }
  int read_fd() const { return read_fd_; }
  int write_fd() const { return write_fd_; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

class PollerBackendTest : public ::testing::TestWithParam<Poller::Backend> {
 protected:
  void SetUp() override {
    if (!Poller::BackendAvailable(GetParam())) {
      GTEST_SKIP() << Poller::BackendName(GetParam())
                   << " backend unavailable on this kernel";
    }
  }
};

TEST_P(PollerBackendTest, ResolvesToRequestedBackend) {
  Poller poller(GetParam());
  EXPECT_EQ(poller.backend(), GetParam());
}

TEST_P(PollerBackendTest, TimeoutWithNoEvents) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), /*want_read=*/true,
                         /*want_write=*/false));
  std::vector<Poller::Event> events;
  EXPECT_EQ(poller.Wait(events, 10), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(PollerBackendTest, ReportsReadable) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false));
  ASSERT_EQ(::write(pipe.write_fd(), "x", 1), 1);
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, pipe.read_fd());
  EXPECT_TRUE(events[0].readable);
}

TEST_P(PollerBackendTest, LevelTriggeredUntilDrained) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false));
  ASSERT_EQ(::write(pipe.write_fd(), "ab", 2), 2);
  std::vector<Poller::Event> events;
  // Deliberately drain one byte per wakeup: a level-triggered poller must
  // keep reporting readable until the pipe is empty.
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(poller.Wait(events, 1000), 1) << "wakeup " << i;
    ASSERT_TRUE(events[0].readable);
    char c;
    ASSERT_EQ(::read(pipe.read_fd(), &c, 1), 1);
  }
  EXPECT_EQ(poller.Wait(events, 10), 0);
}

TEST_P(PollerBackendTest, PersistentFdStaysArmedAcrossTicks) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false, /*persistent=*/true));
  std::vector<Poller::Event> events;
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(::write(pipe.write_fd(), "x", 1), 1);
    ASSERT_EQ(poller.Wait(events, 1000), 1) << "round " << round;
    EXPECT_TRUE(events[0].readable);
    char c;
    ASSERT_EQ(::read(pipe.read_fd(), &c, 1), 1);
    EXPECT_EQ(poller.Wait(events, 10), 0);
  }
}

TEST_P(PollerBackendTest, UpdateSwitchesInterestSet) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false));
  ASSERT_EQ(::write(pipe.write_fd(), "x", 1), 1);
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  // Drop read interest: the still-readable fd must go quiet.
  ASSERT_TRUE(poller.Update(pipe.read_fd(), false, false));
  EXPECT_EQ(poller.Wait(events, 10), 0);
  // Restore it: the byte is still there, so readable must fire again
  // (the re-arm must re-check readiness, not wait for an edge).
  ASSERT_TRUE(poller.Update(pipe.read_fd(), true, false));
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  EXPECT_TRUE(events[0].readable);
}

TEST_P(PollerBackendTest, WritableReportedOnEmptyPipe) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.write_fd(), false, true));
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, pipe.write_fd());
  EXPECT_TRUE(events[0].writable);
}

TEST_P(PollerBackendTest, RemoveSilencesFd) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false));
  ASSERT_EQ(::write(pipe.write_fd(), "x", 1), 1);
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  poller.Remove(pipe.read_fd());
  EXPECT_EQ(poller.Wait(events, 10), 0);
}

TEST_P(PollerBackendTest, HangupReportedAsReadableOrError) {
  Poller poller(GetParam());
  PipePair pipe;
  ASSERT_TRUE(poller.Add(pipe.read_fd(), true, false));
  ASSERT_EQ(::write(pipe.write_fd(), "x", 1), 1);
  ::close(pipe.write_fd());
  const int write_fd_leak_guard [[maybe_unused]] = -1;
  std::vector<Poller::Event> events;
  ASSERT_EQ(poller.Wait(events, 1000), 1);
  // POLLIN|POLLHUP: data then EOF. Either flag lets the server drain+close.
  EXPECT_TRUE(events[0].readable || events[0].error);
  char buf[4];
  EXPECT_EQ(::read(pipe.read_fd(), buf, sizeof(buf)), 1);
  ::close(pipe.read_fd());
  // Keep the destructor from double-closing.
  poller.Remove(pipe.read_fd());
}

TEST_P(PollerBackendTest, ManyFdsRoundRobin) {
  Poller poller(GetParam());
  constexpr int kPipes = 32;
  std::vector<PipePair> pipes(kPipes);
  for (const auto& p : pipes) {
    ASSERT_TRUE(poller.Add(p.read_fd(), true, false));
  }
  // Fire every fd, then confirm one wait observes all of them (possibly
  // over several calls — io_uring caps CQ batches, poll reports all).
  for (const auto& p : pipes) {
    ASSERT_EQ(::write(p.write_fd(), "y", 1), 1);
  }
  std::vector<bool> seen(kPipes, false);
  std::vector<Poller::Event> events;
  int spins = 0;
  int remaining = kPipes;
  while (remaining > 0 && spins++ < 100) {
    ASSERT_GE(poller.Wait(events, 1000), 0);
    for (const auto& e : events) {
      for (int i = 0; i < kPipes; ++i) {
        if (pipes[i].read_fd() == e.fd && !seen[i]) {
          seen[i] = true;
          char c;
          ASSERT_EQ(::read(e.fd, &c, 1), 1);
          --remaining;
        }
      }
    }
  }
  EXPECT_EQ(remaining, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, PollerBackendTest,
    ::testing::Values(Poller::Backend::kEpoll, Poller::Backend::kPoll,
                      Poller::Backend::kIoUring),
    [](const ::testing::TestParamInfo<Poller::Backend>& info) {
      return std::string(Poller::BackendName(info.param));
    });

TEST(PollerBackendNames, ParseRoundTrip) {
  Poller::Backend b;
  ASSERT_TRUE(Poller::ParseBackend("epoll", &b));
  EXPECT_EQ(b, Poller::Backend::kEpoll);
  ASSERT_TRUE(Poller::ParseBackend("poll", &b));
  EXPECT_EQ(b, Poller::Backend::kPoll);
  ASSERT_TRUE(Poller::ParseBackend("io_uring", &b));
  EXPECT_EQ(b, Poller::Backend::kIoUring);
  ASSERT_TRUE(Poller::ParseBackend("uring", &b));
  EXPECT_EQ(b, Poller::Backend::kIoUring);
  ASSERT_TRUE(Poller::ParseBackend("auto", &b));
  EXPECT_EQ(b, Poller::Backend::kAuto);
  EXPECT_FALSE(Poller::ParseBackend("kqueue", &b));
  EXPECT_FALSE(Poller::ParseBackend(nullptr, &b));
}

}  // namespace
}  // namespace vcf::server
