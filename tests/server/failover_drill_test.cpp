// Failpoint-driven failover drills for the replicated deployment
// (docs/robustness.md#failover-drills): kill the primary mid-stream and
// fail writes over, cut the replica off mid-snapshot-bootstrap, tear client
// writes at the socket seam, and roll back an insert whose op-log append
// failed — asserting throughout that no ACKed insert is ever lost and that
// primary and replica converge to bit-identical checkpoints. Runs under
// ASan+UBSan (and TSan) in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/vcf_client.hpp"
#include "common/failpoint.hpp"
#include "harness/filter_factory.hpp"
#include "net/proto.hpp"
#include "server/replication.hpp"
#include "server/server.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("vcf_drill_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

FilterSpec VcfSpec() {
  FilterSpec spec;
  ParseFilterKind("vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  return spec;
}

std::unique_ptr<VcfServer> StartServer(VcfServer::Options options) {
  auto server = std::make_unique<VcfServer>(MakeFilter(VcfSpec()), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  EXPECT_NE(server->port(), 0);
  return server;
}

/// Drains every pending lookup against `port` and asserts presence.
void ExpectAllPresent(std::uint16_t port,
                      const std::vector<std::uint64_t>& keys,
                      const char* what) {
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", port)) << c.last_error();
  std::vector<char> results(keys.size());
  ASSERT_TRUE(c.LookupBatch(keys, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << what << ": ACKed key lost, index " << i;
  }
}

/// Checkpoints both nodes and asserts the state files are bit-identical.
/// Call only when the replica has fully caught up and traffic is quiesced.
void ExpectConvergedCheckpoints(VcfServer& primary, VcfServer& replica,
                                const std::string& primary_state,
                                const std::string& replica_state) {
  ASSERT_TRUE(primary.CheckpointNow());
  ASSERT_TRUE(replica.CheckpointNow());
  std::uint64_t dp = 0;
  std::uint64_t dr = 0;
  ASSERT_TRUE(FileDigest(primary_state, &dp));
  ASSERT_TRUE(FileDigest(replica_state, &dr));
  EXPECT_EQ(dp, dr) << "primary and replica checkpoints diverged";
}

TEST(FailoverDrill, PrimaryKilledMidStreamNoAckedInsertLost) {
  const std::string state_p = TempPath("kill_primary.state");
  const std::string state_r = TempPath("kill_replica.state");
  std::remove(state_p.c_str());
  std::remove(state_r.c_str());

  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  popts.state_path = state_p;
  auto primary = StartServer(popts);
  const std::uint16_t primary_port = primary->port();

  VcfServer::Options ropts;
  ropts.read_only = true;
  ropts.state_path = state_r;
  auto replica = StartServer(ropts);

  ReplicaSession::Options sopts;
  sopts.primary_port = primary_port;
  ReplicaSession session(*replica, sopts);
  session.Start();

  // A failover-aware client: writes to endpoint 0, reads from endpoint 1,
  // rotating with retry whenever a node dies or answers read_only.
  client::VcfClient c;
  client::VcfClient::Options copts;
  copts.max_attempts = 8;
  copts.connect_timeout_ms = 500;
  copts.read_timeout_ms = 2000;
  copts.backoff_base_ms = 20;
  copts.backoff_max_ms = 200;
  copts.read_endpoint = 1;
  ASSERT_TRUE(c.ConnectCluster({{"127.0.0.1", primary_port},
                                {"127.0.0.1", replica->port()}},
                               copts))
      << c.last_error();

  std::vector<std::uint64_t> acked;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::uint64_t key = UniformKeyAt(61, i);
    bool ok = false;
    if (c.Insert(key, &ok) && ok) acked.push_back(key);
    ASSERT_TRUE(ok) << c.last_error();
  }
  ASSERT_EQ(acked.size(), 400u);

  // Kill the primary mid-service (graceful: its final checkpoint is the
  // durable copy of every ACK it handed out).
  primary->RequestShutdown();
  ASSERT_TRUE(primary->Join());
  primary.reset();

  // Writes now fail — rotating through the replica only finds read_only —
  // but fail *cleanly*, and nothing is recorded as ACKed.
  {
    bool ok = true;
    const bool accepted = c.Insert(UniformKeyAt(62, 0), &ok);
    EXPECT_FALSE(accepted);
    EXPECT_FALSE(ok);
  }

  // Reads keep working throughout the outage (routed to the replica).
  {
    bool ok = false;
    EXPECT_TRUE(c.Lookup(acked[0], &ok)) << c.last_error();
    EXPECT_TRUE(ok);
  }

  // The primary restarts on the same port from its checkpoint; the replica's
  // session reconnects on its own (the restarted op log can no longer serve
  // the replica's old sequence, so the handshake falls back to a snapshot),
  // and the client's rotation finds the write endpoint again.
  popts.port = primary_port;
  auto primary2 = std::make_unique<VcfServer>(MakeFilter(VcfSpec()), popts);
  std::string error;
  ASSERT_TRUE(primary2->TryRestore(&error)) << error;
  ASSERT_TRUE(primary2->Start(&error)) << error;
  ASSERT_EQ(primary2->port(), primary_port);

  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint64_t key = UniformKeyAt(63, i);
    bool ok = false;
    if (c.Insert(key, &ok) && ok) acked.push_back(key);
    ASSERT_TRUE(ok) << c.last_error();
  }
  ASSERT_EQ(acked.size(), 900u);

  // 500 post-restart entries put oplog_last() above the replica's stale
  // pre-kill sequence (400), so this wait cannot pass vacuously.
  ASSERT_GT(primary2->oplog_last(), 400u);
  ASSERT_TRUE(session.WaitForSeq(primary2->oplog_last(), 15000))
      << "replica stuck at " << session.last_applied();
  EXPECT_GE(session.counters().reconnects.load(), 1u);
  EXPECT_EQ(session.counters().snapshots_installed.load(), 1u);

  // The invariant: every ACKed insert — before the kill and after the
  // restart — answers present on both nodes.
  ExpectAllPresent(primary2->port(), acked, "primary after restart");
  ExpectAllPresent(replica->port(), acked, "replica after failover");
  ExpectConvergedCheckpoints(*primary2, *replica, state_p, state_r);

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary2->RequestShutdown();
  EXPECT_TRUE(primary2->Join());
  std::remove(state_p.c_str());
  std::remove(state_r.c_str());
  std::remove((state_r + ".rseq").c_str());
}

TEST(FailoverDrill, ReplicaCutMidSnapshotBootstrapRetriesAndCompletes) {
  auto& fp =
      FailpointRegistry::Instance().Get(failpoints::kReplSnapshotChunk);
  fp.Disarm();
  fp.ResetCounts();

  // A 128-entry log over 3000 inserts forces a fresh replica through the
  // snapshot path; the armed chunk seam cuts the first bootstrap short.
  VcfServer::Options popts;
  popts.oplog_capacity = 128;
  auto primary = StartServer(popts);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 3000; ++i) keys.push_back(UniformKeyAt(64, i));
  std::vector<std::uint64_t> acked;
  {
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", primary->port())) << c.last_error();
    std::vector<char> results(keys.size());
    bool ok = false;
    c.InsertBatch(keys, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (results[i]) acked.push_back(keys[i]);
    }
  }
  ASSERT_GT(acked.size(), 2000u);

  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);
  fp.ArmAlways();
  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();

  // Let the seam cut at least one bootstrap, then heal the "partition".
  ASSERT_TRUE([&] {
    for (int i = 0; i < 1000; ++i) {
      if (fp.triggers() > 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }()) << "snapshot-chunk failpoint never fired";
  fp.Disarm();

  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 15000))
      << "replica stuck at " << session.last_applied();
  EXPECT_GE(session.counters().reconnects.load(), 1u);
  EXPECT_EQ(session.counters().snapshots_installed.load(), 1u);
  // At least two bootstraps were built: the cut one(s) and the one that won.
  EXPECT_GE(primary->counters().repl_snapshots_streamed.load(), 2u);
  ExpectAllPresent(replica->port(), acked, "replica after cut bootstrap");

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
}

TEST(FailoverDrill, OplogStreamCutMidEntriesResumesWithoutLoss) {
  auto& fp = FailpointRegistry::Instance().Get(failpoints::kReplOplogStream);
  fp.Disarm();
  fp.ResetCounts();

  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  auto primary = StartServer(popts);
  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);
  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", primary->port())) << c.last_error();
  std::vector<std::uint64_t> acked;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t key = UniformKeyAt(65, i);
    bool ok = false;
    if (c.Insert(key, &ok) && ok) acked.push_back(key);
    ASSERT_TRUE(ok) << c.last_error();
  }
  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000));

  // Cut the entry stream mid-flight: the replica reconnects and — with the
  // full log still retained — resumes exactly where it left off.
  fp.ArmAlways();
  for (std::uint64_t i = 200; i < 400; ++i) {
    const std::uint64_t key = UniformKeyAt(65, i);
    bool ok = false;
    if (c.Insert(key, &ok) && ok) acked.push_back(key);
    ASSERT_TRUE(ok) << c.last_error();
  }
  ASSERT_TRUE([&] {
    for (int i = 0; i < 1000; ++i) {
      if (fp.triggers() > 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }()) << "oplog-stream failpoint never fired";
  fp.Disarm();

  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 15000))
      << "replica stuck at " << session.last_applied();
  EXPECT_GE(session.counters().reconnects.load(), 1u);
  // Resume used the retained log, not a snapshot.
  EXPECT_EQ(session.counters().snapshots_installed.load(), 0u);
  // Exactly once despite the cut: one apply per journaled entry.
  EXPECT_EQ(session.counters().entries_applied.load(), primary->oplog_last());
  ExpectAllPresent(replica->port(), acked, "replica after stream cut");

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
}

TEST(FailoverDrill, OplogAppendFailureRollsBackSoNoAckEscapesTheJournal) {
  const std::string state_p = TempPath("append_primary.state");
  const std::string state_r = TempPath("append_replica.state");
  std::remove(state_p.c_str());
  std::remove(state_r.c_str());
  auto& fp = FailpointRegistry::Instance().Get(failpoints::kReplOplogAppend);
  fp.Disarm();
  fp.ResetCounts();

  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  popts.state_path = state_p;
  auto primary = StartServer(popts);
  VcfServer::Options ropts;
  ropts.read_only = true;
  ropts.state_path = state_r;
  auto replica = StartServer(ropts);
  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", primary->port())) << c.last_error();
  bool ok = false;
  ASSERT_TRUE(c.Insert(9001, &ok));
  ASSERT_TRUE(ok);
  ASSERT_EQ(primary->oplog_last(), 1u);

  // The journal append fails after the filter op went in: the server must
  // roll the insert back and answer server_error — the client never saw an
  // ACK, so "ACKed => journaled => replicated" survives the fault.
  fp.ArmAlways();
  EXPECT_FALSE(c.Insert(9002, &ok));
  EXPECT_FALSE(ok);
  EXPECT_EQ(c.last_error(), "server_error");
  fp.Disarm();
  EXPECT_GT(fp.triggers(), 0u);
  EXPECT_EQ(primary->oplog_last(), 1u);  // nothing was journaled
  EXPECT_FALSE(c.Lookup(9002, &ok));     // and the filter op was rolled back
  EXPECT_TRUE(ok);

  ASSERT_TRUE(c.Insert(9003, &ok));
  ASSERT_TRUE(ok);
  ASSERT_EQ(primary->oplog_last(), 2u);
  ASSERT_TRUE(session.WaitForSeq(2, 10000));

  client::VcfClient r;
  ASSERT_TRUE(r.Connect("127.0.0.1", replica->port())) << r.last_error();
  EXPECT_TRUE(r.Lookup(9001, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(r.Lookup(9002, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(r.Lookup(9003, &ok));
  EXPECT_TRUE(ok);
  ExpectConvergedCheckpoints(*primary, *replica, state_p, state_r);

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
  std::remove(state_p.c_str());
  std::remove(state_r.c_str());
  std::remove((state_r + ".rseq").c_str());
}

TEST(FailoverDrill, SocketWriteFailpointTearsFramesCleanly) {
  auto& fp = FailpointRegistry::Instance().Get(failpoints::kNetSocketWrite);
  fp.Disarm();
  fp.ResetCounts();

  auto server = StartServer({});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  bool ok = false;
  ASSERT_TRUE(c.Insert(4001, &ok));
  ASSERT_TRUE(ok);

  // Every WriteAll now tears mid-buffer: the client's next request fails at
  // the transport without an ACK; nothing may crash or wedge the server.
  fp.ArmAlways();
  (void)c.Insert(4002, &ok);
  fp.Disarm();
  EXPECT_GT(fp.triggers(), 0u);

  // A fresh connection serves again, and the pre-tear key is still there.
  client::VcfClient c2;
  ASSERT_TRUE(c2.Connect("127.0.0.1", server->port())) << c2.last_error();
  EXPECT_TRUE(c2.Lookup(4001, &ok));
  EXPECT_TRUE(ok);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

}  // namespace
}  // namespace vcf::server
