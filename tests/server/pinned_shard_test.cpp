// Correctness of --pin-shards (core-affine shard ownership): with shards
// partitioned across workers and owner-thread accesses running without the
// shard lock, every opcode must still behave exactly like the locked
// server — including ops arriving on the "wrong" worker (forwarded), batch
// ops spanning every owner, STATS aggregation, and SNAPSHOT durability.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "client/vcf_client.hpp"
#include "harness/filter_factory.hpp"
#include "server/server.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("vcf_pinned_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

FilterSpec ShardedSpec(int shards) {
  FilterSpec spec;
  ParseFilterKind("sharded:" + std::to_string(shards) + ":vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  return spec;
}

std::unique_ptr<VcfServer> StartPinned(const FilterSpec& spec,
                                       VcfServer::Options options) {
  options.filter_internally_locked = true;
  options.pin_shards = true;
  auto server = std::make_unique<VcfServer>(MakeFilter(spec), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  EXPECT_TRUE(server->pinned());
  return server;
}

TEST(PinnedShard, StartRejectsUnshardedFilter) {
  FilterSpec spec;
  ParseFilterKind("vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(12);
  VcfServer::Options options;
  options.pin_shards = true;
  VcfServer server(MakeFilter(spec), options);
  std::string error;
  EXPECT_FALSE(server.Start(&error));
  EXPECT_FALSE(error.empty());
}

TEST(PinnedShard, StartRejectsReplicationModes) {
  {
    VcfServer::Options options;
    options.pin_shards = true;
    options.filter_internally_locked = true;
    options.oplog_capacity = 1024;
    VcfServer server(MakeFilter(ShardedSpec(4)), options);
    std::string error;
    EXPECT_FALSE(server.Start(&error));
  }
  {
    VcfServer::Options options;
    options.pin_shards = true;
    options.filter_internally_locked = true;
    options.read_only = true;
    VcfServer server(MakeFilter(ShardedSpec(4)), options);
    std::string error;
    EXPECT_FALSE(server.Start(&error));
  }
}

TEST(PinnedShard, WorkerInfoReportsTopology) {
  VcfServer::Options options;
  options.threads = 2;
  auto server = StartPinned(ShardedSpec(8), options);

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  client::VcfClient::WorkerInfo info;
  ASSERT_TRUE(c.GetWorkerInfo(info)) << c.last_error();
  EXPECT_EQ(info.worker_count, 2u);
  EXPECT_LT(info.worker_index, info.worker_count);
  EXPECT_EQ(info.shard_count, 8u);
  EXPECT_TRUE(info.pinned);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(PinnedShard, CrossWorkerOpsAndBatches) {
  VcfServer::Options options;
  options.threads = 3;  // 8 shards over 3 workers: uneven ownership
  auto server = StartPinned(ShardedSpec(8), options);

  // Several connections so ops land on different workers; 3 threads accept
  // round-robin-ish, and keys hash to all 8 shards, so a large fraction of
  // ops must be forwarded to their owner.
  const auto keys = UniformKeys(6000, /*stream=*/41);
  constexpr int kClients = 4;
  std::vector<std::thread> drivers;
  std::vector<std::string> errors(kClients);
  for (int t = 0; t < kClients; ++t) {
    drivers.emplace_back([&, t] {
      client::VcfClient c;
      if (!c.Connect("127.0.0.1", server->port())) {
        errors[t] = c.last_error();
        return;
      }
      const std::size_t slice = keys.size() / kClients;
      const std::span<const std::uint64_t> mine(keys.data() + t * slice,
                                                slice);
      bool ok = false;
      // Half via batch, half via single-key ops: both pinned paths.
      const auto first = mine.subspan(0, slice / 2);
      const auto rest = mine.subspan(slice / 2);
      if (c.InsertBatch(first, nullptr, &ok) != first.size() || !ok) {
        errors[t] = "insert batch: " + c.last_error();
        return;
      }
      for (const std::uint64_t key : rest) {
        if (!c.Insert(key, &ok) || !ok) {
          errors[t] = "insert: " + c.last_error();
          return;
        }
      }
      auto results = std::make_unique<bool[]>(mine.size());
      if (!c.LookupBatch(mine, results.get())) {
        errors[t] = "lookup batch: " + c.last_error();
        return;
      }
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (!results[i]) {
          errors[t] = "lost key " + std::to_string(i);
          return;
        }
      }
    });
  }
  for (auto& d : drivers) d.join();
  for (const std::string& e : errors) EXPECT_TRUE(e.empty()) << e;

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  client::VcfClient::ServerStats stats;
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  EXPECT_EQ(stats.items, keys.size());

  // Erase through the pinned path, confirm from a different connection.
  bool ok = false;
  EXPECT_TRUE(c.Erase(keys[0], &ok));
  EXPECT_TRUE(ok);
  client::VcfClient c2;
  ASSERT_TRUE(c2.Connect("127.0.0.1", server->port()));
  EXPECT_FALSE(c2.Lookup(keys[0], &ok));
  EXPECT_TRUE(ok);

  // With 3 workers and uniformly hashed shards, forwarding must have
  // happened (a connection's worker owns at most ceil(8/3) of 8 shards).
  EXPECT_GT(server->counters().forwarded_tasks.load(), 0u);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(PinnedShard, SnapshotMatchesLockedSaveAndRestores) {
  const std::string state = TempPath("pinned.state");
  const auto keys = UniformKeys(4000, /*stream=*/43);
  {
    VcfServer::Options options;
    options.threads = 2;
    options.state_path = state;
    auto server = StartPinned(ShardedSpec(8), options);
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    bool ok = false;
    ASSERT_EQ(c.InsertBatch(keys, nullptr, &ok), keys.size());
    ASSERT_TRUE(ok);
    ASSERT_TRUE(c.Snapshot()) << c.last_error();
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  {
    // Restore into a plain (unpinned) server: the pinned checkpoint must be
    // byte-compatible with the ordinary ShardedFilter SaveState envelope.
    VcfServer::Options options;
    options.threads = 1;
    options.state_path = state;
    options.filter_internally_locked = true;
    auto server = std::make_unique<VcfServer>(MakeFilter(ShardedSpec(8)),
                                              options);
    std::string error;
    ASSERT_TRUE(server->TryRestore(&error)) << error;
    ASSERT_TRUE(server->Start(&error)) << error;
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    auto results = std::make_unique<bool[]>(keys.size());
    ASSERT_TRUE(c.LookupBatch(keys, results.get())) << c.last_error();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_TRUE(results[i]) << "key " << i << " missing after restore";
    }
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  std::filesystem::remove(state);
  std::filesystem::remove(state + ".tmp");
}

}  // namespace
}  // namespace vcf::server
