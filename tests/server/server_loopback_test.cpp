// End-to-end loopback tests for the serving core: an in-process VcfServer on
// an ephemeral port driven by VcfClient — every opcode, pipelining, hostile
// frames over a raw socket, the socket-read failpoint, the poll(2) backend,
// and the durability invariant (every client-ACKed insert survives a
// checkpoint/restart cycle). Runs under ASan+UBSan in CI.
#include "server/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "client/vcf_client.hpp"
#include "common/failpoint.hpp"
#include "common/random.hpp"
#include "harness/filter_factory.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("vcf_server_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

FilterSpec ShardedVcfSpec() {
  FilterSpec spec;
  ParseFilterKind("sharded:4:vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  return spec;
}

std::unique_ptr<VcfServer> StartServer(const FilterSpec& spec,
                                       VcfServer::Options options) {
  options.filter_internally_locked = spec.shards > 0;
  auto server = std::make_unique<VcfServer>(MakeFilter(spec), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  EXPECT_NE(server->port(), 0);
  return server;
}

TEST(ServerLoopback, PingAndSingleKeyOps) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  EXPECT_TRUE(c.Ping()) << c.last_error();

  bool ok = false;
  EXPECT_TRUE(c.Insert(42, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(c.Lookup(42, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(c.Lookup(0xD0E5E0775E71D5ULL, &ok));  // absent (whp)
  EXPECT_TRUE(ok);
  EXPECT_TRUE(c.Erase(42, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(c.Lookup(42, &ok));
  EXPECT_TRUE(ok);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
  EXPECT_GE(server->counters().requests.load(), 6u);
}

TEST(ServerLoopback, BatchPipelineAndStats) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();

  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 5000; ++i) keys.push_back(UniformKeyAt(1, i));
  std::vector<char> results(keys.size());
  bool ok = false;
  const std::size_t accepted = c.InsertBatch(
      keys, reinterpret_cast<bool*>(results.data()), &ok);
  ASSERT_TRUE(ok) << c.last_error();
  EXPECT_EQ(accepted, keys.size());  // 5k into 64k slots: no rejects

  ASSERT_TRUE(c.LookupBatch(keys, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << i;
  }

  // Pipelined single-key frames against the same data.
  ASSERT_TRUE(c.PipelineLookups(keys, reinterpret_cast<bool*>(results.data()),
                                /*depth=*/64))
      << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << i;
  }

  client::VcfClient::ServerStats stats;
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  EXPECT_EQ(stats.name, "Sharded4(VCF)");
  EXPECT_EQ(stats.items, keys.size());
  EXPECT_GT(stats.slots, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GT(stats.load_factor, 0.0);
  EXPECT_TRUE(stats.supports_deletion);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, BatchLargerThanWireCapSplits) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  // kMaxBatchKeys + change forces the client to split into two frames.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < net::kMaxBatchKeys + 1000; ++i) {
    keys.push_back(UniformKeyAt(2, i));
  }
  bool ok = false;
  const std::size_t accepted = c.InsertBatch(keys, nullptr, &ok);
  ASSERT_TRUE(ok) << c.last_error();
  EXPECT_GT(accepted, 0u);
  std::vector<char> results(keys.size());
  ASSERT_TRUE(c.LookupBatch(keys, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, EraseOnNonDeletableFilterIsUnsupported) {
  FilterSpec spec;
  ParseFilterKind("bf", spec);
  spec.params = CuckooParams::ForSlotsLog2(14);
  auto server = StartServer(spec, {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  bool ok = true;
  EXPECT_TRUE(c.Insert(7, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(c.Erase(7, &ok));
  EXPECT_FALSE(ok);  // kUnsupported is an op-level error
  EXPECT_NE(c.last_error().find("unsupported"), std::string::npos)
      << c.last_error();
  // The connection survives op-level errors: the next op works.
  EXPECT_TRUE(c.Lookup(7, &ok));
  EXPECT_TRUE(ok);
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, SnapshotWithoutStatePathIsUnsupported) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  EXPECT_FALSE(c.Snapshot());
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, ResizeGrowsAnElasticFilterLive) {
  FilterSpec spec;
  ParseFilterKind("elastic:vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(12);  // 4096 slots, 1024 buckets
  auto server = StartServer(spec, {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();

  // Resident set well below the auto-grow watermark: nothing grows on its
  // own, so the RESIZE opcode is what starts the migration.
  std::vector<std::uint64_t> residents;
  for (std::uint64_t i = 0; i < 1500; ++i) residents.push_back(UniformKeyAt(20, i));
  bool ok = false;
  ASSERT_EQ(c.InsertBatch(residents, nullptr, &ok), residents.size());
  ASSERT_TRUE(ok) << c.last_error();

  client::VcfClient::ServerStats stats;
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  const std::uint64_t slots_before = stats.slots;
  EXPECT_EQ(stats.elastic_resizes, 0u);

  ASSERT_TRUE(c.Resize()) << c.last_error();
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  EXPECT_GT(stats.elastic_backlog, 0u);  // migration is in flight

  // Migration is paced by mutations (a few source buckets per op); churn
  // until the backlog drains, with every lookup mid-flight staying exact.
  std::vector<char> results(residents.size());
  for (int round = 0; round < 10 && stats.elastic_backlog > 0; ++round) {
    std::vector<std::uint64_t> churn;
    for (std::uint64_t i = 0; i < 200; ++i) {
      churn.push_back(UniformKeyAt(21 + round, i));
    }
    ASSERT_EQ(c.InsertBatch(churn, nullptr, &ok), churn.size());
    ASSERT_TRUE(ok) << c.last_error();
    ASSERT_TRUE(c.LookupBatch(residents,
                              reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    for (std::size_t i = 0; i < residents.size(); ++i) {
      ASSERT_TRUE(results[i]) << "false negative mid-migration: " << i;
    }
    ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  }
  EXPECT_EQ(stats.elastic_backlog, 0u) << "migration never drained";
  EXPECT_GE(stats.elastic_resizes, 1u);
  EXPECT_EQ(stats.slots, 2 * slots_before);

  ASSERT_TRUE(c.LookupBatch(residents, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  for (std::size_t i = 0; i < residents.size(); ++i) {
    EXPECT_TRUE(results[i]) << "resident lost across the resize: " << i;
  }
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, ResizeOnNonElasticFilterIsUnsupported) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  EXPECT_FALSE(c.Resize());
  EXPECT_NE(c.last_error().find("unsupported"), std::string::npos)
      << c.last_error();
  // Op-level error: the connection keeps serving.
  bool ok = false;
  EXPECT_TRUE(c.Insert(9, &ok));
  EXPECT_TRUE(ok);
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, ShardSplitGrowsTheDirectoryLive) {
  FilterSpec spec;
  ParseFilterKind("sharded:2:vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  auto server = StartServer(spec, {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();

  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 4000; ++i) keys.push_back(UniformKeyAt(30, i));
  bool ok = false;
  ASSERT_EQ(c.InsertBatch(keys, nullptr, &ok), keys.size());
  ASSERT_TRUE(ok) << c.last_error();

  client::VcfClient::WorkerInfo info;
  ASSERT_TRUE(c.GetWorkerInfo(info)) << c.last_error();
  EXPECT_EQ(info.shard_count, 2u);

  ASSERT_TRUE(c.ShardSplit(0)) << c.last_error();
  ASSERT_TRUE(c.GetWorkerInfo(info)) << c.last_error();
  EXPECT_EQ(info.shard_count, 4u);  // split doubled the directory

  // An out-of-range entry is refused without hurting the connection.
  EXPECT_FALSE(c.ShardSplit(999));

  std::vector<char> results(keys.size());
  ASSERT_TRUE(c.LookupBatch(keys, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << "key lost across the split: " << i;
  }
  EXPECT_TRUE(c.Insert(0xFACEFEEDULL, &ok));
  EXPECT_TRUE(ok);
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, ShardSplitUnsupportedWithoutShardsOrWhenPinned) {
  {
    FilterSpec spec;
    ParseFilterKind("vcf", spec);
    spec.params = CuckooParams::ForSlotsLog2(14);
    auto server = StartServer(spec, {});
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    EXPECT_FALSE(c.ShardSplit(0));
    EXPECT_NE(c.last_error().find("unsupported"), std::string::npos)
        << c.last_error();
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  {
    // Pinned mode fixes the shard→owner map at Start(); live topology and
    // capacity changes are both refused.
    VcfServer::Options options;
    options.pin_shards = true;
    options.threads = 2;
    auto server = StartServer(ShardedVcfSpec(), options);
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    EXPECT_FALSE(c.ShardSplit(0));
    EXPECT_NE(c.last_error().find("unsupported"), std::string::npos)
        << c.last_error();
    EXPECT_FALSE(c.Resize());
    EXPECT_NE(c.last_error().find("unsupported"), std::string::npos)
        << c.last_error();
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
}

TEST(ServerLoopback, HostileFramesGetErrorOrDisconnect) {
  auto server = StartServer(ShardedVcfSpec(), {});

  // A healthy control connection that must keep working throughout.
  client::VcfClient healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server->port()))
      << healthy.last_error();

  const auto expect_closed = [&](std::span<const std::uint8_t> wire) {
    std::string error;
    const int fd = net::ConnectTcp("127.0.0.1", server->port(), &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(net::WriteAll(fd, wire));
    // Half-close our side: connections the server keeps open after an error
    // reply will then see EOF and close, so the read loop below terminates.
    ::shutdown(fd, SHUT_WR);
    // The server answers with an error frame and/or closes; keep reading
    // until EOF. Nothing here may crash or hang the server.
    std::uint8_t buf[4096];
    for (int i = 0; i < 1000; ++i) {
      const std::ptrdiff_t n = net::ReadSome(fd, buf);
      if (n <= 0) break;
    }
    net::CloseFd(fd);
  };

  // Oversized length prefix: poisoned stream, must be disconnected.
  {
    std::vector<std::uint8_t> wire;
    net::PutU32(wire, net::kMaxFrameLen + 1);
    expect_closed(wire);
  }
  // Bad version: error reply then close.
  {
    std::vector<std::uint8_t> wire;
    net::EncodeKeyRequest(wire, net::Opcode::kInsert, 1, 99);
    wire[4] = net::kProtoVersion + 1;
    expect_closed(wire);
  }
  // Unknown opcode / reserved bits / truncated body: error reply, the
  // connection may survive, but EOF after our half-close is also fine.
  {
    std::vector<std::uint8_t> wire;
    net::EncodeKeyRequest(wire, net::Opcode::kInsert, 2, 99);
    wire[5] = 0xEE;
    expect_closed(wire);
  }
  {
    std::vector<std::uint8_t> wire;
    net::EncodeKeyRequest(wire, net::Opcode::kInsert, 3, 99);
    wire[6] = 0xFF;
    expect_closed(wire);
  }
  // Random garbage frames with valid lengths.
  {
    Xoshiro256 rng(0xBADF00DULL);
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<std::uint8_t> payload(rng.Below(64));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
      std::vector<std::uint8_t> wire;
      net::PutU32(wire, static_cast<std::uint32_t>(payload.size()));
      wire.insert(wire.end(), payload.begin(), payload.end());
      expect_closed(wire);
    }
  }

  // The server took the abuse and still serves the healthy connection.
  bool ok = false;
  EXPECT_TRUE(healthy.Insert(123, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(healthy.Lookup(123, &ok));
  EXPECT_TRUE(ok);
  EXPECT_GT(server->counters().protocol_errors.load(), 0u);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, SocketReadFailpointDropsConnectionNotServer) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  bool ok = false;
  ASSERT_TRUE(c.Insert(1, &ok));

  // Fire the socket-read seam on every read: the server's next read of this
  // connection fails as EIO and the connection is dropped; the client's own
  // reads fail too. Either way every call must fail cleanly, not crash.
  auto& fp = FailpointRegistry::Instance().Get(failpoints::kNetSocketRead);
  fp.ArmAlways();
  (void)c.Lookup(1, &ok);
  fp.Disarm();
  EXPECT_GT(fp.triggers(), 0u);

  // A fresh connection works again.
  client::VcfClient c2;
  ASSERT_TRUE(c2.Connect("127.0.0.1", server->port())) << c2.last_error();
  EXPECT_TRUE(c2.Lookup(1, &ok));
  EXPECT_TRUE(ok);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, PollBackendServes) {
  VcfServer::Options options;
  options.backend = Poller::Backend::kPoll;
  options.threads = 3;
  auto server = StartServer(ShardedVcfSpec(), options);
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  EXPECT_TRUE(c.Ping()) << c.last_error();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 2000; ++i) keys.push_back(UniformKeyAt(3, i));
  bool ok = false;
  EXPECT_EQ(c.InsertBatch(keys, nullptr, &ok), keys.size());
  EXPECT_TRUE(ok);
  std::vector<char> results(keys.size());
  EXPECT_TRUE(c.PipelineLookups(keys, reinterpret_cast<bool*>(results.data())));
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_TRUE(results[i]) << i;
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(ServerLoopback, AckedInsertsSurviveShutdownAndRestart) {
  const std::string state = TempPath("durability.state");
  std::remove(state.c_str());
  const FilterSpec spec = ShardedVcfSpec();

  std::vector<std::uint64_t> acked;
  {
    VcfServer::Options options;
    options.state_path = state;
    auto server = StartServer(spec, options);
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    // Mixed single-key and batch inserts; remember exactly what was ACKed.
    for (std::uint64_t i = 0; i < 500; ++i) {
      const std::uint64_t key = UniformKeyAt(10, i);
      bool ok = false;
      if (c.Insert(key, &ok) && ok) acked.push_back(key);
      ASSERT_TRUE(ok) << c.last_error();
    }
    std::vector<std::uint64_t> batch;
    for (std::uint64_t i = 0; i < 4000; ++i) batch.push_back(UniformKeyAt(11, i));
    std::vector<char> results(batch.size());
    bool ok = false;
    c.InsertBatch(batch, reinterpret_cast<bool*>(results.data()), &ok);
    ASSERT_TRUE(ok) << c.last_error();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i]) acked.push_back(batch[i]);
    }
    // Live checkpoint opcode works too.
    EXPECT_TRUE(c.Snapshot()) << c.last_error();
    // Graceful shutdown writes the final checkpoint.
    server->RequestShutdown();
    ASSERT_TRUE(server->Join());
    EXPECT_GE(server->counters().checkpoints.load(), 2u);
  }
  ASSERT_FALSE(acked.empty());

  {
    VcfServer::Options options;
    options.state_path = state;
    options.filter_internally_locked = spec.shards > 0;
    auto server = std::make_unique<VcfServer>(MakeFilter(spec), options);
    std::string error;
    ASSERT_TRUE(server->TryRestore(&error)) << error;
    ASSERT_TRUE(server->Start(&error)) << error;
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
    // The invariant: every ACKed key answers maybe-present after restart.
    std::vector<char> results(acked.size());
    ASSERT_TRUE(c.LookupBatch(acked, reinterpret_cast<bool*>(results.data())))
        << c.last_error();
    for (std::size_t i = 0; i < acked.size(); ++i) {
      EXPECT_TRUE(results[i]) << "ACKed key lost: index " << i;
    }
    client::VcfClient::ServerStats stats;
    ASSERT_TRUE(c.GetStats(stats));
    EXPECT_GE(stats.items, acked.size());
    server->RequestShutdown();
    EXPECT_TRUE(server->Join());
  }
  std::remove(state.c_str());
}

TEST(ServerLoopback, RestoreRejectsCorruptState) {
  const std::string state = TempPath("corrupt.state");
  {
    std::FILE* f = std::fopen(state.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a checkpoint";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  const FilterSpec spec = ShardedVcfSpec();
  VcfServer::Options options;
  options.state_path = state;
  options.filter_internally_locked = true;
  VcfServer server(MakeFilter(spec), options);
  std::string error;
  EXPECT_FALSE(server.TryRestore(&error));
  EXPECT_FALSE(error.empty());
  std::remove(state.c_str());
}

TEST(ServerLoopback, NewRequestsRejectedWhileShuttingDown) {
  auto server = StartServer(ShardedVcfSpec(), {});
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server->port())) << c.last_error();
  bool ok = false;
  ASSERT_TRUE(c.Insert(5, &ok));
  server->RequestShutdown();
  // In-flight connections drain; a post-shutdown op either fails at the
  // transport (connection closed) or gets kShuttingDown — never a crash.
  (void)c.Lookup(5, &ok);
  EXPECT_TRUE(server->Join());
}

}  // namespace
}  // namespace vcf::server
