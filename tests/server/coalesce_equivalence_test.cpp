// Cross-frame batch coalescing must be invisible on the wire: a server with
// the coalescer enabled and one with it disabled, fed the same byte stream
// against identical fresh filters, must produce byte-identical response
// streams (same statuses, same bitmaps, same accepted counts, same frame
// order). That is exactly the InsertBatch/ContainsBatch contract — results
// as if each frame ran alone, in order — checked end-to-end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "client/vcf_client.hpp"
#include "harness/filter_factory.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

FilterSpec ShardedVcfSpec() {
  FilterSpec spec;
  ParseFilterKind("sharded:4:vcf", spec);
  // Tiny on purpose: the 3000-key stream overfills 2048 slots, so later
  // insert frames see rejections and the per-frame accepted counts depend
  // on the coalescer slicing the merged run correctly. Eviction is
  // deterministic (rng seeded from params.seed), so both servers agree.
  spec.params = CuckooParams::ForSlotsLog2(11);
  return spec;
}

std::unique_ptr<VcfServer> StartServer(const FilterSpec& spec,
                                       VcfServer::Options options) {
  options.filter_internally_locked = spec.shards > 0;
  auto server = std::make_unique<VcfServer>(MakeFilter(spec), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  return server;
}

/// Writes the whole request stream in one shot (so every adjacent frame is
/// coalescable) and reads until `expect_frames` complete response frames
/// arrived. Returns the raw response bytes.
std::vector<std::uint8_t> DriveRaw(std::uint16_t port,
                                   std::span<const std::uint8_t> requests,
                                   std::size_t expect_frames) {
  std::string error;
  const int fd = net::ConnectTcp("127.0.0.1", port, &error);
  EXPECT_GE(fd, 0) << error;
  EXPECT_TRUE(net::WriteAll(fd, requests, nullptr));
  std::vector<std::uint8_t> got;
  std::size_t frames = 0;
  std::uint8_t buf[4096];
  while (frames < expect_frames) {
    const std::ptrdiff_t n = net::ReadSome(fd, buf);
    if (n <= 0) break;  // peer closed / error: the frame count check fails
    got.insert(got.end(), buf, buf + n);
    frames = 0;
    std::size_t off = 0;
    while (off + 4 <= got.size()) {
      const std::uint32_t len =
          static_cast<std::uint32_t>(got[off]) |
          (static_cast<std::uint32_t>(got[off + 1]) << 8) |
          (static_cast<std::uint32_t>(got[off + 2]) << 16) |
          (static_cast<std::uint32_t>(got[off + 3]) << 24);
      if (off + 4 + len > got.size()) break;
      off += 4 + len;
      ++frames;
    }
  }
  net::CloseFd(fd);
  EXPECT_EQ(frames, expect_frames);
  return got;
}

/// A request stream exercising every coalescer edge: long same-kind runs
/// (merged), kind switches (run flushed), non-coalescable opcodes splitting
/// runs, and enough inserts into a small filter that some are rejected —
/// per-frame accepted counts then depend on correct run slicing.
std::vector<std::uint8_t> BuildStream(std::size_t* expect_frames) {
  std::vector<std::uint8_t> out;
  std::uint32_t id = 1;
  std::size_t frames = 0;
  const auto inserted = UniformKeys(3000, /*stream=*/21);
  const auto probes = UniformKeys(512, /*stream=*/22);

  // Run of 8 adjacent INSERT_BATCH frames (one coalesced run server-side).
  for (std::size_t f = 0; f < 8; ++f) {
    net::EncodeBatchRequest(
        out, net::Opcode::kInsertBatch, id++,
        std::span(inserted).subspan(f * 300, 300));
    ++frames;
  }
  // Adjacent single INSERTs extend the same kind of run.
  for (std::size_t i = 0; i < 16; ++i) {
    net::EncodeKeyRequest(out, net::Opcode::kInsert, id++,
                          inserted[2400 + i]);
    ++frames;
  }
  // Kind switch: lookups of a mix of present and absent keys.
  for (std::size_t f = 0; f < 4; ++f) {
    net::EncodeBatchRequest(out, net::Opcode::kLookupBatch, id++,
                            std::span(probes).subspan(f * 128, 128));
    ++frames;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    net::EncodeKeyRequest(out, net::Opcode::kLookup, id++, inserted[i]);
    ++frames;
  }
  // PING is not coalescable: it must split the surrounding lookup runs.
  net::EncodeKeyRequest(out, net::Opcode::kLookup, id++, inserted[0]);
  ++frames;
  net::EncodePingRequest(out, id++);
  ++frames;
  net::EncodeKeyRequest(out, net::Opcode::kLookup, id++, inserted[1]);
  ++frames;
  // ERASE is a mutation the coalescer must not fold into an insert run.
  net::EncodeKeyRequest(out, net::Opcode::kInsert, id++, inserted[2500]);
  ++frames;
  net::EncodeKeyRequest(out, net::Opcode::kDelete, id++, inserted[2500]);
  ++frames;
  net::EncodeKeyRequest(out, net::Opcode::kInsert, id++, inserted[2501]);
  ++frames;
  // Tail: alternate insert/lookup so every flush path runs.
  for (std::size_t i = 0; i < 8; ++i) {
    net::EncodeKeyRequest(out, net::Opcode::kInsert, id++,
                          inserted[2600 + i]);
    ++frames;
    net::EncodeKeyRequest(out, net::Opcode::kLookup, id++,
                          inserted[2600 + i]);
    ++frames;
  }
  net::EncodeEmptyRequest(out, net::Opcode::kStats, id++);
  ++frames;
  *expect_frames = frames;
  return out;
}

TEST(CoalesceEquivalence, ByteIdenticalResponses) {
  std::size_t expect_frames = 0;
  const auto stream = BuildStream(&expect_frames);

  VcfServer::Options on;
  on.threads = 1;  // one worker: every frame lands in the same tick's run
  on.coalesce = true;
  auto coalescing = StartServer(ShardedVcfSpec(), on);

  VcfServer::Options off;
  off.threads = 1;
  off.coalesce = false;
  auto plain = StartServer(ShardedVcfSpec(), off);

  const auto got_on = DriveRaw(coalescing->port(), stream, expect_frames);
  const auto got_off = DriveRaw(plain->port(), stream, expect_frames);
  EXPECT_EQ(got_on, got_off);

  // The equivalence only means something if the coalescer actually ran.
  EXPECT_GT(coalescing->counters().coalesced_frames.load(), 0u);
  EXPECT_GT(coalescing->counters().coalesced_runs.load(), 0u);
  EXPECT_EQ(plain->counters().coalesced_frames.load(), 0u);

  coalescing->RequestShutdown();
  plain->RequestShutdown();
  EXPECT_TRUE(coalescing->Join());
  EXPECT_TRUE(plain->Join());
}

TEST(CoalesceEquivalence, EnvVarDisables) {
  ASSERT_EQ(::setenv("VCFD_COALESCE", "0", 1), 0);
  VcfServer::Options options;  // coalesce defaults to true
  options.threads = 1;
  auto server = StartServer(ShardedVcfSpec(), options);
  ASSERT_EQ(::unsetenv("VCFD_COALESCE"), 0);

  std::size_t expect_frames = 0;
  const auto stream = BuildStream(&expect_frames);
  const auto got = DriveRaw(server->port(), stream, expect_frames);
  EXPECT_FALSE(got.empty());
  EXPECT_EQ(server->counters().coalesced_frames.load(), 0u);
  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

TEST(CoalesceEquivalence, PipelinedClientStillCorrect) {
  // The client's windowed batch path (batch_frame_keys splits + pipelining)
  // against the coalescing server: accepted counts and bitmaps must match a
  // plain serial client's view of the same filter.
  VcfServer::Options options;
  options.threads = 2;
  auto server = StartServer(ShardedVcfSpec(), options);

  client::VcfClient::Options copts;
  copts.max_attempts = 1;
  copts.batch_frame_keys = 100;  // 4000 keys -> 40 frames, windows of 8
  copts.batch_pipeline = 8;
  client::VcfClient c;
  ASSERT_TRUE(
      c.ConnectCluster({{"127.0.0.1", server->port()}}, copts))
      << c.last_error();

  const auto keys = UniformKeys(4000, /*stream=*/31);
  auto ins = std::make_unique<bool[]>(keys.size());
  auto found = std::make_unique<bool[]>(keys.size());
  bool ok = false;
  const std::size_t accepted = c.InsertBatch(keys, ins.get(), &ok);
  ASSERT_TRUE(ok) << c.last_error();
  std::size_t accepted_bits = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    accepted_bits += ins[i] ? 1 : 0;
  }
  EXPECT_EQ(accepted, accepted_bits);

  ASSERT_TRUE(c.LookupBatch(keys, found.get())) << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // No false negatives: every accepted key must be found (rejected ones
    // may still hit as false positives, which is fine).
    if (ins[i]) {
      EXPECT_TRUE(found[i]) << "accepted key " << i << " lost";
    }
  }

  client::VcfClient::ServerStats stats;
  ASSERT_TRUE(c.GetStats(stats)) << c.last_error();
  EXPECT_EQ(stats.items, accepted);

  server->RequestShutdown();
  EXPECT_TRUE(server->Join());
}

}  // namespace
}  // namespace vcf::server
