// Replication tests: OplogBuffer bounds and streaming semantics, the
// ReplMeta durable-resume sidecar, and end-to-end primary/replica sync over
// loopback — op-log streaming, snapshot bootstrap when the replica is behind
// the bounded log, sequence-gap detection against a hostile primary, and a
// replica restart that resumes from its digest-verified sidecar. Runs under
// ASan+UBSan (and TSan) in CI.
#include "server/replication.hpp"

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/vcf_client.hpp"
#include "harness/filter_factory.hpp"
#include "net/proto.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"
#include "workload/key_streams.hpp"

namespace vcf::server {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("vcf_repl_test_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

FilterSpec VcfSpec() {
  FilterSpec spec;
  ParseFilterKind("vcf", spec);
  spec.params = CuckooParams::ForSlotsLog2(16);
  return spec;
}

std::unique_ptr<VcfServer> StartServer(VcfServer::Options options) {
  auto server = std::make_unique<VcfServer>(MakeFilter(VcfSpec()), options);
  std::string error;
  EXPECT_TRUE(server->Start(&error)) << error;
  EXPECT_NE(server->port(), 0);
  return server;
}

/// Inserts `count` keys from stream `seed` through a client connection and
/// returns the ACKed ones.
std::vector<std::uint64_t> InsertKeys(std::uint16_t port, std::uint64_t seed,
                                      std::size_t count) {
  client::VcfClient c;
  EXPECT_TRUE(c.Connect("127.0.0.1", port)) << c.last_error();
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < count; ++i) keys.push_back(UniformKeyAt(seed, i));
  std::vector<char> results(keys.size());
  bool ok = false;
  c.InsertBatch(keys, reinterpret_cast<bool*>(results.data()), &ok);
  EXPECT_TRUE(ok) << c.last_error();
  std::vector<std::uint64_t> acked;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (results[i]) acked.push_back(keys[i]);
  }
  return acked;
}

void ExpectAllPresent(std::uint16_t port,
                      const std::vector<std::uint64_t>& keys) {
  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", port)) << c.last_error();
  std::vector<char> results(keys.size());
  ASSERT_TRUE(c.LookupBatch(keys, reinterpret_cast<bool*>(results.data())))
      << c.last_error();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_TRUE(results[i]) << "key index " << i << " missing";
  }
}

// --- OplogBuffer -----------------------------------------------------------

TEST(OplogBuffer, AssignsMonotonicSeqsAndEvictsOldest) {
  OplogBuffer log(4);
  EXPECT_EQ(log.last(), 0u);
  EXPECT_EQ(log.first_retained(), 1u);  // empty: last() + 1
  for (std::uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(log.Append(kOplogInsert, 100 + i), i);
  }
  EXPECT_EQ(log.last(), 10u);
  EXPECT_EQ(log.first_retained(), 7u);  // capacity 4 retains [7, 10]

  EXPECT_FALSE(log.CanServeFrom(1));
  EXPECT_FALSE(log.CanServeFrom(6));
  EXPECT_TRUE(log.CanServeFrom(7));
  EXPECT_TRUE(log.CanServeFrom(10));
  EXPECT_TRUE(log.CanServeFrom(11));   // fully caught up is servable
  EXPECT_FALSE(log.CanServeFrom(12));  // from the future is not
}

TEST(OplogBuffer, CopyFromStreamsAndFailsOffTail) {
  OplogBuffer log(8);
  for (std::uint64_t i = 1; i <= 8; ++i) log.Append(kOplogErase, i);
  std::vector<OplogEntry> out;
  ASSERT_TRUE(log.CopyFrom(5, 2, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 5u);
  EXPECT_EQ(out[0].op, kOplogErase);
  EXPECT_EQ(out[0].key, 5u);
  EXPECT_EQ(out[1].seq, 6u);
  // Caught up: true with nothing appended.
  out.clear();
  ASSERT_TRUE(log.CopyFrom(9, 16, out));
  EXPECT_TRUE(out.empty());
  // Evict seqs 1..4, then ask for them: the caller must resync.
  for (std::uint64_t i = 9; i <= 12; ++i) log.Append(kOplogInsert, i);
  EXPECT_FALSE(log.CopyFrom(3, 16, out));
}

// --- ReplMeta sidecar ------------------------------------------------------

TEST(ReplMeta, RoundTripsAndRejectsGarbage) {
  const std::string path = TempPath("meta.rseq");
  const ReplMeta meta{0x123456789ABCDEFULL, 0xBADC0FFEE0DDF00DULL,
                      0xFEEDFACECAFEBEEFULL};
  ASSERT_TRUE(WriteReplMeta(path, meta));
  ReplMeta back;
  ASSERT_TRUE(ReadReplMeta(path, &back));
  EXPECT_EQ(back.applied_seq, meta.applied_seq);
  EXPECT_EQ(back.primary_epoch, meta.primary_epoch);
  EXPECT_EQ(back.state_digest, meta.state_digest);

  ReplMeta ignored;
  EXPECT_FALSE(ReadReplMeta(path + ".missing", &ignored));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a sidecar", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadReplMeta(path, &ignored));
  std::remove(path.c_str());
}

TEST(ReplMeta, FileDigestTracksContent) {
  const std::string path = TempPath("digest.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    for (int i = 0; i < 100000; ++i) std::fputc(i & 0xFF, f);
    std::fclose(f);
  }
  std::uint64_t d1 = 0;
  ASSERT_TRUE(FileDigest(path, &d1));
  std::uint64_t d1_again = 0;
  ASSERT_TRUE(FileDigest(path, &d1_again));
  EXPECT_EQ(d1, d1_again);
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
  }
  std::uint64_t d2 = 0;
  ASSERT_TRUE(FileDigest(path, &d2));
  EXPECT_NE(d1, d2);
  std::uint64_t ignored = 0;
  EXPECT_FALSE(FileDigest(path + ".missing", &ignored));
  std::remove(path.c_str());
}

// --- End-to-end primary/replica --------------------------------------------

TEST(Replication, PrimaryStreamsOplogToReplica) {
  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  auto primary = StartServer(popts);

  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);

  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();

  const auto acked = InsertKeys(primary->port(), 41, 3000);
  ASSERT_GT(acked.size(), 2000u);
  EXPECT_EQ(primary->oplog_last(), acked.size());
  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000))
      << "replica stuck at " << session.last_applied();

  // Every ACKed insert is queryable on the replica.
  ExpectAllPresent(replica->port(), acked);
  EXPECT_EQ(session.counters().entries_applied.load(), acked.size());
  EXPECT_EQ(session.counters().snapshots_installed.load(), 0u);
  EXPECT_EQ(session.counters().gaps_detected.load(), 0u);

  // The replica rejects writes with kReadOnly.
  {
    client::VcfClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", replica->port())) << c.last_error();
    bool ok = true;
    EXPECT_FALSE(c.Insert(777, &ok));
    EXPECT_FALSE(ok);
    EXPECT_EQ(c.last_error(), "read_only");
  }
  EXPECT_GE(replica->counters().read_only_rejections.load(), 1u);

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
  EXPECT_GE(primary->counters().repl_entries_streamed.load(), acked.size());
}

TEST(Replication, ErasesReplicateToo) {
  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  auto primary = StartServer(popts);
  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);
  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", primary->port())) << c.last_error();
  bool ok = false;
  ASSERT_TRUE(c.Insert(1001, &ok));
  ASSERT_TRUE(c.Insert(1002, &ok));
  ASSERT_TRUE(c.Erase(1001, &ok));
  ASSERT_TRUE(ok);
  ASSERT_TRUE(session.WaitForSeq(3, 10000));

  client::VcfClient r;
  ASSERT_TRUE(r.Connect("127.0.0.1", replica->port())) << r.last_error();
  EXPECT_TRUE(r.Lookup(1002, &ok));
  EXPECT_TRUE(ok);
  EXPECT_FALSE(r.Lookup(1001, &ok));
  EXPECT_TRUE(ok);

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
}

TEST(Replication, FreshReplicaBehindBoundedLogBootstrapsViaSnapshot) {
  // A 128-entry log cannot serve a fresh replica after 3000 inserts: the
  // handshake must fall back to a snapshot, then stream the (empty) tail.
  VcfServer::Options popts;
  popts.oplog_capacity = 128;
  auto primary = StartServer(popts);
  const auto acked = InsertKeys(primary->port(), 42, 3000);
  ASSERT_GT(acked.size(), 2000u);

  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);
  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();
  ReplicaSession session(*replica, sopts);
  session.Start();
  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000))
      << "replica stuck at " << session.last_applied();
  EXPECT_EQ(session.counters().snapshots_installed.load(), 1u);
  EXPECT_EQ(primary->counters().repl_snapshots_streamed.load(), 1u);
  ExpectAllPresent(replica->port(), acked);

  // Entries past the snapshot point still stream on the same session.
  const auto more = InsertKeys(primary->port(), 43, 50);
  ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000));
  ExpectAllPresent(replica->port(), more);
  EXPECT_EQ(session.counters().snapshots_installed.load(), 1u);

  session.Stop();
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
}

// --- Sequence-gap detection against a scripted primary ---------------------

/// Reads one request frame from `fd` (10 s deadline), decoding it into
/// `req`. Frames already buffered in `fb` are served first.
bool ReadRequestFrame(int fd, net::FrameBuffer& fb, net::Request& req) {
  for (int i = 0; i < 1000; ++i) {
    std::span<const std::uint8_t> payload;
    if (fb.Next(payload)) {
      const bool ok = net::DecodeRequest(payload, req) == net::DecodeResult::kOk;
      fb.Pop();
      return ok;
    }
    std::uint8_t buf[4096];
    const std::ptrdiff_t n = net::ReadSomeTimeout(fd, buf, 10);
    if (n > 0) {
      if (!fb.Append(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)))) {
        return false;
      }
    } else if (n == 0 || n == -1) {
      return false;
    }
  }
  return false;
}

int AcceptWithDeadline(int listen_fd, int timeout_ms) {
  struct pollfd pfd = {listen_fd, POLLIN, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) return -1;
  return ::accept(listen_fd, nullptr, nullptr);
}

TEST(Replication, SequenceGapAbortsSessionAndResumesOnReconnect) {
  // A scripted primary streams seqs 1, 2, then 4: the replica must detect
  // the gap, drop the session, and reconnect announcing last_applied = 2 so
  // the stream resumes at 3 — entries are applied exactly once throughout.
  std::string error;
  const int listen_fd = net::ListenTcp(0, &error);
  ASSERT_GE(listen_fd, 0) << error;
  const std::uint16_t port = net::BoundPort(listen_fd);

  VcfServer::Options ropts;
  ropts.read_only = true;
  auto replica = StartServer(ropts);

  std::atomic<bool> script_done{false};
  std::string script_failure;
  std::thread scripted([&] {
    auto fail = [&](const std::string& why) { script_failure = why; };
    // Session 1: hello -> resume from 1 -> entries 1, 2, gap at 4.
    int fd = AcceptWithDeadline(listen_fd, 10000);
    if (fd < 0) return fail("no first connection");
    {
      net::FrameBuffer fb;
      net::Request hello;
      if (!ReadRequestFrame(fd, fb, hello) ||
          hello.opcode != net::Opcode::kReplHello || hello.seq != 0 ||
          hello.epoch != 0) {
        net::CloseFd(fd);
        return fail("bad first hello");
      }
      std::vector<std::uint8_t> wire;
      net::EncodeReplHelloResponse(wire, hello.request_id, false, 1, 7777);
      net::EncodeOplogEntry(wire, 1, kOplogInsert, 501);
      net::EncodeOplogEntry(wire, 2, kOplogInsert, 502);
      net::EncodeOplogEntry(wire, 4, kOplogInsert, 504);  // the gap
      if (!net::WriteAll(fd, wire)) {
        net::CloseFd(fd);
        return fail("write failed on session 1");
      }
    }
    // The replica aborts; wait for its EOF, then its reconnect.
    {
      std::uint8_t buf[256];
      while (net::ReadSomeTimeout(fd, buf, 10000) > 0) {
      }
      net::CloseFd(fd);
    }
    fd = AcceptWithDeadline(listen_fd, 10000);
    if (fd < 0) return fail("no reconnect");
    {
      net::FrameBuffer fb;
      net::Request hello;
      if (!ReadRequestFrame(fd, fb, hello) ||
          hello.opcode != net::Opcode::kReplHello || hello.seq != 2) {
        net::CloseFd(fd);
        return fail("reconnect hello did not announce last_applied=2");
      }
      if (hello.epoch != 7777) {
        net::CloseFd(fd);
        return fail("reconnect hello did not quote the adopted epoch");
      }
      std::vector<std::uint8_t> wire;
      net::EncodeReplHelloResponse(wire, hello.request_id, false, 3, 7777);
      net::EncodeOplogEntry(wire, 3, kOplogInsert, 503);
      net::EncodeOplogEntry(wire, 4, kOplogInsert, 504);
      net::EncodeOplogEntry(wire, 5, kOplogInsert, 505);
      if (!net::WriteAll(fd, wire)) {
        net::CloseFd(fd);
        return fail("write failed on session 2");
      }
      // Hold the connection open (draining ACKs) until the test is done.
      std::uint8_t buf[256];
      while (!script_done.load()) {
        const std::ptrdiff_t n = net::ReadSomeTimeout(fd, buf, 50);
        if (n == 0 || n == -1) break;
      }
      net::CloseFd(fd);
    }
  });

  ReplicaSession::Options sopts;
  sopts.primary_port = port;
  ReplicaSession session(*replica, sopts);
  session.Start();

  EXPECT_TRUE(session.WaitForSeq(5, 15000))
      << "replica stuck at " << session.last_applied();
  EXPECT_EQ(session.counters().gaps_detected.load(), 1u);
  EXPECT_GE(session.counters().reconnects.load(), 1u);
  // Exactly once: 1, 2 from session one; 3, 4, 5 from session two.
  EXPECT_EQ(session.counters().entries_applied.load(), 5u);

  client::VcfClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", replica->port())) << c.last_error();
  for (const std::uint64_t key : {501, 502, 503, 504, 505}) {
    bool ok = false;
    EXPECT_TRUE(c.Lookup(key, &ok)) << key;
    EXPECT_TRUE(ok);
  }

  script_done.store(true);
  session.Stop();
  scripted.join();
  EXPECT_TRUE(script_failure.empty()) << script_failure;
  net::CloseFd(listen_fd);
  replica->RequestShutdown();
  EXPECT_TRUE(replica->Join());
}

// --- Durable resume across a replica restart --------------------------------

TEST(Replication, ReplicaRestartResumesFromVerifiedSidecar) {
  const std::string state = TempPath("replica.state");
  const std::string meta = state + ".rseq";
  std::remove(state.c_str());
  std::remove(meta.c_str());

  VcfServer::Options popts;
  popts.oplog_capacity = 1 << 16;
  auto primary = StartServer(popts);
  const auto first = InsertKeys(primary->port(), 44, 1000);
  ASSERT_GT(first.size(), 900u);

  ReplicaSession::Options sopts;
  sopts.primary_port = primary->port();

  // First replica incarnation: sync, checkpoint (state + sidecar), stop.
  std::uint64_t covered_seq = 0;
  {
    VcfServer::Options ropts;
    ropts.read_only = true;
    ropts.state_path = state;
    ropts.repl_meta_path = meta;
    auto replica = StartServer(ropts);
    ReplicaSession session(*replica, sopts);
    session.Start();
    ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000));
    session.Stop();
    covered_seq = replica->applied_seq();
    ASSERT_TRUE(replica->CheckpointNow());
    replica->RequestShutdown();
    ASSERT_TRUE(replica->Join());
  }
  ASSERT_TRUE(std::filesystem::exists(state));
  ASSERT_TRUE(std::filesystem::exists(meta));

  // The primary moves on while the replica is down.
  const auto second = InsertKeys(primary->port(), 45, 500);

  // Second incarnation: the sidecar vouches for the checkpoint, so the
  // session resumes the stream — no snapshot bootstrap.
  {
    VcfServer::Options ropts;
    ropts.read_only = true;
    ropts.state_path = state;
    ropts.repl_meta_path = meta;
    auto replica = std::make_unique<VcfServer>(MakeFilter(VcfSpec()), ropts);
    ReplicaSession session(*replica, sopts);
    const std::uint64_t resume = session.LoadResumePoint(meta, state);
    ASSERT_EQ(resume, covered_seq);
    std::string error;
    ASSERT_TRUE(replica->TryRestore(&error)) << error;
    ASSERT_TRUE(replica->Start(&error)) << error;
    session.Start();
    ASSERT_TRUE(session.WaitForSeq(primary->oplog_last(), 10000))
        << "replica stuck at " << session.last_applied();
    EXPECT_EQ(session.counters().snapshots_installed.load(), 0u);
    EXPECT_EQ(session.counters().entries_applied.load(), second.size());
    ExpectAllPresent(replica->port(), first);
    ExpectAllPresent(replica->port(), second);
    session.Stop();
    replica->RequestShutdown();
    EXPECT_TRUE(replica->Join());
  }

  // A checkpoint the sidecar cannot vouch for (file modified after the
  // sidecar was written) must NOT be resumed from: start fresh instead.
  {
    std::FILE* f = std::fopen(state.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc('x', f);
    std::fclose(f);
    VcfServer::Options ropts;
    ropts.read_only = true;
    auto replica = std::make_unique<VcfServer>(MakeFilter(VcfSpec()), ropts);
    ReplicaSession session(*replica, sopts);
    EXPECT_EQ(session.LoadResumePoint(meta, state), 0u);
  }

  primary->RequestShutdown();
  EXPECT_TRUE(primary->Join());
  std::remove(state.c_str());
  std::remove(meta.c_str());
}

}  // namespace
}  // namespace vcf::server
