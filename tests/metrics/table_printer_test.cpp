#include "metrics/table_printer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/op_counters.hpp"

namespace vcf {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta-long-name", "22"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("beta-long-name"), std::string::npos);
  // Header and both rows plus the rule line.
  int lines = 0;
  for (char c : s) lines += c == '\n';
  EXPECT_EQ(lines, 4);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter t({"filter", "LF", "IT"});
  t.AddNumericRow("CF", {0.98162, 15.859}, 3);
  std::ostringstream out;
  t.Print(out);
  EXPECT_NE(out.str().find("0.982"), std::string::npos);
  EXPECT_NE(out.str().find("15.859"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCells) {
  TablePrinter t({"a", "b"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"has\"quote", "x"});
  std::ostringstream out;
  t.PrintCsv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream out;
  t.Print(out);  // must not crash; row padded with empties
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0, 0), "1");
  EXPECT_EQ(TablePrinter::FormatDouble(0.00055, 5), "0.00055");
}

TEST(OpCountersTest, AccumulateAndDerive) {
  OpCounters a;
  a.inserts = 10;
  a.evictions = 25;
  a.lookups = 4;
  a.bucket_probes = 16;
  OpCounters b;
  b.inserts = 5;
  b.evictions = 5;
  a += b;
  EXPECT_EQ(a.inserts, 15u);
  EXPECT_EQ(a.evictions, 30u);
  EXPECT_DOUBLE_EQ(a.EvictionsPerInsert(), 2.0);
  EXPECT_DOUBLE_EQ(a.ProbesPerLookup(), 4.0);
  a.Reset();
  EXPECT_EQ(a.inserts, 0u);
  EXPECT_EQ(a.EvictionsPerInsert(), 0.0);
}

TEST(OpCountersTest, ToStringMentionsFields) {
  OpCounters c;
  c.inserts = 3;
  c.evictions = 7;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("inserts=3"), std::string::npos);
  EXPECT_NE(s.find("evictions=7"), std::string::npos);
}

}  // namespace
}  // namespace vcf
