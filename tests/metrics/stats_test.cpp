#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace vcf {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
}

TEST(RunningStatTest, KnownSmallSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Xoshiro256 rng(21);
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100.0 - 30.0;
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), whole.Count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-7);
  EXPECT_EQ(left.Min(), whole.Min());
  EXPECT_EQ(left.Max(), whole.Max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a;
  RunningStat empty;
  a.Add(3.0);
  a.Add(5.0);
  RunningStat b = a;
  b.Merge(empty);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 4.0);
  RunningStat c;
  c.Merge(a);
  EXPECT_EQ(c.Count(), 2u);
  EXPECT_DOUBLE_EQ(c.Mean(), 4.0);
}

TEST(QuantileTest, ExactOnSortedValues) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.5);
  EXPECT_NEAR(Quantile(v, 0.9), 9.1, 1e-12);
}

TEST(QuantileTest, HandlesDegenerateInputs) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_EQ(Quantile({7.0}, 0.99), 7.0);
  EXPECT_EQ(Quantile({3.0, 3.0, 3.0}, 0.5), 3.0);
  // Out-of-range q is clamped.
  EXPECT_EQ(Quantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_EQ(Quantile({1.0, 2.0}, 2.0), 2.0);
}

}  // namespace
}  // namespace vcf
