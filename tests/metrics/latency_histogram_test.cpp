// LatencyHistogram: quantile error bound, exact min/max tracking, merge
// exactness, and the small-value exact region.
#include "metrics/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace vcf {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.MinNanos(), 0u);
  EXPECT_EQ(h.MaxNanos(), 0u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  // Below 2^kSubBucketBits each value has its own bucket, so quantiles on
  // small samples are exact, not just within 3.1%.
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 32u);
  EXPECT_EQ(h.MinNanos(), 0u);
  EXPECT_EQ(h.MaxNanos(), 31u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  // rank = floor(0.5*32)+1 = 17th smallest = value 16.
  EXPECT_EQ(h.P50(), 16u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 31u);
}

TEST(LatencyHistogram, QuantileErrorBoundHolds) {
  // Uniform and exponential-ish samples: every reported quantile must be an
  // upper bound on the true quantile and within 1/32 relative error.
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> samples;
  LatencyHistogram h;
  for (int i = 0; i < 200000; ++i) {
    // Mix magnitudes: ~100ns to ~100ms.
    const std::uint64_t v = 100 + rng.Below(1u << (7 + rng.Below(20)));
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    std::size_t rank =
        static_cast<std::size_t>(q * static_cast<double>(samples.size()));
    if (rank >= samples.size()) rank = samples.size() - 1;
    const std::uint64_t truth = samples[rank];
    const std::uint64_t reported = h.ValueAtQuantile(q);
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_LE(static_cast<double>(reported),
              static_cast<double>(truth) * (1.0 + 1.0 / 32.0) + 1.0)
        << "q=" << q;
  }
  // The top quantile is the exact max, not a bucket edge.
  EXPECT_EQ(h.ValueAtQuantile(1.0), samples.back());
  EXPECT_EQ(h.MaxNanos(), samples.back());
  EXPECT_EQ(h.MinNanos(), samples.front());
}

TEST(LatencyHistogram, BucketUpperEdgeBoundsRelativeError) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.Next() >> (rng.Below(40));
    const std::uint64_t edge = LatencyHistogram::BucketUpperEdge(v);
    ASSERT_GE(edge, v);
    if (v >= 32) {
      ASSERT_LE(static_cast<double>(edge - v),
                static_cast<double>(v) / 32.0 + 1.0)
          << "v=" << v;
    } else {
      ASSERT_EQ(edge, v);  // exact region
    }
  }
}

TEST(LatencyHistogram, MergeMatchesCombinedStream) {
  // Per-thread histograms merged must equal one histogram that saw all
  // samples — bucket-wise, not approximately.
  Xoshiro256 rng(1234);
  LatencyHistogram combined;
  std::vector<LatencyHistogram> parts(4);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = rng.Below(10'000'000);
    combined.Record(v);
    parts[static_cast<std::size_t>(i) % 4].Record(v);
  }
  LatencyHistogram merged;
  for (const auto& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.Count(), combined.Count());
  EXPECT_EQ(merged.MinNanos(), combined.MinNanos());
  EXPECT_EQ(merged.MaxNanos(), combined.MaxNanos());
  EXPECT_DOUBLE_EQ(merged.MeanNanos(), combined.MeanNanos());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), combined.ValueAtQuantile(q)) << q;
  }
}

TEST(LatencyHistogram, MergeIntoEmptyAndReset) {
  LatencyHistogram a;
  a.Record(100);
  a.Record(200);
  LatencyHistogram b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_EQ(b.MinNanos(), 100u);
  EXPECT_EQ(b.MaxNanos(), 200u);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.MaxNanos(), 0u);
  EXPECT_EQ(b.P99(), 0u);
  // Reset histogram records cleanly again.
  b.Record(5);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_EQ(b.MinNanos(), 5u);
}

TEST(LatencyHistogram, HugeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.Record(~std::uint64_t{0});
  h.Record(1u << 30);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.MaxNanos(), ~std::uint64_t{0});
  EXPECT_EQ(h.ValueAtQuantile(1.0), ~std::uint64_t{0});
  EXPECT_GE(h.ValueAtQuantile(0.25), 1u << 30);
}

TEST(LatencyHistogram, SummaryMentionsQuantiles) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1200);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("p50="), std::string::npos) << s;
  EXPECT_NE(s.find("p999="), std::string::npos) << s;
  EXPECT_NE(s.find("max="), std::string::npos) << s;
}

}  // namespace
}  // namespace vcf
