#include "analysis/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vcf::model {
namespace {

TEST(ModelTest, Eq5BalancedMasks) {
  // Paper example (§III-A): with an 8-bit value and balanced masks, one
  // eighth of insertions degenerate to two candidates: P = 7/8 (exactly
  // 1 + 2^-8 - 2^-3).
  EXPECT_NEAR(ProbFourCandidatesBalanced(8), 1.0 + 1.0 / 256 - 1.0 / 8, 1e-12);
  // f = 16, balanced: P ~= 0.9922 (paper §IV-A).
  EXPECT_NEAR(ProbFourCandidatesBalanced(16), 0.9922, 5e-4);
}

TEST(ModelTest, Eq8MatchesPaperDiscreteSeries) {
  // §IV-A: for f = 8 the paper quotes P ~= {0.49, 0.73, 0.84, 0.87} for
  // l = 7, 6, 5, 4 zeros (1, 2, 3, 4 ones). Those figures use the paper's
  // approximation 1 - 2^(l-f) - 2^-l; our exact form differs by < 0.01.
  EXPECT_NEAR(ProbFourCandidatesIvcf(8, 1), 0.49, 0.01);
  EXPECT_NEAR(ProbFourCandidatesIvcf(8, 2), 0.73, 0.01);
  EXPECT_NEAR(ProbFourCandidatesIvcf(8, 3), 0.84, 0.01);
  EXPECT_NEAR(ProbFourCandidatesIvcf(8, 4), 0.87, 0.01);
  // Exact values (inclusion-exclusion): 1 - (2^l + 2^(f-l) - 1)/2^f.
  EXPECT_DOUBLE_EQ(ProbFourCandidatesIvcf(8, 1), 1.0 - (128 + 2 - 1) / 256.0);
  EXPECT_DOUBLE_EQ(ProbFourCandidatesIvcf(8, 4), 1.0 - (16 + 16 - 1) / 256.0);
}

TEST(ModelTest, Eq8DegenerateMasksGiveZero) {
  EXPECT_EQ(ProbFourCandidatesIvcf(14, 0), 0.0);
  EXPECT_EQ(ProbFourCandidatesIvcf(14, 14), 0.0);
}

TEST(ModelTest, Eq8SymmetricInOnesAndZeros) {
  for (unsigned w : {8u, 14u, 18u}) {
    for (unsigned i = 1; i < w; ++i) {
      EXPECT_NEAR(ProbFourCandidatesIvcf(w, i), ProbFourCandidatesIvcf(w, w - i),
                  1e-12);
    }
  }
}

TEST(ModelTest, Eq9DvcfFraction) {
  // DVCF_j: 2*delta_t = j * 2^f / 8 => p = j/8.
  for (unsigned j = 0; j <= 8; ++j) {
    const double delta = j * std::exp2(14) / 16.0;
    EXPECT_NEAR(DvcfFourCandidateFraction(delta, 14), j / 8.0, 1e-12) << j;
  }
  EXPECT_EQ(DvcfFourCandidateFraction(1e9, 14), 1.0);  // clamped
}

TEST(ModelTest, Eq10FalsePositiveBound) {
  // r = 0 reduces to the CF bound 1 - (1 - 2^-f)^(2 b alpha).
  const double cf = FalsePositiveUpperBound(14, 0.0, 4, 1.0);
  EXPECT_NEAR(cf, CuckooFalsePositiveRate(14, 4), 1e-12);
  // Monotone in r: more candidates => more comparisons => higher xi.
  EXPECT_LT(FalsePositiveUpperBound(14, 0.2, 4, 0.95),
            FalsePositiveUpperBound(14, 0.9, 4, 0.95));
  // Approximation from the paper: xi ~= 2 (r+1) b alpha / 2^f.
  const double exact = FalsePositiveUpperBound(14, 1.0, 4, 0.98);
  const double approx = 2.0 * 2.0 * 4 * 0.98 / std::exp2(14);
  EXPECT_NEAR(exact, approx, approx * 0.01);
}

TEST(ModelTest, Eq11And12SpaceCost) {
  // Paper §V-B worked example: b = 4, CF (r = 0) at alpha = 0.95 needs
  // f >= 3.07... + log2(1/xi0): check the additive constant ceil behaviour.
  const unsigned f1 = MinFingerprintBits(0.0, 4, 0.95, 1e-3);
  EXPECT_EQ(f1, static_cast<unsigned>(
                    std::ceil(std::log2(2.0 * 1.0 * 4 * 0.95 / 1e-3))));
  // VCF stores more items in the same table: bits/item shrinks despite the
  // larger candidate set when alpha rises enough.
  const double cf_bits = BitsPerItem(0.0, 4, 0.95, 1e-3);
  EXPECT_GT(cf_bits, 0.0);
  EXPECT_NEAR(cf_bits, f1 / 0.95, 1e-9);
}

TEST(ModelTest, Eq13ExpectedEvictions) {
  // E(pi) = 1 / (1 - alpha^((2r+1)b)).
  EXPECT_NEAR(ExpectedEvictionsAtLoad(0.5, 0.0, 4), 1.0 / (1 - 0.0625), 1e-12);
  // More candidates (larger r) => fewer expected evictions at equal load.
  EXPECT_GT(ExpectedEvictionsAtLoad(0.95, 0.0, 4),
            ExpectedEvictionsAtLoad(0.95, 1.0, 4));
  EXPECT_TRUE(std::isinf(ExpectedEvictionsAtLoad(1.0, 0.0, 4)));
}

TEST(ModelTest, Eq14And15PaperWorkedExamples) {
  // §V-C: r = 0, b = 4, alpha = 0.95, lambda0/lambda = 0.98 => E0 ~= 11.3.
  const double e_cf = AverageInsertionCost(0.95, 0.0, 4);
  EXPECT_NEAR(E0(0.98, e_cf), 11.3, 0.15);
  // r ~= 1, b = 4, alpha = 0.995, lambda0/lambda ~= 1 => E0 ~= 1.22.
  const double e_vcf = AverageInsertionCost(0.995, 1.0, 4);
  EXPECT_NEAR(E0(1.0, e_vcf), 1.22, 0.1);
}

TEST(ModelTest, Eq14MatchesClosedFormsForSmallExponents) {
  // (2r+1)b = 1 (r = 0, b = 1): integral of 1/(1-x) = -ln(1-alpha).
  for (double a : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(AverageInsertionCost(a, 0.0, 1), -std::log(1.0 - a), 1e-8)
        << a;
  }
  // (2r+1)b = 2 (r = 0.5, b = 1): integral of 1/(1-x^2) = atanh(alpha).
  for (double a : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(AverageInsertionCost(a, 0.5, 1), std::atanh(a), 1e-8) << a;
  }
  // (2r+1)b = 4 (r = 0, b = 4 — the CF case): closed form
  // (1/4) ln((1+x)/(1-x)) + (1/2) atan(x).
  for (double a : {0.3, 0.7, 0.95}) {
    const double expect =
        0.25 * std::log((1.0 + a) / (1.0 - a)) + 0.5 * std::atan(a);
    EXPECT_NEAR(AverageInsertionCost(a, 0.0, 4), expect, 1e-8) << a;
  }
}

TEST(ModelTest, Eq14MonotoneInAlpha) {
  double prev = 0.0;
  for (double a : {0.1, 0.3, 0.5, 0.7, 0.9, 0.97}) {
    const double e = AverageInsertionCost(a, 0.5, 4);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(ModelTest, BloomFprFormula) {
  // Classic optimum: k = (m/n) ln2, xi = 2^-k approximately.
  const double m_over_n = 12.0;
  const unsigned k = static_cast<unsigned>(std::lround(m_over_n * std::log(2.0)));
  const double xi = BloomFalsePositiveRate(k, 1.0, m_over_n);
  EXPECT_NEAR(xi, std::pow(2.0, -static_cast<double>(k)), 0.002);
}

}  // namespace
}  // namespace vcf::model
