// Codec round-trips for every opcode plus the fuzz-style robustness sweep
// the protocol promises: truncated, bit-flipped and oversized-length frames
// must decode to a clean error — never crash, never over-allocate — and the
// FrameBuffer must reassemble byte-dribbled pipelined streams exactly.
#include "net/proto.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hpp"

namespace vcf::net {
namespace {

std::span<const std::uint8_t> Payload(const std::vector<std::uint8_t>& frame) {
  // Strip the u32 length prefix (encoders emit complete frames).
  EXPECT_GE(frame.size(), 4u);
  return std::span<const std::uint8_t>(frame).subspan(4);
}

TEST(ProtoCodec, PingRoundTrip) {
  std::vector<std::uint8_t> frame;
  const std::uint8_t echo[5] = {1, 2, 3, 4, 5};
  EncodePingRequest(frame, 77, echo);
  Request req;
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kPing);
  EXPECT_EQ(req.request_id, 77u);
  EXPECT_EQ(req.ping_echo, std::vector<std::uint8_t>(echo, echo + 5));

  frame.clear();
  EncodePingResponse(frame, 77, echo);
  Response resp;
  ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kPing, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.ping_echo, std::vector<std::uint8_t>(echo, echo + 5));
}

TEST(ProtoCodec, KeyOpsRoundTrip) {
  for (const Opcode op : {Opcode::kInsert, Opcode::kLookup, Opcode::kDelete}) {
    std::vector<std::uint8_t> frame;
    EncodeKeyRequest(frame, op, 123456789, 0xDEADBEEFCAFEF00DULL);
    Request req;
    ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
    EXPECT_EQ(req.opcode, op);
    EXPECT_EQ(req.request_id, 123456789u);
    EXPECT_EQ(req.key, 0xDEADBEEFCAFEF00DULL);

    frame.clear();
    EncodeFlagResponse(frame, 123456789, true);
    Response resp;
    ASSERT_EQ(DecodeResponse(Payload(frame), op, resp), DecodeResult::kOk);
    EXPECT_TRUE(resp.flag);
    EXPECT_EQ(resp.request_id, 123456789u);
  }
}

TEST(ProtoCodec, BatchRoundTrip) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 1000; ++i) keys.push_back(Mix64(i));
  for (const Opcode op : {Opcode::kInsertBatch, Opcode::kLookupBatch}) {
    std::vector<std::uint8_t> frame;
    EncodeBatchRequest(frame, op, 9, keys);
    Request req;
    ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
    EXPECT_EQ(req.opcode, op);
    EXPECT_EQ(req.keys, keys);

    std::vector<bool> bits(keys.size());
    std::uint32_t accepted = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bits[i] = i % 3 == 0;
      accepted += bits[i] ? 1 : 0;
    }
    // span<const bool> needs contiguous bools.
    std::vector<char> raw(bits.begin(), bits.end());
    frame.clear();
    EncodeBatchResponse(frame, op, 9,
                        std::span<const bool>(
                            reinterpret_cast<const bool*>(raw.data()),
                            raw.size()),
                        accepted);
    Response resp;
    ASSERT_EQ(DecodeResponse(Payload(frame), op, resp), DecodeResult::kOk);
    EXPECT_EQ(resp.batch_count, keys.size());
    if (op == Opcode::kInsertBatch) {
      EXPECT_EQ(resp.batch_accepted, accepted);
    }
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(resp.BitmapBit(static_cast<std::uint32_t>(i)), bits[i]) << i;
    }
  }
}

TEST(ProtoCodec, StatsRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeStatsResponse(frame, 4, "Sharded8(VCF)", 1234, 4096, 8192, 0.3125,
                      true);
  Response resp;
  ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kStats, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.name, "Sharded8(VCF)");
  EXPECT_EQ(resp.items, 1234u);
  EXPECT_EQ(resp.slots, 4096u);
  EXPECT_EQ(resp.memory_bytes, 8192u);
  EXPECT_DOUBLE_EQ(resp.load_factor, 0.3125);
  EXPECT_TRUE(resp.supports_deletion);
}

// Chops `drop` bytes off the end of an encoded frame and patches the u32
// length prefix to match — how a frame from an encoder predating a trailer
// extension looks on the wire.
std::vector<std::uint8_t> ChopFrame(const std::vector<std::uint8_t>& frame,
                                    std::size_t drop) {
  std::vector<std::uint8_t> out(frame.begin(), frame.end() - drop);
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - 4);
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  return out;
}

TEST(ProtoCodec, StatsTrailerDecodesAtEveryLength) {
  // The STATS body grew twice (seqlock/hugepage trailer, then the elastic
  // trailer); the decoder must accept all three generations of body and
  // zero every trailer field the frame does not carry.
  std::vector<std::uint8_t> full;
  EncodeStatsResponse(full, 5, "VCF", 10, 20, 30, 0.5, false, 111, 222, 333,
                      7, 4096, 99);
  const std::vector<std::uint8_t> mid = ChopFrame(full, 3 * 8);
  const std::vector<std::uint8_t> base = ChopFrame(full, 6 * 8);

  Response resp;
  resp.elastic_resizes = resp.seqlock_retries = 0xDEAD;  // must be zeroed
  ASSERT_EQ(DecodeResponse(Payload(base), Opcode::kStats, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.items, 10u);
  EXPECT_EQ(resp.seqlock_retries, 0u);
  EXPECT_EQ(resp.elastic_resizes, 0u);

  ASSERT_EQ(DecodeResponse(Payload(mid), Opcode::kStats, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.seqlock_retries, 111u);
  EXPECT_EQ(resp.hugepage_bytes, 333u);
  EXPECT_EQ(resp.elastic_resizes, 0u);
  EXPECT_EQ(resp.elastic_dual_reads, 0u);

  ASSERT_EQ(DecodeResponse(Payload(full), Opcode::kStats, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.seqlock_fallbacks, 222u);
  EXPECT_EQ(resp.elastic_resizes, 7u);
  EXPECT_EQ(resp.elastic_backlog, 4096u);
  EXPECT_EQ(resp.elastic_dual_reads, 99u);

  // A half-written trailer is still malformed, not silently padded.
  EXPECT_EQ(DecodeResponse(Payload(ChopFrame(full, 4)), Opcode::kStats, resp),
            DecodeResult::kMalformed);
  EXPECT_EQ(
      DecodeResponse(Payload(ChopFrame(full, 3 * 8 + 4)), Opcode::kStats, resp),
      DecodeResult::kMalformed);
}

TEST(ProtoCodec, EmptyOpsRoundTrip) {
  for (const Opcode op :
       {Opcode::kStats, Opcode::kSnapshot, Opcode::kWorkerInfo,
        Opcode::kResize}) {
    std::vector<std::uint8_t> frame;
    EncodeEmptyRequest(frame, op, 11);
    Request req;
    ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
    EXPECT_EQ(req.opcode, op);
  }
}

TEST(ProtoCodec, ResizeResponseRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeFlagResponse(frame, 31, true);
  Response resp;
  ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kResize, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.request_id, 31u);
  EXPECT_TRUE(resp.flag);
}

TEST(ProtoCodec, ShardSplitRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeShardSplitRequest(frame, 32, 0xABCDu);
  Request req;
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kShardSplit);
  EXPECT_EQ(req.request_id, 32u);
  EXPECT_EQ(req.shard_entry, 0xABCDu);

  // Entry-less and over-long bodies are both malformed.
  std::vector<std::uint8_t> empty;
  EncodeEmptyRequest(empty, Opcode::kShardSplit, 33);
  EXPECT_EQ(DecodeRequest(Payload(empty), req), DecodeResult::kMalformed);
  frame.push_back(0);
  std::uint32_t len = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  EXPECT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kMalformed);
}

TEST(ProtoCodec, ErrorResponseRoundTrip) {
  for (const Status s :
       {Status::kBadRequest, Status::kBadVersion, Status::kBadOpcode,
        Status::kUnsupported, Status::kServerError, Status::kShuttingDown}) {
    std::vector<std::uint8_t> frame;
    EncodeErrorResponse(frame, s, 21);
    Response resp;
    ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kLookup, resp),
              DecodeResult::kOk);
    EXPECT_EQ(resp.status, s);
    EXPECT_EQ(resp.request_id, 21u);
  }
}

// --- Replication stream frames --------------------------------------------

TEST(ProtoCodec, ReplHelloRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeReplHello(frame, 31, 0x1122334455667788ULL, 0xABCDEF0123456789ULL);
  Request req;
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kReplHello);
  EXPECT_EQ(req.request_id, 31u);
  EXPECT_EQ(req.epoch, 0x1122334455667788ULL);
  EXPECT_EQ(req.seq, 0xABCDEF0123456789ULL);

  // Response: resume (no snapshot) and snapshot-first, both carrying a seq
  // and the primary's run ID (epoch) for the replica to adopt.
  for (const bool snapshot : {false, true}) {
    frame.clear();
    EncodeReplHelloResponse(frame, 31, snapshot, 4242, 0xFACEull);
    Response resp;
    ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kReplHello, resp),
              DecodeResult::kOk);
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.flag, snapshot);
    EXPECT_EQ(resp.seq, 4242u);
    EXPECT_EQ(resp.epoch, 0xFACEull);
  }
}

TEST(ProtoCodec, OplogEntryAndAckRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeOplogEntry(frame, 991, 1, 0xFEEDF00DULL);
  Request req;
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kOplogEntry);
  EXPECT_EQ(req.seq, 991u);
  EXPECT_EQ(req.repl_op, 1);
  EXPECT_EQ(req.key, 0xFEEDF00DULL);

  frame.clear();
  EncodeOplogAck(frame, 991);
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kOplogAck);
  EXPECT_EQ(req.seq, 991u);
}

TEST(ProtoCodec, SnapshotStreamRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeSnapshotBegin(frame, 77, 1000);
  Request req;
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kSnapshotBegin);
  EXPECT_EQ(req.seq, 77u);
  EXPECT_EQ(req.total_bytes, 1000u);

  std::vector<std::uint8_t> blob(1000);
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::uint8_t>(Mix64(i));
  }
  frame.clear();
  EncodeSnapshotChunk(frame, blob);
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kSnapshotChunk);
  EXPECT_EQ(req.blob, blob);

  frame.clear();
  EncodeSnapshotEnd(frame, 1000, 0x1234567890ABCDEFULL);
  ASSERT_EQ(DecodeRequest(Payload(frame), req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, Opcode::kSnapshotEnd);
  EXPECT_EQ(req.total_bytes, 1000u);
  EXPECT_EQ(req.digest, 0x1234567890ABCDEFULL);
}

TEST(ProtoCodec, ReplStreamFramesAreNotResponses) {
  // Stream frames arriving where a response is expected must decode to a
  // clean error, not be misread as an answer. Every stream opcode (8..13)
  // sits past the last valid status byte, so the response decoder rejects
  // the frame as malformed before it could be mistaken for a result.
  std::vector<std::uint8_t> frame;
  EncodeOplogEntry(frame, 1, 0, 42);
  Response resp;
  EXPECT_EQ(DecodeResponse(Payload(frame), Opcode::kOplogEntry, resp),
            DecodeResult::kMalformed);

  frame.clear();
  EncodeSnapshotBegin(frame, 7, 128);
  EXPECT_EQ(DecodeResponse(Payload(frame), Opcode::kSnapshotBegin, resp),
            DecodeResult::kMalformed);
}

TEST(ProtoRobustness, RejectsHostileReplFrames) {
  Request req;
  // OPLOG_ENTRY with an op byte beyond erase.
  std::vector<std::uint8_t> frame;
  EncodeOplogEntry(frame, 5, 0, 42);
  auto payload = std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  payload[8 + 8] = 2;  // header(8) + seq(8), first byte of op
  EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kMalformed);

  // Empty snapshot chunk: zero-byte chunks are never emitted.
  std::vector<std::uint8_t> chunk_payload;
  chunk_payload.push_back(kProtoVersion);
  chunk_payload.push_back(static_cast<std::uint8_t>(Opcode::kSnapshotChunk));
  PutU16(chunk_payload, 0);
  PutU32(chunk_payload, 0);
  EXPECT_EQ(DecodeRequest(chunk_payload, req), DecodeResult::kMalformed);

  // Truncated REPL_HELLO (seq cut in half).
  std::vector<std::uint8_t> hello;
  EncodeReplHello(hello, 9, 77, 1234);
  auto hello_payload =
      std::vector<std::uint8_t>(hello.begin() + 4, hello.end() - 4);
  EXPECT_EQ(DecodeRequest(hello_payload, req), DecodeResult::kMalformed);

  // Old-format REPL_HELLO (seq only, no epoch) must be rejected, not
  // misparsed with the seq read as the epoch.
  auto legacy_hello =
      std::vector<std::uint8_t>(hello.begin() + 4, hello.end() - 8);
  EXPECT_EQ(DecodeRequest(legacy_hello, req), DecodeResult::kMalformed);
}

TEST(ProtoCodec, ReadOnlyStatusRoundTrip) {
  std::vector<std::uint8_t> frame;
  EncodeErrorResponse(frame, Status::kReadOnly, 13);
  Response resp;
  ASSERT_EQ(DecodeResponse(Payload(frame), Opcode::kInsert, resp),
            DecodeResult::kOk);
  EXPECT_EQ(resp.status, Status::kReadOnly);
  EXPECT_STREQ(StatusName(resp.status), "read_only");
}

// --- Robustness: malformed inputs ----------------------------------------

TEST(ProtoRobustness, RejectsBadVersion) {
  std::vector<std::uint8_t> frame;
  EncodeKeyRequest(frame, Opcode::kInsert, 5, 99);
  auto payload = std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  payload[0] = kProtoVersion + 1;
  Request req;
  EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kBadVersion);
}

TEST(ProtoRobustness, RejectsBadOpcode) {
  std::vector<std::uint8_t> frame;
  EncodeKeyRequest(frame, Opcode::kInsert, 5, 99);
  auto payload = std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  payload[1] = 0xEE;
  Request req;
  EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kBadOpcode);
}

TEST(ProtoRobustness, RejectsReservedBits) {
  std::vector<std::uint8_t> frame;
  EncodeKeyRequest(frame, Opcode::kInsert, 5, 99);
  auto payload = std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  payload[2] = 1;
  Request req;
  EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kMalformed);
}

TEST(ProtoRobustness, RejectsHostileBatchCount) {
  // A count field claiming 4 billion keys in a 20-byte frame must be
  // rejected by the bounds check, not drive a 32 GB allocation.
  std::vector<std::uint8_t> payload;
  payload.push_back(kProtoVersion);
  payload.push_back(static_cast<std::uint8_t>(Opcode::kLookupBatch));
  PutU16(payload, 0);
  PutU32(payload, 7);           // request_id
  PutU32(payload, 0xFFFFFFFF);  // count
  PutU64(payload, 42);          // one lonely key
  Request req;
  EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kMalformed);
  EXPECT_TRUE(req.keys.empty());
  // request_id is still recoverable for the error reply.
  EXPECT_EQ(PeekRequestId(payload), 7u);
}

TEST(ProtoRobustness, EveryTruncationFailsCleanly) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 17; ++i) keys.push_back(Mix64(i));
  std::vector<std::vector<std::uint8_t>> frames;
  frames.emplace_back();
  EncodeBatchRequest(frames.back(), Opcode::kInsertBatch, 1, keys);
  frames.emplace_back();
  EncodeKeyRequest(frames.back(), Opcode::kLookup, 2, 0x1234);
  frames.emplace_back();
  EncodePingRequest(frames.back(), 3);
  frames.emplace_back();
  EncodeEmptyRequest(frames.back(), Opcode::kStats, 4);
  for (const auto& frame : frames) {
    const auto full = std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::span<const std::uint8_t> payload(full.data(), cut);
      Request req;
      const DecodeResult r = DecodeRequest(payload, req);
      // Prefixes that happen to parse as a shorter valid op (e.g. a batch
      // truncated into an empty-bodied frame shape) cannot round-trip the
      // original, but must never be reported as the original opcode with
      // partial data attached.
      if (r == DecodeResult::kOk) {
        EXPECT_TRUE(req.keys.size() < 17u);
      }
    }
  }
}

TEST(ProtoRobustness, BitFlipSweepNeverCrashes) {
  // Flip every bit of a representative request frame; decoding must always
  // return a verdict (any verdict) without crashing or tripping sanitizers.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 8; ++i) keys.push_back(Mix64(i));
  std::vector<std::uint8_t> frame;
  EncodeBatchRequest(frame, Opcode::kInsertBatch, 77, keys);
  const auto payload =
      std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
  for (std::size_t bit = 0; bit < payload.size() * 8; ++bit) {
    auto mutated = payload;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Request req;
    (void)DecodeRequest(mutated, req);
    Response resp;
    (void)DecodeResponse(mutated, Opcode::kInsertBatch, resp);
  }
}

TEST(ProtoRobustness, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0xF00DULL);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> garbage(rng.Below(256));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.Next());
    Request req;
    (void)DecodeRequest(garbage, req);
    for (const Opcode op : {Opcode::kPing, Opcode::kLookup, Opcode::kStats,
                            Opcode::kLookupBatch, Opcode::kInsertBatch}) {
      Response resp;
      (void)DecodeResponse(garbage, op, resp);
    }
  }
}

// --- FrameBuffer ----------------------------------------------------------

TEST(FrameBufferTest, ReassemblesByteDribbledPipelines) {
  // Three pipelined frames delivered one byte at a time must pop out intact
  // and in order.
  std::vector<std::uint8_t> wire;
  EncodeKeyRequest(wire, Opcode::kInsert, 1, 111);
  EncodeKeyRequest(wire, Opcode::kLookup, 2, 222);
  EncodePingRequest(wire, 3);
  FrameBuffer fb;
  std::vector<Request> seen;
  for (const std::uint8_t byte : wire) {
    ASSERT_TRUE(fb.Append(std::span<const std::uint8_t>(&byte, 1)));
    std::span<const std::uint8_t> payload;
    while (fb.Next(payload)) {
      Request req;
      ASSERT_EQ(DecodeRequest(payload, req), DecodeResult::kOk);
      seen.push_back(req);
      fb.Pop();
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].opcode, Opcode::kInsert);
  EXPECT_EQ(seen[0].key, 111u);
  EXPECT_EQ(seen[1].opcode, Opcode::kLookup);
  EXPECT_EQ(seen[1].key, 222u);
  EXPECT_EQ(seen[2].opcode, Opcode::kPing);
  EXPECT_EQ(fb.buffered_bytes(), 0u);
}

TEST(FrameBufferTest, PoisonsOnOversizedLength) {
  std::vector<std::uint8_t> wire;
  PutU32(wire, kMaxFrameLen + 1);
  FrameBuffer fb;
  EXPECT_FALSE(fb.Append(wire));
  EXPECT_TRUE(fb.poisoned());
  std::span<const std::uint8_t> payload;
  EXPECT_FALSE(fb.Next(payload));
  // Poisoned stays poisoned: later valid bytes cannot resync it.
  std::vector<std::uint8_t> good;
  EncodePingRequest(good, 1);
  EXPECT_FALSE(fb.Append(good));
}

TEST(FrameBufferTest, PoisonsOnOversizedSecondFrame) {
  std::vector<std::uint8_t> wire;
  EncodePingRequest(wire, 1);
  PutU32(wire, kMaxFrameLen + 1);
  FrameBuffer fb;
  // The hostile length arrives behind a valid frame; it must poison the
  // buffer during Pop()'s next-frame scan, after the valid frame serves.
  const bool append_ok = fb.Append(wire);
  std::span<const std::uint8_t> payload;
  if (append_ok) {
    ASSERT_TRUE(fb.Next(payload));
    Request req;
    EXPECT_EQ(DecodeRequest(payload, req), DecodeResult::kOk);
    fb.Pop();
  }
  EXPECT_TRUE(fb.poisoned());
}

TEST(FrameBufferTest, CompactsLongLivedConnections) {
  // Push many frames through one buffer; buffered_bytes must return to zero
  // each time everything is consumed (the compaction path).
  FrameBuffer fb;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 5; ++i) {
      EncodeKeyRequest(wire, Opcode::kLookup,
                       static_cast<std::uint32_t>(round * 5 + i),
                       Mix64(static_cast<std::uint64_t>(round * 5 + i)));
    }
    ASSERT_TRUE(fb.Append(wire));
    std::span<const std::uint8_t> payload;
    int popped = 0;
    while (fb.Next(payload)) {
      ++popped;
      fb.Pop();
    }
    EXPECT_EQ(popped, 5);
    EXPECT_EQ(fb.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace vcf::net
