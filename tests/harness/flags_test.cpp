#include "harness/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vcf {
namespace {

Flags Make(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;  // keep c_str()s alive
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(const_cast<char*>(s.c_str()));
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesKeyValuePairs) {
  const Flags f = Make({"--slots_log2=18", "--hash=murmur", "--scale=0.5"});
  EXPECT_EQ(f.GetInt("slots_log2", 0), 18);
  EXPECT_EQ(f.GetString("hash", "fnv"), "murmur");
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.5);
}

TEST(FlagsTest, BareFlagsAreBooleans) {
  const Flags f = Make({"--paper", "--csv=out.csv"});
  EXPECT_TRUE(f.GetBool("paper"));
  EXPECT_FALSE(f.GetBool("quick"));
  EXPECT_TRUE(f.Has("csv"));
  EXPECT_FALSE(f.Has("missing"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 42), 42);
  EXPECT_EQ(f.GetString("s", "x"), "x");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_TRUE(f.GetBool("b", true));
}

TEST(FlagsTest, IgnoresPositionalArguments) {
  const Flags f = Make({"positional", "--real=1"});
  EXPECT_FALSE(f.Has("positional"));
  EXPECT_EQ(f.GetInt("real", 0), 1);
}

TEST(FlagsTest, ExplicitBooleanValues) {
  const Flags f = Make({"--a=true", "--b=false", "--c=1", "--d=0", "--e=yes"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b"));
  EXPECT_TRUE(f.GetBool("c"));
  EXPECT_FALSE(f.GetBool("d"));
  EXPECT_TRUE(f.GetBool("e"));
}

}  // namespace
}  // namespace vcf
