#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "baselines/cuckoo_filter.hpp"
#include "core/vcf.hpp"
#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  return p;
}

TEST(ExperimentTest, FillAllAccountsEveryKey) {
  VerticalCuckooFilter filter(SmallParams());
  const auto keys = UniformKeys(filter.SlotCount(), 1);
  const FillResult r = FillAll(filter, keys);
  EXPECT_EQ(r.attempted, keys.size());
  EXPECT_EQ(r.stored + r.failures, r.attempted);
  EXPECT_EQ(r.stored, filter.ItemCount());
  EXPECT_NEAR(r.load_factor, filter.LoadFactor(), 1e-12);
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.avg_insert_micros, 0.0);
}

TEST(ExperimentTest, FillToFirstFailureStopsEarly) {
  CuckooParams p = SmallParams();
  p.max_kicks = 4;
  CuckooFilter filter(p);
  const auto keys = UniformKeys(filter.SlotCount() * 2, 2);
  const FillResult r = FillToFirstFailure(filter, keys);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_LT(r.attempted, keys.size());
  EXPECT_EQ(r.stored, r.attempted - 1);
}

TEST(ExperimentTest, FillResetsCountersFirst) {
  VerticalCuckooFilter filter(SmallParams());
  filter.Insert(1);
  filter.Insert(2);
  const auto keys = UniformKeys(10, 3);
  FillAll(filter, keys);
  EXPECT_EQ(filter.counters().inserts, keys.size());
}

TEST(ExperimentTest, MeasureFprIsExactOnKnownSets) {
  VerticalCuckooFilter filter(SmallParams());
  const auto members = UniformKeys(filter.SlotCount() / 2, 4);
  FillAll(filter, members);
  // Positive set: FPR measured over members is 1 (they are all present).
  EXPECT_DOUBLE_EQ(MeasureFpr(filter, members), 1.0);
  // Alien set: must be small (f = 14 at half load).
  const auto aliens = UniformKeys(100000, 5);
  EXPECT_LT(MeasureFpr(filter, aliens), 0.01);
  EXPECT_EQ(MeasureFpr(filter, {}), 0.0);
}

TEST(ExperimentTest, MeasureLookupMicrosPositive) {
  VerticalCuckooFilter filter(SmallParams());
  const auto keys = UniformKeys(500, 6);
  FillAll(filter, keys);
  EXPECT_GT(MeasureLookupMicros(filter, keys), 0.0);
  EXPECT_EQ(MeasureLookupMicros(filter, {}), 0.0);
}

TEST(ExperimentTest, MixQueriesComposition) {
  const auto members = UniformKeys(1000, 7);
  const auto aliens = UniformKeys(1000, 8);
  const auto mixed = MixQueries(members, aliens, 0.5, 9);
  EXPECT_EQ(mixed.size(), 2000u);
  // All inputs present exactly once.
  std::unordered_set<std::uint64_t> set(mixed.begin(), mixed.end());
  EXPECT_EQ(set.size(), 2000u);
  for (const auto k : members) ASSERT_EQ(set.count(k), 1u);
  for (const auto k : aliens) ASSERT_EQ(set.count(k), 1u);
  // Shuffled: the first half must not be all members.
  std::size_t members_in_front = 0;
  std::unordered_set<std::uint64_t> member_set(members.begin(), members.end());
  for (std::size_t i = 0; i < 1000; ++i) {
    members_in_front += member_set.count(mixed[i]);
  }
  EXPECT_GT(members_in_front, 300u);
  EXPECT_LT(members_in_front, 700u);
}

TEST(ExperimentTest, MixQueriesExtremesAreFine) {
  const auto members = UniformKeys(100, 10);
  const auto aliens = UniformKeys(50, 11);
  EXPECT_EQ(MixQueries(members, {}, 0.5, 1).size(), 100u);
  EXPECT_EQ(MixQueries({}, aliens, 0.5, 1).size(), 50u);
  EXPECT_TRUE(MixQueries({}, {}, 0.5, 1).empty());
}

}  // namespace
}  // namespace vcf
