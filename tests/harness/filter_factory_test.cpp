#include "harness/filter_factory.hpp"

#include <gtest/gtest.h>

#include "workload/key_streams.hpp"

namespace vcf {
namespace {

CuckooParams SmallParams() {
  CuckooParams p;
  p.bucket_count = 1 << 8;
  return p;
}

TEST(FilterFactoryTest, BuildsEveryKind) {
  const CuckooParams p = SmallParams();
  const std::vector<FilterSpec> specs = {
      {FilterSpec::Kind::kCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kVCF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kIVCF, 3, p, 12.0, 0},
      {FilterSpec::Kind::kDVCF, 5, p, 12.0, 0},
      {FilterSpec::Kind::kKVCF, 7, p, 12.0, 0},
      {FilterSpec::Kind::kDCF, 4, p, 12.0, 0},
      {FilterSpec::Kind::kBF, 0, p, 12.0, 0},
      {FilterSpec::Kind::kCBF, 0, p, 12.0, 0},
  };
  for (const auto& spec : specs) {
    const auto filter = MakeFilter(spec);
    ASSERT_NE(filter, nullptr) << spec.DisplayName();
    EXPECT_EQ(filter->Name(), spec.DisplayName());
    EXPECT_TRUE(filter->Insert(1234));
    EXPECT_TRUE(filter->Contains(1234));
  }
}

TEST(FilterFactoryTest, DisplayNames) {
  CuckooParams p = SmallParams();
  EXPECT_EQ((FilterSpec{FilterSpec::Kind::kIVCF, 4, p, 12.0, 0}).DisplayName(),
            "IVCF_4");
  EXPECT_EQ((FilterSpec{FilterSpec::Kind::kDVCF, 8, p, 12.0, 0}).DisplayName(),
            "DVCF_8");
  EXPECT_EQ((FilterSpec{FilterSpec::Kind::kKVCF, 9, p, 12.0, 0}).DisplayName(),
            "9-VCF");
  EXPECT_EQ((FilterSpec{FilterSpec::Kind::kDCF, 0, p, 12.0, 0}).DisplayName(),
            "DCF(d=4)");
}

TEST(FilterFactoryTest, PaperLineupRoster) {
  const auto lineup = PaperLineup(SmallParams());
  ASSERT_EQ(lineup.size(), 2u + 6u + 8u);  // CF, DCF, IVCF_1..6, DVCF_1..8
  EXPECT_EQ(lineup[0].DisplayName(), "CF");
  EXPECT_EQ(lineup[1].DisplayName(), "DCF(d=4)");
  EXPECT_EQ(lineup[2].DisplayName(), "IVCF_1");
  EXPECT_EQ(lineup[7].DisplayName(), "IVCF_6");
  EXPECT_EQ(lineup[8].DisplayName(), "DVCF_1");
  EXPECT_EQ(lineup.back().DisplayName(), "DVCF_8");
}

TEST(FilterFactoryTest, SweepsShareParams) {
  CuckooParams p = SmallParams();
  p.fingerprint_bits = 11;
  for (const auto& s : IvcfSweep(p)) {
    EXPECT_EQ(s.params.fingerprint_bits, 11u);
  }
  EXPECT_EQ(IvcfSweep(p).size(), 6u);
  EXPECT_EQ(DvcfSweep(p).size(), 8u);
}

TEST(FilterFactoryTest, BfsPrefixParsesAndComposes) {
  FilterSpec spec;
  ParseFilterKind("bfs:vcf", spec);
  EXPECT_TRUE(spec.bfs);
  EXPECT_EQ(spec.kind, FilterSpec::Kind::kVCF);

  // Mode prefixes compose in any order.
  ParseFilterKind("aligned:bfs:cf", spec);
  EXPECT_TRUE(spec.bfs);
  EXPECT_TRUE(spec.aligned);
  ParseFilterKind("bfs:aligned:cf", spec);
  EXPECT_TRUE(spec.bfs);
  EXPECT_TRUE(spec.aligned);

  ParseFilterKind("sharded:2:resilient:bfs:vf", spec);
  EXPECT_EQ(spec.shards, 2u);
  EXPECT_TRUE(spec.resilient);
  EXPECT_TRUE(spec.bfs);
  EXPECT_EQ(spec.kind, FilterSpec::Kind::kVF);

  // A bare kind resets every prefix flag.
  ParseFilterKind("cf", spec);
  EXPECT_FALSE(spec.bfs);
  EXPECT_FALSE(spec.resilient);

  FilterSpec named{FilterSpec::Kind::kCF, 0, SmallParams(), 12.0, 0};
  named.bfs = true;
  EXPECT_EQ(named.DisplayName(), "Bfs(CF)");
}

TEST(FilterFactoryTest, BfsFiltersFillUnderLoad) {
  // Every kernel-ported filter must accept BFS eviction and still reach
  // high occupancy (BFS finds a placement whenever one is reachable, so it
  // should do no worse than the random walk).
  for (const char* kind : {"bfs:cf", "bfs:vcf", "bfs:ivcf", "bfs:dvcf",
                           "bfs:kvcf", "bfs:dcf", "bfs:vf", "bfs:sscf"}) {
    FilterSpec spec;
    ParseFilterKind(kind, spec);
    spec.variant = 4;
    spec.params = SmallParams();
    auto filter = MakeFilter(spec);
    ASSERT_NE(filter, nullptr) << kind;
    const auto keys = UniformKeys(filter->SlotCount() * 9 / 10, 902);
    std::vector<std::uint64_t> stored;
    for (const auto k : keys) {
      if (filter->Insert(k)) stored.push_back(k);
    }
    EXPECT_GT(static_cast<double>(stored.size()) / keys.size(), 0.98) << kind;
    for (const auto k : stored) {
      ASSERT_TRUE(filter->Contains(k)) << kind;  // no false negatives
    }
  }
}

TEST(FilterFactoryTest, FactoryFiltersBehaveUnderLoad) {
  // Smoke test every cuckoo-family factory product at 90% fill.
  for (const auto& spec : PaperLineup(SmallParams())) {
    auto filter = MakeFilter(spec);
    std::size_t stored = 0;
    const auto keys = UniformKeys(filter->SlotCount() * 9 / 10, 901);
    for (const auto k : keys) stored += filter->Insert(k) ? 1 : 0;
    EXPECT_GT(static_cast<double>(stored) / keys.size(), 0.98)
        << spec.DisplayName();
  }
}

}  // namespace
}  // namespace vcf
